"""Regenerate Figure 1: keyword-in-title publication counts, 2010-2020.

The corpus is synthetic but calibrated to the statistics the paper reports
(see DESIGN.md); the scanning pipeline is the paper's methodology.  Prints
the series as a table and as an ASCII chart, plus the KG/RDF overlap
ratios behind the "70% in 2015, 14% in 2020" observation.

Run with::

    python examples/bibliometrics.py
"""

from repro.bibliometrics import keyword_series, kg_overlap_ratio
from repro.datasets import generate_corpus
from repro.datasets.dblp import KEYWORDS, YEARS
from repro.util import format_table


def ascii_chart(series: dict[str, dict[int, int]], width: int = 50) -> str:
    peak = max(max(points.values()) for points in series.values())
    lines = []
    for keyword, points in series.items():
        lines.append(f"{keyword}:")
        for year in YEARS:
            bar = "#" * round(points[year] / peak * width)
            lines.append(f"  {year} |{bar} {points[year]}")
    return "\n".join(lines)


def main() -> None:
    corpus = generate_corpus(rng=0)
    print(f"corpus: {len(corpus)} synthetic publications, {YEARS[0]}-{YEARS[-1]}")

    series = keyword_series(corpus, KEYWORDS, YEARS)
    rows = [[kw, *[series[kw][y] for y in YEARS]] for kw in KEYWORDS]
    print()
    print(format_table(["keyword", *[str(y) for y in YEARS]], rows,
                       title="Figure 1 — publications with keyword in title"))

    print()
    print(ascii_chart({"knowledge graph": series["knowledge graph"],
                       "rdf": series["rdf"]}))

    print()
    overlap_rows = [[year, f"{kg_overlap_ratio(corpus, year):.0%}"]
                    for year in YEARS]
    print(format_table(["year", "KG papers also about RDF/SPARQL"],
                       overlap_rows,
                       title="the 70% (2015) -> 14% (2020) observation"))


if __name__ == "__main__":
    main()
