"""Declarative vs procedural node extraction (Section 4.3).

Builds graded modal queries over a contact-tracing graph, compiles each to
an AC-GNN, and shows that the network — a purely procedural message-passing
computation — answers exactly the declarative query.  Finishes with the
Weisfeiler-Lehman side of the story: WL-indistinguishable nodes always get
the same answer.

Run with::

    python examples/gnn_vs_logic.py
"""

from repro.core.gnn import compile_modal_formula, wl_partition
from repro.core.logic import (
    DiamondAtLeast,
    LabelProp,
    ModalAnd,
    ModalNot,
    evaluate_modal,
    modal_depth,
)
from repro.datasets import generate_contact_graph

QUERIES = {
    "rides a bus": ModalAnd(LabelProp("person"),
                            DiamondAtLeast(1, LabelProp("bus"))),
    "contacted 2+ people": DiamondAtLeast(
        2, LabelProp("person") | LabelProp("infected")),
    "socially isolated": ModalAnd(
        LabelProp("person"),
        ModalNot(DiamondAtLeast(1, LabelProp("person") | LabelProp("infected")))),
    "two hops from a bus": DiamondAtLeast(1, DiamondAtLeast(1, LabelProp("bus"))),
}


def main() -> None:
    world = generate_contact_graph(40, 4, 14, 2, rng=11, infection_rate=0.2)
    print(f"world: {world.node_count()} nodes, {world.edge_count()} edges\n")

    for name, formula in QUERIES.items():
        declarative = evaluate_modal(world, formula)
        compiled = compile_modal_formula(formula)
        procedural = compiled.satisfying_nodes(world)
        status = "MATCH" if declarative == procedural else "MISMATCH"
        print(f"{name!r}: modal depth {modal_depth(formula)}, "
              f"{compiled.dimension} GNN coordinates, "
              f"{len(compiled.network.layers)} layers -> "
              f"{len(declarative)} nodes [{status}]")
        assert declarative == procedural

    partition = wl_partition(world, use_edge_labels=False)
    print(f"\n1-WL stable partition: {len(partition)} classes "
          f"(largest {len(partition[0])})")
    print("every compiled GNN is constant on each class — the paper's")
    print("expressiveness ceiling for message-passing networks.")


if __name__ == "__main__":
    main()
