"""Count, Gen and enumeration (Section 4.1) on one ambiguous instance.

Shows the three complementary tools the paper presents for path
extraction: exact counting (expensive), FPRAS approximate counting (cheap,
within epsilon), exactly-uniform generation after preprocessing, and
polynomial-delay enumeration.

Run with::

    python examples/path_sampling.py
"""

import time
from collections import Counter

from repro import (
    ApproxPathCounter,
    UniformPathSampler,
    count_paths_exact,
    enumerate_paths,
    parse_regex,
)
from repro.datasets import random_labeled_graph
from repro.util import format_table


def main() -> None:
    graph = random_labeled_graph(12, 40, rng=42)
    regex = parse_regex("(r + s)*/r/(r + s)*")
    print(f"graph: {graph.node_count()} nodes, {graph.edge_count()} edges")
    print(f"regex: {regex.to_text()} (highly ambiguous: many runs per path)\n")

    rows = []
    for k in (2, 4, 6):
        start = time.perf_counter()
        exact = count_paths_exact(graph, regex, k)
        exact_s = time.perf_counter() - start
        start = time.perf_counter()
        estimate = ApproxPathCounter(graph, regex, k, epsilon=0.1,
                                     rng=7).estimate()
        fpras_s = time.perf_counter() - start
        rows.append([k, exact, round(estimate, 1),
                     f"{abs(estimate - exact) / exact:.2%}",
                     round(exact_s, 3), round(fpras_s, 3)])
    print(format_table(["k", "exact", "FPRAS", "rel.err", "exact s", "fpras s"],
                       rows, title="Count vs its FPRAS"))

    print("\nuniform generation (k = 3):")
    sampler = UniformPathSampler(graph, regex, 3)
    print(f"  support size (= Count): {sampler.count}")
    draws = sampler.sample_many(5 * sampler.count, rng=1)
    frequencies = Counter(draws)
    print(f"  distinct paths seen in {len(draws)} draws: {len(frequencies)}")
    print(f"  a sample: {draws[0].to_text()}")

    print("\npolynomial-delay enumeration (first 5 answers, k = 3):")
    for i, path in enumerate(enumerate_paths(graph, regex, 3)):
        if i == 5:
            break
        print(f"  {path.to_text()}")

    # The same three modes behind one declarative surface: PathQL.
    from repro.query import run_pathql

    print("\nPathQL, the declarative face of the three modes:")
    for statement in (
            "PATHS MATCHING (r + s)*/r/(r + s)* LENGTH 4 COUNT",
            "PATHS MATCHING (r + s)*/r/(r + s)* LENGTH 4 COUNT APPROX 0.1 SEED 7",
            "PATHS MATCHING (r + s)*/r/(r + s)* LENGTH 4 SAMPLE 2 SEED 1",
            "PATHS MATCHING (r + s)*/r/(r + s)* LENGTH 4 LIMIT 2"):
        result = run_pathql(graph, statement)
        shown = (f"count={result.count:.1f}" if not result.paths
                 else "; ".join(p.to_text() for p in result.paths))
        print(f"  {statement.split('LENGTH 4 ')[1]:24s} -> {shown}")


if __name__ == "__main__":
    main()
