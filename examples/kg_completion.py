"""Producing knowledge (Section 2.3): deduction and embedding completion.

A knowledge graph, the paper argues, does not just store facts — it
*produces* them: "deducing, e.g. by means of logical reasoners or neural
networks ... knowledge graph embeddings, and its use in the refinement and
completion of knowledge graphs".  This example runs both producers over one
knowledge graph:

1. an RDFS ontology materializes implied types and inherited properties
   (the logical reasoner), and
2. a TransE embedding trained on the asserted facts proposes new, plausible
   triples with link-prediction quality metrics (the learner).

Run with::

    python examples/kg_completion.py
"""

import random

from repro.embeddings import TrainConfig, TransE, complete, evaluate_link_prediction
from repro.embeddings.transe import train_test_split
from repro.models.rdf import RDF_TYPE, Triple
from repro.reasoning import RDFS_DOMAIN, RDFS_RANGE, RDFS_SUBCLASS, rdfs_closure
from repro.storage import TripleStore
from repro.util import format_table


def build_world(rng: random.Random) -> list[Triple]:
    """A transport knowledge graph: people ride lines run by operators."""
    triples = []
    operators = ["TransSur", "MetroBus"]
    lines = [f"line{i}" for i in range(6)]
    for i, line in enumerate(lines):
        triples.append(Triple(operators[i % 2], "operates", line))
    for p in range(24):
        person = f"person{p}"
        home_lines = rng.sample(lines, k=2)
        for line in home_lines:
            triples.append(Triple(person, "rides", line))
        triples.append(Triple(person, "lives_in", f"district{p % 4}"))
    for d in range(4):
        for line in rng.sample(lines, k=3):
            triples.append(Triple(f"district{d}", "served_by", line))
    return triples


def main() -> None:
    rng = random.Random(7)
    facts = build_world(rng)
    print(f"asserted facts: {len(facts)}")

    # --- producer 1: the logical reasoner -------------------------------
    store = TripleStore(facts)
    store.add("bus_line", RDFS_SUBCLASS, "transport_service")
    store.add("transport_service", RDFS_SUBCLASS, "service")
    store.add("rides", RDFS_DOMAIN, "person")
    store.add("rides", RDFS_RANGE, "bus_line")
    store.add("operates", RDFS_RANGE, "bus_line")
    derived = rdfs_closure(store)
    print(f"RDFS closure derived {derived} new triples, e.g.:")
    shown = 0
    for triple in sorted(store.match(None, RDF_TYPE, "transport_service")):
        print(f"  {triple.subject} rdf:type transport_service")
        shown += 1
        if shown == 3:
            break

    # --- producer 2: the embedding model --------------------------------
    train, test = train_test_split(facts, 0.2, rng=1)
    model = TransE(train, TrainConfig(dimension=24, epochs=250), rng=2)
    log: list = []
    model.train(log=log)
    print(f"\nTransE trained: loss {log[0][1]:.3f} -> {log[-1][1]:.3f} "
          f"over {len(log)} epochs")

    report = evaluate_link_prediction(model, test)
    print()
    print(format_table(["metric", "value"], report.as_rows(),
                       title="link prediction (filtered protocol)"))

    print("\ntop proposed new 'rides' facts (unconstrained):")
    for head, _, tail, score in complete(model, "rides", top_k=5):
        print(f"  {head} rides {tail}   (score {score:.2f})")

    # --- composing the two producers -------------------------------------
    # The reasoner derived rdf:type facts from the rides range declaration;
    # use them to keep only type-correct completion proposals.
    bus_lines = {t.subject for t in store.match(None, RDF_TYPE, "bus_line")}
    persons = {t.subject for t in store.match(None, RDF_TYPE, "person")}
    print("\ntop proposed 'rides' facts filtered by the RDFS-derived types:")
    filtered = complete(model, "rides", top_k=5,
                        head_filter=persons.__contains__,
                        tail_filter=bus_lines.__contains__)
    for head, _, tail, score in filtered:
        print(f"  {head} rides {tail}   (score {score:.2f})")
    assert all(tail in bus_lines for _, _, tail, _ in filtered)


if __name__ == "__main__":
    main()
