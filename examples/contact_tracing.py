"""Contact tracing at scale: the paper's running example as an application.

Generates a synthetic contact-tracing world (people, buses, addresses,
companies), then answers the epidemiological questions Section 4 builds its
machinery around: who is possibly exposed, which bus matters most for
propagation, and how the sampled bc_r approximation compares to the exact
one.

Run with::

    python examples/contact_tracing.py
"""

from repro import (
    approximate_regex_betweenness,
    endpoint_pairs,
    nodes_matching,
    parse_regex,
    regex_betweenness,
    run_cypher,
)
from repro.datasets import generate_contact_graph
from repro.storage import PropertyGraphStore
from repro.util import format_table

EXPOSED = "?person/rides/?bus/rides^-/?infected"
TRANSPORT = "?person/rides/?bus/rides^-/?person"
PROPAGATION = ("?infected/rides/?bus/rides^-/?person/"
               "(contact + contact^- + lives/lives^-)*/?person")


def main() -> None:
    world = generate_contact_graph(60, 5, 20, 2, rng=2026,
                                   infection_rate=0.15)
    labels = {}
    for node in world.nodes():
        labels.setdefault(world.node_label(node), []).append(node)
    print(f"world: {world.node_count()} nodes, {world.edge_count()} edges "
          f"({len(labels.get('infected', []))} infected)")

    # 1. Direct exposure: shared a bus with an infected person.
    exposed = nodes_matching(world, parse_regex(EXPOSED))
    print(f"\npossibly exposed on a bus: {len(exposed)} people")

    # 2. Propagation reach: exposure plus contact/cohabitation chains (r1).
    reached = {b for _, b in endpoint_pairs(world, parse_regex(PROPAGATION))}
    print(f"reachable by propagation chains: {len(reached)} people")

    # 3. Which bus matters? bc_r with the transport pattern, exact and sampled.
    buses = labels["bus"]
    exact = regex_betweenness(world, parse_regex(TRANSPORT), candidates=buses)
    sampled = approximate_regex_betweenness(world, parse_regex(TRANSPORT),
                                            samples_per_pair=40, rng=7,
                                            candidates=buses)
    rows = [[bus,
             world.in_degree(bus),
             round(exact[bus], 2),
             round(sampled[bus], 2)]
            for bus in sorted(buses, key=lambda b: -exact[b])]
    print()
    print(format_table(["bus", "riders(in-deg)", "bc_r exact", "bc_r sampled"],
                       rows, title="bus importance for person transport"))

    # 4. The same exposure query in Cypher.
    store = PropertyGraphStore(world)
    result = run_cypher(store, """
        MATCH (x:person)-[:rides]->(b:bus)<-[:rides]-(z:infected)
        RETURN DISTINCT x""")
    assert {row[0] for row in result.rows} == exposed
    print(f"\nmini-Cypher agrees: {len(result)} exposed people")


if __name__ == "__main__":
    main()
