"""Graph analytics on the contact-tracing world (Section 4.2's toolbox).

Runs the "global properties" battery the paper lists — components,
diameter, PageRank, HITS, clustering, communities, densest subgraph — and
then the knowledge-aware measures on top: plain betweenness vs the
regex-constrained bc_r, and the all-subgraphs centrality framework.

Run with::

    python examples/graph_analytics.py
"""

from repro.analytics import (
    average_clustering,
    charikar_peel,
    connected_components,
    diameter,
    hits,
    label_propagation,
    pagerank,
    subgraph_density,
)
from repro.core.centrality import betweenness_centrality, regex_betweenness
from repro.core.rpq import parse_regex
from repro.datasets import generate_contact_graph
from repro.util import format_table


def main() -> None:
    world = generate_contact_graph(50, 4, 16, 2, rng=99, infection_rate=0.2)
    print(f"world: {world.node_count()} nodes, {world.edge_count()} edges")

    components = connected_components(world)
    print(f"\nweak components: {len(components)} "
          f"(largest {len(components[0])} nodes)")
    print(f"diameter (undirected, largest component): {diameter(world)}")
    print(f"average clustering coefficient: {average_clustering(world):.3f}")

    ranks = pagerank(world)
    top = sorted(ranks, key=ranks.get, reverse=True)[:3]
    print("\nPageRank top 3:")
    for node in top:
        print(f"  {node} ({world.node_label(node)}): {ranks[node]:.4f}")

    _, authorities = hits(world)
    best_authority = max(authorities, key=authorities.get)
    print(f"top HITS authority: {best_authority} "
          f"({world.node_label(best_authority)})")

    communities = label_propagation(world, rng=1)
    print(f"\nlabel-propagation communities: {len(communities)} "
          f"(sizes {[len(c) for c in communities[:5]]}...)")

    dense = charikar_peel(world)
    print(f"densest subgraph (Charikar peel): {len(dense)} nodes, "
          f"density {subgraph_density(world, dense):.2f}")

    # Knowledge enters: which bus matters for person transport?
    buses = [n for n in world.nodes() if world.node_label(n) == "bus"]
    plain = betweenness_centrality(world, directed=False)
    transport = regex_betweenness(
        world, parse_regex("?person/rides/?bus/rides^-/?person"),
        candidates=buses)
    rows = [[bus, round(plain[bus], 1), round(transport[bus], 1)]
            for bus in sorted(buses, key=lambda b: -transport[b])]
    print()
    print(format_table(["bus", "bc (label-blind)", "bc_r (transport)"], rows,
                       title="the paper's point: knowledge changes the ranking"))


if __name__ == "__main__":
    main()
