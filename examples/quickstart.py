"""Quickstart: the paper's Figure 2 data and its worked queries.

Run with::

    python examples/quickstart.py
"""

from repro import (
    betweenness_centrality,
    count_paths_exact,
    enumerate_paths,
    figure2_labeled,
    figure2_property,
    parse_regex,
    regex_betweenness,
)


def main() -> None:
    graph = figure2_labeled()
    print(f"Figure 2(a): {graph.node_count()} nodes, {graph.edge_count()} edges")
    for node in sorted(graph.nodes()):
        print(f"  {node}: {graph.node_label(node)}")

    # Equation (2): who contacted an infected person?
    eq2 = parse_regex("?person/contact/?infected")
    print("\n[[?person/contact/?infected]] at length 1:")
    for path in enumerate_paths(graph, eq2, 1):
        print(f"  {path.to_text()}")

    # Equation (3): the same with the date restriction, on the property graph.
    eq3 = parse_regex('?person/(contact & date="3/4/21")/?infected')
    print('\n[[?person/(contact & date="3/4/21")/?infected]]:')
    for path in enumerate_paths(figure2_property(), eq3, 1):
        print(f"  {path.to_text()}")

    # Who shared a bus with the infected person?
    share = parse_regex("?person/rides/?bus/rides^-/?infected")
    print("\nbus-sharing paths (Count =",
          count_paths_exact(graph, share, 2), "):")
    for path in enumerate_paths(graph, share, 2):
        print(f"  {path.to_text()}")

    # Centrality with and without knowledge (Section 4.2).
    plain = betweenness_centrality(graph, directed=False)
    transport = regex_betweenness(
        graph, parse_regex("?person/rides/?bus/rides^-/?person"))
    print("\nnode   bc      bc_r(transport)")
    for node in sorted(graph.nodes()):
        print(f"  {node}   {plain[node]:5.1f}   {transport[node]:5.1f}")
    print("\nThe bus n3 keeps its centrality under the transport pattern;")
    print("label-blind central nodes like n1 drop to zero.")


if __name__ == "__main__":
    main()
