"""The same knowledge graph queried in mini-SPARQL and mini-Cypher.

Loads the Figure 2 world into both store shapes (triple store with
SPO/POS/OSP indexes; property-graph store with label/adjacency indexes)
and runs equivalent queries in each language, including property paths on
the SPARQL side and variable-length relationships on the Cypher side.

Run with::

    python examples/query_languages.py
"""

from repro import figure2_labeled, figure2_property, run_cypher, run_sparql
from repro.models.convert import labeled_to_rdf
from repro.storage import PropertyGraphStore, TripleStore


def main() -> None:
    triple_store = TripleStore.from_graph(labeled_to_rdf(figure2_labeled()))
    property_store = PropertyGraphStore(figure2_property())
    print(f"triple store: {len(triple_store)} triples; "
          f"property store: {property_store.graph.node_count()} nodes\n")

    print("SPARQL — who shared a bus with an infected person?")
    result = run_sparql(triple_store, """
        SELECT DISTINCT ?x WHERE {
          ?x <rdf:type> <person> .
          ?x <rides> ?b . ?b <rdf:type> <bus> .
          ?z <rides> ?b . ?z <rdf:type> <infected> .
        } ORDER BY ?x""")
    for (person,) in result.rows:
        print(f"  {person}")

    print("\nSPARQL — property path: everyone n4 can reach via contact/lives chains")
    result = run_sparql(triple_store,
                        "SELECT ?y WHERE { <n4> (<contact>|<lives>)+ ?y . }")
    print(f"  {sorted(row[0] for row in result.rows)}")

    print("\nCypher — the same bus question, with names and ride dates:")
    result = run_cypher(property_store, """
        MATCH (x:person)-[r:rides]->(b:bus)<-[:rides]-(z:infected)
        RETURN x.name AS who, r.date AS rode_on, b AS bus ORDER BY who""")
    for who, date, bus in result.rows:
        print(f"  {who} rode {bus} on {date}")

    print("\nCypher — variable-length contact chains from Ana:")
    result = run_cypher(property_store, """
        MATCH (a:person {name: "Ana"})-[e:contact*1..3]->(x)
        RETURN x.name AS name, x ORDER BY name""")
    for name, node in result.rows:
        print(f"  reaches {name} ({node})")

    print("\nCypher — cohabitants (shared address):")
    result = run_cypher(property_store, """
        MATCH (a:person)-[:lives]->(h)<-[:lives]-(b:person)
        WHERE a <> b RETURN a.name AS a, b.name AS b, h.zip AS zip""")
    for a, b, zipcode in result.rows:
        print(f"  {a} lives with {b} (zip {zipcode})")


if __name__ == "__main__":
    main()
