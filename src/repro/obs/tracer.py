"""Structured tracing for query evaluation: nested spans, zero cost off.

The governor (DESIGN.md §4c) made queries *interruptible*; this module makes
them *observable*.  A :class:`Tracer` records a tree of :class:`Span` objects
— ``parse``, ``compile``, ``product``, ``evaluate``, ``degrade:<rung>`` —
each carrying wall-clock start, monotonic duration, free-form attributes,
and (when handed an execution :class:`~repro.exec.Context`) the checkpoint
steps and frontier high-water mark spent inside the span, plus compile-cache
hit/miss deltas from :func:`repro.core.rpq.nfa.compile_cache_info`.

The integration contract mirrors the governor's ``ctx=None`` convention
exactly (the *dual-None* convention, DESIGN.md §4d): every traced entry
point takes ``tracer=None`` and guards each span with ``if tracer is not
None``.  Spans wrap whole evaluation phases, never hot-loop iterations, so a
disabled tracer costs a handful of ``is None`` checks per *query* — not per
step — and allocates no :class:`Span` objects at all (the overhead-guard
test asserts this literally).
"""

from __future__ import annotations

import json
import time

from repro.core.rpq.nfa import compile_cache_info

#: Schema version stamped into every exported trace.
TRACE_SCHEMA_VERSION = 1


class Span:
    """One timed phase of a query: name, timings, attributes, children."""

    __slots__ = ("name", "attrs", "children", "wall_start", "duration",
                 "status", "error", "_mono_start", "_ctx", "_steps_before",
                 "_cache_before")

    def __init__(self, name: str, *, ctx=None, cache: bool = False,
                 **attrs) -> None:
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.wall_start = time.time()
        self.duration: float | None = None
        self.status = "ok"
        self.error: str | None = None
        self._ctx = ctx
        self._steps_before = (None if ctx is None
                              else ctx.stats.total_checkpoints)
        self._cache_before = compile_cache_info() if cache else None
        self._mono_start = time.perf_counter()

    def _finish(self, error: BaseException | None = None) -> None:
        self.duration = time.perf_counter() - self._mono_start
        if error is not None:
            self.status = "error"
            self.error = f"{type(error).__name__}: {error}"
        ctx = self._ctx
        if ctx is not None:
            self.attrs["steps"] = (ctx.stats.total_checkpoints
                                   - self._steps_before)
            self.attrs["frontier_hwm"] = ctx.stats.peak_frontier
        if self._cache_before is not None:
            after = compile_cache_info()
            before = self._cache_before
            self.attrs["cache_hits"] = after["hits"] - before["hits"]
            self.attrs["cache_misses"] = after["misses"] - before["misses"]

    def to_dict(self) -> dict:
        """JSON-serializable form (round-trips through ``json.loads``)."""
        return {
            "name": self.name,
            "wall_start": self.wall_start,
            "duration_s": self.duration,
            "status": self.status,
            "error": self.error,
            "attrs": {key: _jsonable(value)
                      for key, value in sorted(self.attrs.items())},
            "children": [child.to_dict() for child in self.children],
        }


def _jsonable(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


class _SpanContext:
    """Context-manager handle returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer.finish(self._span, error=exc)
        return False


class Tracer:
    """Collects a forest of spans for one (or several) queries.

    Use either the context-manager form::

        with tracer.span("evaluate", ctx=ctx, strategy="product") as span:
            span.attrs["answers"] = len(pairs)

    or the explicit ``start``/``finish`` pair when the phase does not nest
    lexically.  Spans started while another span is open become its
    children.
    """

    __slots__ = ("roots", "_stack")

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- recording -----------------------------------------------------------

    def start(self, name: str, *, ctx=None, cache: bool = False,
              **attrs) -> Span:
        span = Span(name, ctx=ctx, cache=cache, **attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Span, *, error: BaseException | None = None) -> None:
        span._finish(error)
        # Pop through abandoned children too, so an exception that skips
        # explicit finishes cannot corrupt later nesting.
        while self._stack:
            popped = self._stack.pop()
            if popped is span:
                break
            popped._finish(error)

    def span(self, name: str, *, ctx=None, cache: bool = False,
             **attrs) -> _SpanContext:
        return _SpanContext(self, self.start(name, ctx=ctx, cache=cache,
                                             **attrs))

    def annotate(self, **attrs) -> None:
        """Attach attributes to the innermost open span (no-op when idle)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": "repro.obs.trace",
            "version": TRACE_SCHEMA_VERSION,
            "spans": [span.to_dict() for span in self.roots],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> dict[str, dict]:
        """Per-span-name aggregate: count, total/max seconds, total steps.

        This is the compact form the bench harness attaches to BENCH JSON
        rows (one dict per query, no nesting).
        """
        totals: dict[str, dict] = {}
        def visit(span: Span) -> None:
            entry = totals.setdefault(span.name, {
                "count": 0, "total_s": 0.0, "max_s": 0.0, "steps": 0})
            entry["count"] += 1
            if span.duration is not None:
                entry["total_s"] += span.duration
                entry["max_s"] = max(entry["max_s"], span.duration)
            entry["steps"] += span.attrs.get("steps", 0) or 0
            for child in span.children:
                visit(child)
        for root in self.roots:
            visit(root)
        return totals

    def format_tree(self) -> str:
        """Human-readable indented span tree (the CLI ``--trace`` output)."""
        lines: list[str] = []
        def visit(span: Span, depth: int) -> None:
            duration = ("?" if span.duration is None
                        else f"{span.duration * 1000.0:.3f}ms")
            attrs = " ".join(f"{key}={span.attrs[key]}"
                             for key in sorted(span.attrs))
            flag = "" if span.status == "ok" else f" !{span.error}"
            lines.append(f"{'  ' * depth}{span.name:<18s} {duration:>10s}"
                         f"{'  ' + attrs if attrs else ''}{flag}")
            for child in span.children:
                visit(child, depth + 1)
        for root in self.roots:
            visit(root, 0)
        return "\n".join(lines)
