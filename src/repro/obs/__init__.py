"""Query observability: tracing, metrics, EXPLAIN (DESIGN.md §4d).

Three pieces, all dependency-free and all zero-cost when unused:

- :class:`Tracer` / :class:`Span` — per-query nested spans (``parse``,
  ``compile``, ``product``, ``evaluate``, ``degrade:<rung>``) with wall and
  monotonic timings, checkpoint-step deltas, frontier high-water marks and
  compile-cache hit/miss counters.  Entry points take ``tracer=None`` and
  guard every span, mirroring the governor's ``ctx=None`` convention: a
  disabled tracer allocates nothing and adds only ``is None`` checks.
- :class:`Metrics` — a counters + histograms registry aggregating traces
  across queries for long-lived processes; exports plain dicts/JSON.
- :func:`explain_pathql` / :func:`explain_sparql` / :func:`explain_cypher`
  — static strategy reports (chain-frontier-join vs product automaton,
  index-backed fetch plans, greedy join orders, degradation ladders).
"""

from repro.obs.explain import (
    EXPLAIN_SCHEMA_VERSION,
    ExplainReport,
    explain_cypher,
    explain_pathql,
    explain_sparql,
    regex_index_plan,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA_VERSION,
    Counter,
    Histogram,
    Metrics,
)
from repro.obs.tracer import TRACE_SCHEMA_VERSION, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EXPLAIN_SCHEMA_VERSION",
    "ExplainReport",
    "Histogram",
    "METRICS_SCHEMA_VERSION",
    "Metrics",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "explain_cypher",
    "explain_pathql",
    "explain_sparql",
    "regex_index_plan",
]
