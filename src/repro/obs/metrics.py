"""Process-wide metrics: counters and histograms, no third-party deps.

Where a :class:`~repro.obs.tracer.Tracer` describes *one* query in depth, a
:class:`Metrics` registry aggregates *across* queries for long-lived
processes: how many queries ran, how span durations distribute, cumulative
compile-cache hits.  Everything exports as plain dicts/JSON so dashboards
and the CLI ``--metrics-out`` need no client library.

The histogram keeps fixed cumulative-style buckets (geometric bounds
spanning microseconds to minutes by default) plus exact count/sum/min/max,
so merging and percentile estimation stay O(#buckets).
"""

from __future__ import annotations

import json

#: Geometric default bucket upper bounds (seconds): 1-2.5-5 per decade.
DEFAULT_BUCKETS = tuple(mantissa * 10.0 ** exponent
                        for exponent in range(-6, 3)
                        for mantissa in (1.0, 2.5, 5.0))

#: Schema version stamped into every exported snapshot.
METRICS_SCHEMA_VERSION = 1


class Counter:
    """A monotonically increasing numeric counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "minimum", "maximum")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(sorted(bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +overflow
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float | None:
        return None if not self.count else self.total / self.count

    def quantile(self, q: float) -> float | None:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation), or ``None`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return None
        rank = q * self.count
        running = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            running += bucket_count
            if running >= rank and bucket_count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.maximum
        return self.maximum

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "buckets": {
                **{f"le_{bound:g}": self.bucket_counts[index]
                   for index, bound in enumerate(self.bounds)
                   if self.bucket_counts[index]},
                **({"overflow": self.bucket_counts[-1]}
                   if self.bucket_counts[-1] else {}),
            },
        }


class Metrics:
    """A named registry of counters and histograms.

    ``counter(name)`` / ``histogram(name)`` create-or-get, so call sites
    never race on registration order.  :meth:`observe_trace` folds one
    finished :class:`~repro.obs.tracer.Tracer` into the registry — per-span
    duration histograms, step totals, cache hit/miss counters — which is how
    the CLI turns ``--trace`` data into ``--metrics-out`` aggregates.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = Counter(name)
        elif not isinstance(instrument, Counter):
            raise TypeError(f"{name!r} is already a {type(instrument).__name__}")
        return instrument

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = Histogram(name, bounds)
        elif not isinstance(instrument, Histogram):
            raise TypeError(f"{name!r} is already a {type(instrument).__name__}")
        return instrument

    def observe_trace(self, tracer) -> None:
        """Fold every span of a tracer into per-span-name aggregates."""
        def visit(span) -> None:
            self.counter(f"span.{span.name}.count").inc()
            if span.duration is not None:
                self.histogram(f"span.{span.name}.seconds").observe(span.duration)
            if span.status != "ok":
                self.counter(f"span.{span.name}.errors").inc()
            steps = span.attrs.get("steps")
            if steps:
                self.counter(f"span.{span.name}.steps").inc(steps)
            for key in ("cache_hits", "cache_misses"):
                delta = span.attrs.get(key)
                if delta:
                    self.counter(f"compile.{key.removeprefix('cache_')}").inc(delta)
            strategy = span.attrs.get("strategy")
            if strategy:
                self.counter(f"strategy.{strategy}").inc()
            for child in span.children:
                visit(child)
        for root in tracer.roots:
            visit(root)
        self.counter("queries.observed").inc()

    # -- export --------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "schema": "repro.obs.metrics",
            "version": METRICS_SCHEMA_VERSION,
            "instruments": {name: instrument.as_dict()
                            for name, instrument
                            in sorted(self._instruments.items())},
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)
