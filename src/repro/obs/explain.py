"""EXPLAIN: report the evaluation strategy a query will use, without running it.

Production graph engines expose plan inspection precisely because RPQ cost
is shape-dependent (Count is SpanL-complete; a chain regex is a frontier
join; a star forces the full product).  This module reproduces that for the
three frontends:

- :func:`explain_pathql` — regex shape (chain-frontier-join vs full
  product-automaton), per-edge-test index plan (label/feature candidates
  from PR 1's adjacency indexes vs full scans), automaton size, and — for
  governed ``COUNT`` — the degradation ladder with each rung's budget share;
- :func:`explain_sparql` — greedy-selectivity join order with per-pattern
  cardinality estimates, plus property-path closure shapes;
- :func:`explain_cypher` — per-pattern node candidate source (property
  index / label index / full scan) and relationship expansion plans.

All reports are static: built from the parsed query and the store's
indexes/statistics, never by executing the query.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.rpq.ast import Concat, EdgeAtom, NodeTest, Regex, Star, Union
from repro.core.rpq.evaluate import _chain_steps
from repro.core.rpq.nfa import compile_regex

#: Schema version stamped into every exported report.
#: v2 added the ``cache`` details section (key family, label footprint,
#: target version) for every frontend; the ``engine`` details section
#: (requested/chosen engine, reason, kernel layout) and the ``backend``
#: section (where the answers live: in-memory model vs mmapped CSR
#: segments) and the ``view`` section (materialized-view registration,
#: maintenance strategy, AS OF version pin) are additive within v2 —
#: readers that ignore unknown detail keys keep working.
EXPLAIN_SCHEMA_VERSION = 2


@dataclass
class ExplainReport:
    """A frontend-agnostic strategy report with dict/JSON/text forms."""

    frontend: str
    query: str
    strategy: str
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": "repro.obs.explain",
            "version": EXPLAIN_SCHEMA_VERSION,
            "frontend": self.frontend,
            "query": self.query,
            "strategy": self.strategy,
            "details": self.details,
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_text(self) -> str:
        lines = [f"EXPLAIN [{self.frontend}] {self.query}",
                 f"strategy: {self.strategy}"]
        lines.extend(_render(self.details, 1))
        return "\n".join(lines)


def _render(value, depth: int) -> list[str]:
    pad = "  " * depth
    lines: list[str] = []
    if isinstance(value, dict):
        for key, inner in value.items():
            if isinstance(inner, (dict, list)) and inner:
                lines.append(f"{pad}{key}:")
                lines.extend(_render(inner, depth + 1))
            else:
                lines.append(f"{pad}{key}: {_scalar(inner)}")
    elif isinstance(value, list):
        for inner in value:
            if isinstance(inner, (dict, list)):
                lines.append(f"{pad}-")
                lines.extend(_render(inner, depth + 1))
            else:
                lines.append(f"{pad}- {_scalar(inner)}")
    else:
        lines.append(f"{pad}{_scalar(value)}")
    return lines


def _scalar(value) -> str:
    if isinstance(value, (list, dict)) and not value:
        return "(none)"
    return str(value)


def _cache_section(key_family: str, footprint, target) -> dict:
    """The ``cache`` details block shared by all three frontends.

    Reports the canonical key family a :class:`~repro.cache.QueryCache`
    would file this query under, the label footprint that decides
    invalidation (a mutation record intersecting it evicts the entry), and
    the target's current version — the stamp a stored result would carry.
    Targets without a mutation log (version ``None``) are never cached.
    """
    return {
        "key_family": key_family,
        "footprint": footprint.to_dict(),
        "target_version": getattr(target, "version", None),
        "policy": "store exact-quality results; hit while no "
                  "footprint-intersecting mutation is logged",
    }


def _view_section(key, target, view, as_of) -> dict:
    """The ``view`` details block (additive within schema v2).

    Reports whether a :class:`~repro.ivm.ViewRegistry` passed as ``view=``
    already materializes this query (and with which maintenance strategy),
    and the transaction-time version an ``AS OF`` evaluation is pinned to —
    taken from the explicit ``as_of`` argument or from a graph that was
    itself produced by :func:`repro.ivm.as_of`.  ``strategy`` is ``None``
    when no registry is in play.
    """
    if as_of is None:
        as_of = getattr(target, "as_of_version", None)
    section: dict = {"registered": False, "strategy": None, "as_of": as_of}
    if view is not None:
        found = view._by_key.get(key)
        if found is not None:
            section.update(registered=True, name=found.name,
                           strategy=found.strategy,
                           view_version=found.version)
        else:
            section["strategy"] = "auto-register on first run"
    return section


# ---------------------------------------------------------------------------
# PathQL
# ---------------------------------------------------------------------------


def _engine_section(engine: str, graph=None, *, n_nodes: int | None = None,
                    footprint_edges: int | None = None,
                    scalar_reason: str | None = None) -> dict:
    """The ``engine`` details block: requested vs chosen engine and why.

    ``scalar_reason`` short-circuits resolution for evaluation modes that
    are scalar by construction.  A forced ``engine="vector"`` without
    numpy reports ``chosen: "unavailable"`` instead of raising — EXPLAIN
    never executes, so it describes the failure the run would hit.
    """
    from repro.core.rpq.vectorized.engine import pick_layout, resolve_engine
    from repro.errors import EngineUnavailableError

    section: dict = {"requested": engine}
    if scalar_reason is not None:
        section["chosen"] = "scalar"
        section["reason"] = scalar_reason
        return section
    try:
        chosen, reason = resolve_engine(engine, graph, n_nodes=n_nodes,
                                        footprint_edges=footprint_edges)
    except EngineUnavailableError as error:
        section["chosen"] = "unavailable"
        section["reason"] = str(error)
        return section
    section["chosen"] = chosen
    section["reason"] = reason
    if chosen == "vector":
        count = n_nodes if n_nodes is not None else graph.node_count()
        section["layout"] = pick_layout(count)
    return section


def _edge_atoms(regex: Regex):
    if isinstance(regex, EdgeAtom):
        yield regex
    elif isinstance(regex, (Union, Concat)):
        yield from _edge_atoms(regex.left)
        yield from _edge_atoms(regex.right)
    elif isinstance(regex, Star):
        yield from _edge_atoms(regex.inner)
    # NodeTest atoms consume no edge and need no fetch plan.


def regex_index_plan(graph, regex: Regex) -> list[dict]:
    """The fetch plan of every edge atom: index-backed or full scan.

    Mirrors the planning of :func:`repro.core.rpq.product._edge_fetchers`:
    a label-restricted test on a graph with a label adjacency index fetches
    only its candidate buckets (skipping the per-edge re-check when the
    candidate set is exact); everything else scans full incidence lists.
    """
    has_label_index = getattr(graph, "label_adjacency_index", None) is not None
    has_feature_index = getattr(graph, "feature_adjacency_index", None) is not None
    plan = []
    for atom in _edge_atoms(regex):
        labels = atom.test.label_candidates()
        features = atom.test.feature_candidates()
        if has_label_index and labels is not None:
            backend = "label-index"
            exact = atom.test.label_candidates_exact()
            candidates = sorted(labels, key=str)
        elif has_feature_index and features is not None:
            backend = "feature-index"
            exact = atom.test.feature_candidates_exact()
            candidates = [f"f{features[0] + 1}={v}"
                          for v in sorted(features[1], key=str)]
        else:
            backend = "full-scan"
            exact = False
            candidates = []
        plan.append({
            "test": atom.to_text(),
            "backend": backend,
            "candidates": candidates,
            "exact": exact,
            "recheck": not exact,
        })
    return plan


_MODE_STRATEGIES = {
    "enumerate": "product-automaton + polynomial-delay enumeration",
    "count": "exact subset DP over the product automaton",
    "count-approx": "FPRAS (Karp-Luby sampling over NFA sketches)",
    "sample": "uniform generation over the determinized product",
}


def explain_pathql(graph, text: str, *, governed: bool = False,
                   exact_share: float = 0.5,
                   approx_share: float = 0.8,
                   engine: str = "auto", view=None,
                   as_of: int | None = None) -> ExplainReport:
    """Strategy report for a PathQL statement (parsed, not executed)."""
    from repro.query.pathql import parse_pathql

    query = parse_pathql(text)
    nfa = compile_regex(query.regex)
    chain = _chain_steps(nfa)
    endpoint_free = query.source is None and query.target is None
    if chain is not None and endpoint_free:
        shape = f"chain({len(chain)} steps)"
        reachability = "chain-frontier-join (no product automaton)"
    else:
        shape = "general (product automaton)"
        reachability = "product-automaton fixpoint"

    strategy = _MODE_STRATEGIES[query.mode]
    details: dict = {
        "mode": query.mode,
        "regex": query.regex.to_text(),
        "regex_shape": shape,
        "reachability_strategy": reachability,
        "nfa_states": nfa.n_states,
        "nfa_edge_transitions": nfa.edge_transition_count(),
        "length": ("shortest" if query.shortest else
                   query.length if query.length is not None else
                   f"<= {query.max_length}"),
        "endpoints": {
            "from": query.source if query.source is not None else "(any)",
            "to": query.target if query.target is not None else "(any)",
        },
        "index_plan": regex_index_plan(graph, query.regex),
    }
    if query.mode == "count":
        from repro.core.rpq.evaluate import footprint_edge_count

        details["engine"] = _engine_section(
            engine, graph,
            footprint_edges=(footprint_edge_count(graph, nfa)
                             if engine == "auto" else None))
    else:
        details["engine"] = _engine_section(
            engine, graph,
            scalar_reason=(f"mode {query.mode!r} is scalar by construction "
                           "(emission order and seeded randomness are part "
                           "of the answer)"))
    from repro.cache import pathql_footprint
    from repro.storage.backend import backend_note

    details["cache"] = _cache_section("pathql", pathql_footprint(query), graph)
    details["backend"] = backend_note(graph)
    from repro.query.pathql import _canonical_key

    details["view"] = _view_section(_canonical_key(query), graph, view, as_of)
    if query.mode == "count" and governed:
        strategy = "governed degradation ladder (exact -> FPRAS -> lower bound)"
        remainder_after_exact = 1.0 - exact_share
        details["degradation_ladder"] = [
            {"rung": "exact", "algorithm": _MODE_STRATEGIES["count"],
             "budget_share": exact_share},
            {"rung": "approx", "algorithm": _MODE_STRATEGIES["count-approx"],
             "budget_share": round(remainder_after_exact * approx_share, 6)},
            {"rung": "lower-bound",
             "algorithm": "partial polynomial-delay enumeration",
             "budget_share": round(remainder_after_exact * (1.0 - approx_share), 6)},
        ]
    return ExplainReport("pathql", text, strategy, details)


# ---------------------------------------------------------------------------
# SPARQL
# ---------------------------------------------------------------------------


def _path_shape(path) -> str:
    from repro.query import sparql as s

    if isinstance(path, s.PIri):
        return f"<{path.iri}>"
    if isinstance(path, s.PVar):
        return f"?{path.name}"
    if isinstance(path, s.PInverse):
        return f"^({_path_shape(path.inner)})"
    if isinstance(path, s.PSequence):
        return f"{_path_shape(path.left)}/{_path_shape(path.right)}"
    if isinstance(path, s.PAlternative):
        return f"{_path_shape(path.left)}|{_path_shape(path.right)}"
    if isinstance(path, s.PStar):
        return f"({_path_shape(path.inner)})* [BFS closure]"
    if isinstance(path, s.PPlus):
        return f"({_path_shape(path.inner)})+ [BFS closure]"
    return type(path).__name__


def explain_sparql(store, text: str, *, engine: str = "auto", view=None,
                   as_of: int | None = None) -> ExplainReport:
    """Strategy report for a mini-SPARQL query: join order + estimates."""
    from repro.query.sparql import _estimate, parse_sparql

    query = parse_sparql(text)
    branches = (query.union_branches if query.union_branches
                else ((query.patterns, query.filters, query.optionals),))
    branch_reports = []
    for patterns, filters, optionals in branches:
        # Replay the evaluator's greedy selectivity ordering statically
        # (estimates under the empty binding; at run time estimates shrink
        # as variables bind, so this is the worst-case order).
        remaining = list(patterns)
        order = []
        while remaining:
            index, best = min(enumerate(remaining),
                              key=lambda item: _estimate(store, item[1], {}))
            remaining.pop(index)
            order.append(best)
        branch_reports.append({
            "join_order": [{
                "pattern": (f"{_term(p.subject)} {_path_shape(p.path)} "
                            f"{_term(p.object)}"),
                "estimated_matches": _estimate(store, p, {}),
            } for p in order],
            "filters": len(filters),
            "optional_groups": len(optionals),
        })
    details = {
        "triples": len(store),
        "union_branches": len(branch_reports),
        "branches": branch_reports,
        "distinct": query.distinct,
        "limit": query.limit if query.limit is not None else "(none)",
        "engine": _engine_section(engine, n_nodes=len(store.resources())),
    }
    from repro.cache import sparql_footprint
    from repro.storage.backend import backend_note

    details["cache"] = _cache_section("sparql", sparql_footprint(query), store)
    details["backend"] = backend_note(store)
    details["view"] = _view_section(("sparql", text), store, view, as_of)
    return ExplainReport(
        "sparql", text,
        "backtracking BGP join, greedy selectivity order (SPO/POS/OSP indexes)",
        details)


def _term(term) -> str:
    from repro.query import sparql as s

    if isinstance(term, s.Var):
        return f"?{term.name}"
    if isinstance(term, s.Iri):
        return f"<{term.value}>"
    return f'"{term.value}"'


# ---------------------------------------------------------------------------
# Cypher
# ---------------------------------------------------------------------------


def explain_cypher(store, text: str, *, engine: str = "auto", view=None,
                   as_of: int | None = None) -> ExplainReport:
    """Strategy report for a mini-Cypher query: candidate sources + expansions."""
    from repro.query.cypherish import parse_cypher

    query = parse_cypher(text)
    graph = store.graph
    pattern_reports = []
    for pattern in query.patterns:
        nodes = []
        for node_pattern in pattern.nodes:
            if node_pattern.properties:
                prop, value = node_pattern.properties[0]
                source = f"property-index({prop}={value})"
                estimate = len(store.nodes_with_property(prop, value))
            elif node_pattern.label is not None:
                source = f"label-index(:{node_pattern.label})"
                estimate = len(store.nodes_with_label(node_pattern.label))
            else:
                source = "full-scan"
                estimate = graph.node_count()
            nodes.append({
                "var": node_pattern.var if node_pattern.var else "(anon)",
                "candidate_source": source,
                "estimated_candidates": estimate,
            })
        rels = []
        for rel in pattern.rels:
            expansion = (f"bfs({rel.min_hops}..{rel.max_hops})"
                         if rel.variable_length else "adjacency")
            rels.append({
                "var": rel.var if rel.var else "(anon)",
                "label": rel.label if rel.label is not None else "(any)",
                "direction": rel.direction,
                "expansion": expansion,
            })
        pattern_reports.append({"nodes": nodes, "rels": rels})
    details = {
        "nodes": graph.node_count(),
        "edges": graph.edge_count(),
        "patterns": pattern_reports,
        "where": query.where is not None,
        "distinct": query.distinct,
        "limit": query.limit if query.limit is not None else "(none)",
    }
    engine_section = _engine_section(engine, graph)
    if engine_section.get("chosen") == "vector" and not query.distinct:
        # Mirror the evaluator: the set-semantics expansion would collapse
        # walk multiplicities a non-DISTINCT answer must keep.
        engine_section.pop("layout", None)
        engine_section["chosen"] = "scalar"
        engine_section["reason"] = ("vector demoted: non-DISTINCT query "
                                    "returns walk multiplicities")
    details["engine"] = engine_section
    from repro.cache import cypher_footprint
    from repro.storage.backend import backend_note

    details["cache"] = _cache_section("cypher", cypher_footprint(query), store)
    details["backend"] = backend_note(store)
    details["view"] = _view_section(("cypher", text), store, view, as_of)
    return ExplainReport(
        "cypher", text,
        "backtracking pattern match over label/property indexes",
        details)
