"""Synthetic DBLP-like corpus, calibrated to the statistics behind Figure 1.

The paper counts DBLP-indexed publications whose *titles* contain one of
five keywords, 2010-2020 (Figure 1), and reports two ratio observations:
in 2015, 70% of "knowledge graph" papers were about RDF/SPARQL; by 2020
that fell to 14%.  DBLP itself is external data, so — per the
substitution rule — this module generates a corpus of (year, title, venue)
records whose keyword counts per year follow the paper's qualitative
series and whose KG/RDF overlap matches the reported ratios.  The counting
*pipeline* in :mod:`repro.bibliometrics` is the faithful part: it scans
titles exactly as the paper's methodology describes.

Calibration targets (approximate paper-reading of Figure 1):

- "knowledge graph": negligible until 2012, takeoff after the 2012 Google
  announcement (visible growth from 2013), steep rise to dominance by 2020;
- "RDF" and "SPARQL": stable through the decade (RDF higher), with a mild
  late-decade decline relative to knowledge graphs;
- "graph database": comparatively small, no significant growth;
- "property graph": negligible throughout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.util.rng import make_rng

#: The five keywords the paper tracks, lowercase.
KEYWORDS = ("graph database", "rdf", "sparql", "property graph", "knowledge graph")

#: The decade of Figure 1.
YEARS = tuple(range(2010, 2021))

# Expected number of titles per keyword per year (the Figure 1 series the
# generator is calibrated to; absolute scale is arbitrary, shape is what
# the paper shows).
_SERIES: dict[str, dict[int, int]] = {
    "knowledge graph": {
        2010: 5, 2011: 6, 2012: 8, 2013: 25, 2014: 45, 2015: 80,
        2016: 140, 2017: 230, 2018: 380, 2019: 560, 2020: 750,
    },
    "rdf": {
        2010: 220, 2011: 230, 2012: 240, 2013: 245, 2014: 250, 2015: 245,
        2016: 235, 2017: 225, 2018: 215, 2019: 205, 2020: 195,
    },
    "sparql": {
        2010: 90, 2011: 100, 2012: 110, 2013: 115, 2014: 120, 2015: 118,
        2016: 112, 2017: 105, 2018: 100, 2019: 92, 2020: 85,
    },
    "graph database": {
        2010: 18, 2011: 20, 2012: 24, 2013: 28, 2014: 30, 2015: 32,
        2016: 33, 2017: 34, 2018: 36, 2019: 38, 2020: 40,
    },
    "property graph": {
        2010: 1, 2011: 1, 2012: 2, 2013: 2, 2014: 3, 2015: 4,
        2016: 4, 2017: 5, 2018: 6, 2019: 6, 2020: 7,
    },
}

# Fraction of "knowledge graph" titles that also mention RDF or SPARQL —
# the paper's 70% (2015) to 14% (2020) observation, linearly interpolated
# outside the two anchors.
_KG_RDF_OVERLAP: dict[int, float] = {
    2010: 0.70, 2011: 0.70, 2012: 0.70, 2013: 0.70, 2014: 0.70, 2015: 0.70,
    2016: 0.59, 2017: 0.48, 2018: 0.36, 2019: 0.25, 2020: 0.14,
}

_TOPICS = [
    "query answering", "data integration", "entity resolution", "reasoning",
    "embeddings", "stream processing", "benchmarking", "schema discovery",
    "access control", "visualization", "provenance", "federation",
    "completion", "question answering", "storage layouts", "indexing",
]

_VENUES = ["SIGMOD", "VLDB", "ISWC", "WWW", "EDBT", "ICDE", "CIKM", "ESWC"]

_FILLER_SUBJECTS = [
    "relational engines", "column stores", "stream systems", "data lakes",
    "machine learning pipelines", "crowdsourcing", "spreadsheets",
    "time series", "text analytics", "map matching",
]


@dataclass(frozen=True)
class Publication:
    """One bibliographic record: what the title scan consumes."""

    year: int
    title: str
    venue: str


def generate_corpus(rng: int | random.Random | None = 0, *,
                    noise: float = 0.05,
                    filler_per_year: int = 400) -> list[Publication]:
    """Generate the synthetic bibliography.

    ``noise`` jitters each yearly count by up to that relative amount (the
    shape survives); ``filler_per_year`` adds keyword-free records so the
    scanner has to actually filter.
    """
    rng = make_rng(rng)
    corpus: list[Publication] = []
    for year in YEARS:
        kg_total = _jitter(rng, _SERIES["knowledge graph"][year], noise)
        overlap_count = round(kg_total * _KG_RDF_OVERLAP[year])
        for i in range(kg_total):
            if i < overlap_count:
                partner = "RDF" if rng.random() < 0.6 else "SPARQL"
                title = (f"{rng.choice(_TOPICS).title()} for Knowledge Graph "
                         f"Systems with {partner}")
            else:
                title = f"Knowledge Graph {rng.choice(_TOPICS).title()}"
            corpus.append(Publication(year, title, rng.choice(_VENUES)))
        for keyword in ("rdf", "sparql", "graph database", "property graph"):
            target = _jitter(rng, _SERIES[keyword][year], noise)
            if keyword in ("rdf", "sparql"):
                # Subtract the KG titles that already mention this keyword,
                # so scans count each paper once per keyword, as DBLP would.
                already = sum(1 for p in corpus
                              if p.year == year and keyword in p.title.lower())
                target = max(target - already, 0)
            rendered = keyword.upper() if keyword in ("rdf", "sparql") else keyword.title()
            for _ in range(target):
                corpus.append(Publication(
                    year, f"{rendered} {rng.choice(_TOPICS).title()}",
                    rng.choice(_VENUES)))
        for _ in range(filler_per_year):
            corpus.append(Publication(
                year,
                f"{rng.choice(_TOPICS).title()} over {rng.choice(_FILLER_SUBJECTS).title()}",
                rng.choice(_VENUES)))
    rng.shuffle(corpus)
    return corpus


def _jitter(rng: random.Random, value: int, noise: float) -> int:
    if noise <= 0:
        return value
    spread = max(1, round(value * noise))
    return max(0, value + rng.randint(-spread, spread))
