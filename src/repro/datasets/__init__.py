"""Workload generators.

The paper's running example and figure are built from data we cannot ship
(real contact-tracing data; the DBLP dump), so this package generates
synthetic equivalents whose *relevant statistics* match what the paper
reports — the substitutions are documented in DESIGN.md.

- :mod:`repro.datasets.contact` — contact-tracing property graphs with the
  Figure 2 schema (person/infected/bus/address/company; rides, contact,
  lives, owns), at any scale.
- :mod:`repro.datasets.dblp` — a synthetic bibliography calibrated to the
  keyword trends of Figure 1.
- :mod:`repro.datasets.random_graphs` — Erdos-Renyi / Barabasi-Albert /
  random labeled and vector graphs for algorithm benchmarks.
"""

from repro.datasets.contact import generate_contact_graph
from repro.datasets.dblp import Publication, generate_corpus, KEYWORDS, YEARS
from repro.datasets.random_graphs import (
    barabasi_albert,
    clustered_labeled_graph,
    complete_multigraph,
    erdos_renyi,
    random_labeled_graph,
    random_vector_graph,
)
from repro.datasets.social import partition_accuracy, stochastic_block_model

__all__ = [
    "generate_contact_graph",
    "Publication", "generate_corpus", "KEYWORDS", "YEARS",
    "erdos_renyi", "barabasi_albert", "clustered_labeled_graph",
    "complete_multigraph",
    "random_labeled_graph", "random_vector_graph",
    "stochastic_block_model", "partition_accuracy",
]
