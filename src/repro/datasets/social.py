"""Stochastic block model social networks.

The community-detection experiments of Section 4.2 ("groups with a rich
interaction in a network") need graphs with planted structure; this module
generates labeled graphs from the stochastic block model: k communities,
within-community edge probability ``p_in``, across-community ``p_out``.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.models.labeled import LabeledGraph
from repro.util.rng import make_rng


def stochastic_block_model(sizes: Sequence[int], p_in: float, p_out: float, *,
                           rng: int | random.Random | None = 0,
                           node_label: str = "person",
                           edge_label: str = "knows") -> tuple[LabeledGraph, list[set]]:
    """Generate an SBM graph; returns (graph, planted communities).

    Edges are directed and sampled independently per ordered pair; node ids
    are ``b<block>_<i>`` so the planted partition is recoverable by eye.
    """
    if not sizes:
        raise ValueError("need at least one block")
    if not (0 <= p_out <= p_in <= 1):
        raise ValueError("expected 0 <= p_out <= p_in <= 1")
    rng = make_rng(rng)
    graph = LabeledGraph()
    blocks: list[set] = []
    for b, size in enumerate(sizes):
        members = {f"b{b}_{i}" for i in range(size)}
        for node in sorted(members):
            graph.add_node(node, node_label)
        blocks.append(members)
    edge = 0
    all_nodes = [(b, node) for b, members in enumerate(blocks)
                 for node in sorted(members)]
    for b_u, u in all_nodes:
        for b_v, v in all_nodes:
            if u == v:
                continue
            probability = p_in if b_u == b_v else p_out
            if rng.random() < probability:
                graph.add_edge(f"e{edge}", u, v, edge_label)
                edge += 1
    return graph, blocks


def partition_accuracy(found: Sequence[set], planted: Sequence[set]) -> float:
    """Fraction of nodes whose found community best-matches their planted one.

    Each found community votes for the planted block it overlaps most; a
    node counts as correct when it belongs to that block.
    """
    total = sum(len(block) for block in planted)
    if total == 0:
        return 1.0
    correct = 0
    for community in found:
        best_overlap = max(planted, key=lambda block: len(block & community))
        correct += len(best_overlap & community)
    return correct / total
