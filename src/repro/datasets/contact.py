"""Contact-tracing graph generator — the paper's running example, at scale.

Produces property graphs with the exact schema of Figure 2: ``person`` and
``infected`` nodes with name/age, ``bus`` nodes ridden on dates, ``address``
nodes with zip codes shared by cohabitants, and ``company`` nodes owning
buses.  All of the paper's worked regexes — eq. (2), eq. (3), the bus
centrality pattern and the propagation pattern r1 — are non-trivial on
these graphs, which is what the benchmarks need.
"""

from __future__ import annotations

import random

from repro.models.property import PropertyGraph
from repro.util.rng import make_rng

_FIRST_NAMES = [
    "Julia", "Pedro", "Ana", "Juan", "Marcela", "Claudio", "Aidan", "Renzo",
    "Sofia", "Diego", "Valentina", "Matias", "Camila", "Benjamin", "Isidora",
    "Vicente", "Emilia", "Tomas", "Josefa", "Lucas",
]

_DATES = [f"3/{day}/21" for day in range(1, 29)]


def generate_contact_graph(n_people: int = 30, n_buses: int = 4,
                           n_addresses: int = 12, n_companies: int = 2, *,
                           infection_rate: float = 0.15,
                           rides_per_person: float = 1.5,
                           contacts_per_person: float = 1.2,
                           rng: int | random.Random | None = 0) -> PropertyGraph:
    """Generate a contact-tracing property graph.

    Node ids follow the paper's ``n<i>`` convention; edge ids are ``e<i>``.
    Each person lives at one address, rides a Poisson-ish number of buses
    and has directed contact edges to other people; a fraction of people is
    labeled ``infected`` instead of ``person``.
    """
    if n_people < 1 or n_buses < 1 or n_addresses < 1 or n_companies < 1:
        raise ValueError("all entity counts must be at least 1")
    rng = make_rng(rng)
    graph = PropertyGraph()
    next_node = iter(range(1, 10 ** 9))
    next_edge = iter(range(1, 10 ** 9))

    def node_id() -> str:
        return f"n{next(next_node)}"

    def edge_id() -> str:
        return f"e{next(next_edge)}"

    people = []
    for _ in range(n_people):
        label = "infected" if rng.random() < infection_rate else "person"
        person = graph.add_node(node_id(), label, {
            "name": rng.choice(_FIRST_NAMES),
            "age": str(rng.randint(18, 90)),
        })
        people.append(person)
    buses = [graph.add_node(node_id(), "bus") for _ in range(n_buses)]
    addresses = [graph.add_node(node_id(), "address",
                                {"zip": str(8320000 + rng.randint(0, 999))})
                 for _ in range(n_addresses)]
    companies = [graph.add_node(node_id(), "company",
                                {"name": f"Trans{identifier}"})
                 for identifier in "ABCDEFGH"[:n_companies]]

    for bus in buses:
        graph.add_edge(edge_id(), rng.choice(companies), bus, "owns")
    for person in people:
        graph.add_edge(edge_id(), person, rng.choice(addresses), "lives")
        n_rides = _poissonish(rng, rides_per_person)
        for _ in range(n_rides):
            graph.add_edge(edge_id(), person, rng.choice(buses), "rides",
                           {"date": rng.choice(_DATES)})
        n_contacts = _poissonish(rng, contacts_per_person)
        for _ in range(n_contacts):
            other = rng.choice(people)
            if other != person:
                graph.add_edge(edge_id(), person, other, "contact",
                               {"date": rng.choice(_DATES)})
    return graph


def _poissonish(rng: random.Random, mean: float) -> int:
    """A small-integer count with the given mean (geometric-style sampler)."""
    count = int(mean)
    fractional = mean - count
    if rng.random() < fractional:
        count += 1
    # Occasionally add bursts so degree distributions are not flat.
    while rng.random() < 0.15:
        count += 1
    return count
