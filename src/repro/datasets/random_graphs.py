"""Random graph generators for algorithm benchmarks and property tests."""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.models.labeled import LabeledGraph
from repro.models.vector import VectorGraph, VectorSchema
from repro.util.rng import make_rng


def erdos_renyi(n: int, p: float, *, rng: int | random.Random | None = 0,
                node_labels: Sequence[str] = ("node",),
                edge_labels: Sequence[str] = ("edge",)) -> LabeledGraph:
    """Directed G(n, p) with labels drawn uniformly from the given pools."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0 <= p <= 1:
        raise ValueError("p must be in [0, 1]")
    rng = make_rng(rng)
    graph = LabeledGraph()
    for i in range(n):
        graph.add_node(f"v{i}", rng.choice(list(node_labels)))
    edge = 0
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < p:
                graph.add_edge(f"e{edge}", f"v{i}", f"v{j}",
                               rng.choice(list(edge_labels)))
                edge += 1
    return graph


def barabasi_albert(n: int, m: int, *, rng: int | random.Random | None = 0,
                    node_labels: Sequence[str] = ("node",),
                    edge_labels: Sequence[str] = ("edge",)) -> LabeledGraph:
    """Preferential attachment: each new node attaches to m earlier nodes."""
    if m < 1 or n < m + 1:
        raise ValueError("need n > m >= 1")
    rng = make_rng(rng)
    graph = LabeledGraph()
    targets = list(range(m))
    for i in range(n):
        graph.add_node(f"v{i}", rng.choice(list(node_labels)))
    repeated: list[int] = list(range(m))
    edge = 0
    for i in range(m, n):
        chosen = set()
        while len(chosen) < m:
            chosen.add(rng.choice(repeated) if repeated else rng.randrange(i))
        for j in chosen:
            graph.add_edge(f"e{edge}", f"v{i}", f"v{j}",
                           rng.choice(list(edge_labels)))
            edge += 1
            repeated.extend((i, j))
    del targets
    return graph


def random_labeled_graph(n: int, n_edges: int, *,
                         node_labels: Sequence[str] = ("a", "b"),
                         edge_labels: Sequence[str] = ("r", "s"),
                         rng: int | random.Random | None = 0,
                         allow_self_loops: bool = True,
                         allow_parallel: bool = True) -> LabeledGraph:
    """Uniform random labeled multigraph with exactly ``n_edges`` edges."""
    if n < 1 and n_edges > 0:
        raise ValueError("cannot place edges in an empty graph")
    rng = make_rng(rng)
    graph = LabeledGraph()
    for i in range(n):
        graph.add_node(f"v{i}", rng.choice(list(node_labels)))
    placed: set[tuple] = set()
    edge = 0
    attempts = 0
    while edge < n_edges and attempts < 50 * n_edges + 100:
        attempts += 1
        i, j = rng.randrange(n), rng.randrange(n)
        if i == j and not allow_self_loops:
            continue
        if not allow_parallel and (i, j) in placed:
            continue
        placed.add((i, j))
        graph.add_edge(f"e{edge}", f"v{i}", f"v{j}",
                       rng.choice(list(edge_labels)))
        edge += 1
    return graph


def clustered_labeled_graph(n_clusters: int, cluster_size: int,
                            edges_per_cluster: int, *,
                            node_labels: Sequence[str] = ("a", "b"),
                            edge_labels: Sequence[str] = ("r", "s"),
                            rng: int | random.Random | None = 0) -> LabeledGraph:
    """Disjoint union of ``n_clusters`` dense random multigraphs.

    Every edge stays inside its cluster, so any path-shaped computation
    seeded at a node explores only that node's cluster.  This is the
    substrate for the parallel scaling benchmarks: sharding work by start
    node then partitions the graph's clusters across workers with no
    shared exploration, isolating the harness overhead from the
    (workload-dependent) cost of overlapping neighborhoods.
    """
    if n_clusters < 1 or cluster_size < 1:
        raise ValueError("need at least one cluster of at least one node")
    rng = make_rng(rng)
    graph = LabeledGraph()
    edge = 0
    for cluster in range(n_clusters):
        base = cluster * cluster_size
        for i in range(cluster_size):
            graph.add_node(f"v{base + i}", rng.choice(list(node_labels)))
        for _ in range(edges_per_cluster):
            i, j = rng.randrange(cluster_size), rng.randrange(cluster_size)
            graph.add_edge(f"e{edge}", f"v{base + i}", f"v{base + j}",
                           rng.choice(list(edge_labels)))
            edge += 1
    return graph


def complete_multigraph(n: int,
                        edge_labels: Sequence[str] = ("a", "b"),
                        node_label: str = "node") -> LabeledGraph:
    """Complete directed multigraph (with self-loops): every ordered node
    pair carries one edge per label.

    This is the adversarial substrate for exact path counting: every label
    word over ``edge_labels`` is realized along every node sequence, so an
    ambiguous regex like ``(a + b)*/a/(a + b)^m/(a + b)*`` drives the
    determinized subset space to its worst case while staying tiny for the
    (polynomial) FPRAS — the workload of the governor experiments.
    """
    graph = LabeledGraph()
    for i in range(n):
        graph.add_node(f"v{i}", node_label)
    edge = 0
    for i in range(n):
        for j in range(n):
            for label in edge_labels:
                graph.add_edge(f"e{edge}", f"v{i}", f"v{j}", label)
                edge += 1
    return graph


def random_vector_graph(n: int, n_edges: int, dimension: int, *,
                        values: Sequence[str] = ("0", "1"),
                        rng: int | random.Random | None = 0) -> VectorGraph:
    """Random vector-labeled graph with features drawn from ``values``."""
    rng = make_rng(rng)
    schema = VectorSchema(tuple(f"feat{i}" for i in range(1, dimension + 1)))
    graph = VectorGraph(dimension, schema)

    def vector() -> tuple:
        return tuple(rng.choice(list(values)) for _ in range(dimension))

    for i in range(n):
        graph.add_node(f"v{i}", vector())
    for edge in range(n_edges):
        i, j = rng.randrange(n), rng.randrange(n)
        graph.add_edge(f"e{edge}", f"v{i}", f"v{j}", vector())
    return graph
