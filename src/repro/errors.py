"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle all library failures.  Specific
subclasses mark the subsystem at fault, which keeps error handling in
downstream code explicit.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class GraphError(ReproError):
    """A graph model was used inconsistently (duplicate ids, missing nodes...)."""


class UnknownNodeError(GraphError):
    """An operation referenced a node id that is not in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"unknown node: {node!r}")
        self.node = node


class UnknownEdgeError(GraphError):
    """An operation referenced an edge id that is not in the graph."""

    def __init__(self, edge: object) -> None:
        super().__init__(f"unknown edge: {edge!r}")
        self.edge = edge


class DuplicateIdError(GraphError):
    """A node or edge id was added twice."""

    def __init__(self, kind: str, identifier: object) -> None:
        super().__init__(f"duplicate {kind} id: {identifier!r}")
        self.kind = kind
        self.identifier = identifier


class ModelCapabilityError(ReproError):
    """A test or query needs a capability the graph model does not have.

    For example, a feature test ``(f_i = v)`` only makes sense on a
    vector-labeled graph; evaluating it on a plain labeled graph raises
    this error rather than silently returning ``False``.
    """


class ConversionError(ReproError):
    """A conversion between graph data models could not be performed."""


class GraphDecodeError(ConversionError):
    """A serialized graph document was malformed.

    Distinguishes *corrupt or hand-mangled input* from library bugs: the
    decoder never lets a raw :class:`KeyError`/:class:`TypeError`/
    :class:`ValueError` escape.  ``field`` names the offending location in
    document coordinates (``"edges[3].source"``); ``line``/``column`` are
    set when the failure happened at the JSON layer.  Storage recovery
    (:mod:`repro.storage`) keys off this type to classify a snapshot as
    corrupt (fall back to an older one) rather than crashing.
    """

    def __init__(self, message: str, *, field: str | None = None,
                 line: int | None = None, column: int | None = None) -> None:
        where = ""
        if field is not None:
            where = f" (at {field})"
        elif line is not None:
            where = f" (at line {line}, column {column})"
        super().__init__(f"{message}{where}")
        self.field = field
        self.line = line
        self.column = column


class StorageError(ReproError):
    """Base class for durable-storage failures (see :mod:`repro.storage`)."""


class WalWriteError(StorageError):
    """A WAL append could not be made durable.

    Raised after the write/fsync retry-with-backoff loop is exhausted;
    ``attempts`` records how many times the operation was tried.  The
    in-memory graph may be *ahead* of the log when this escapes —
    :class:`~repro.storage.DurableGraph` therefore poisons itself when one
    of these surfaces: further mutations/checkpoints raise
    :class:`StorageError` until the store is reopened (recovery replays
    only acknowledged entries).
    """

    def __init__(self, reason: str, attempts: int) -> None:
        super().__init__(f"WAL write failed after {attempts} attempts: {reason}")
        self.attempts = attempts


class WalCorruptionError(StorageError):
    """A WAL file was unusable beyond tail-truncation repair.

    Torn or bit-flipped *tail* records are expected after a crash and are
    silently truncated during recovery; this error is reserved for
    structural damage recovery cannot scope — a bad file magic, or
    corruption in the *middle* of the acknowledged history.
    """


class SnapshotError(StorageError):
    """No usable snapshot/metadata could be read or written."""


class SegmentError(StorageError):
    """A CSR segment file could not be written, opened or decoded.

    Covers the disk-read path of :mod:`repro.storage.diskread`: a missing
    or truncated segment file, a bad magic/header, and CRC mismatches
    discovered when a lazily-read segment is first decoded.  Like snapshot
    corruption, this is survivable at open time (an older segment file can
    be used) but fatal once a backend is serving queries — a backend never
    silently substitutes data for a frame that fails its checksum.
    """


class EngineUnavailableError(ReproError):
    """An explicitly requested evaluation engine cannot run here.

    Raised when ``engine="vector"`` is forced but numpy is not importable;
    ``engine="auto"`` never raises this — it falls back to the scalar
    engine instead.
    """


class RegexSyntaxError(ReproError):
    """The textual form of a regular path query could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        location = "" if position is None else f" (at position {position})"
        super().__init__(f"{message}{location}")
        self.position = position


class QuerySyntaxError(ReproError):
    """A mini-SPARQL or mini-Cypher query could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        location = "" if position is None else f" (at position {position})"
        super().__init__(f"{message}{location}")
        self.position = position


class QueryEvaluationError(ReproError):
    """A query was well-formed but could not be evaluated."""


class LogicError(ReproError):
    """A logic formula was malformed or outside the supported fragment."""


class BoundedVariableError(LogicError):
    """A formula does not fit in the requested number of variables."""


class EstimationError(ReproError):
    """A randomized estimator could not produce a usable estimate."""


class SchemaError(ReproError):
    """A relational table or vector-graph schema was violated."""


class InvalidLengthError(ReproError, ValueError):
    """A path length / layer count parameter was outside its domain.

    Also a :class:`ValueError`, so callers validating numeric arguments the
    Python way keep working — but the library-wide "catch :class:`ReproError`"
    contract now covers these too.
    """

    def __init__(self, name: str, value: object) -> None:
        super().__init__(f"{name} must be non-negative, got {value!r}")
        self.name = name
        self.value = value


class ViewError(ReproError):
    """A materialized view was registered or used inconsistently.

    Raised when a view is served against a different target than it was
    registered on, or a name is registered twice with a different query
    (see :mod:`repro.ivm`).
    """


class TimeTravelError(ReproError):
    """An ``AS OF version N`` evaluation could not be reconstructed.

    Raised when the requested version lies in the future, when the
    mutation log's bounded window no longer reaches back to it, or when a
    record in the replay range carries no payload (pre-payload history or
    a model layer that does not support replay).  Time travel never
    guesses: a history that cannot be inverted exactly is an error, not an
    approximation.
    """


class ExecutionError(ReproError):
    """Base class for execution-governance outcomes (see :mod:`repro.exec`)."""


class BudgetExceeded(ExecutionError):
    """A governed computation ran out of one of its budgeted resources.

    ``resource`` is one of ``'deadline'``, ``'steps'``, ``'frontier'``,
    ``'bytes'`` or ``'results'``; ``site`` names the cooperative checkpoint
    that observed the exhaustion; ``injected`` marks faults raised by the
    deterministic fault-injection harness rather than a real limit.
    """

    def __init__(self, resource: str, limit: object, spent: object,
                 site: str, *, injected: bool = False) -> None:
        origin = " [injected]" if injected else ""
        super().__init__(
            f"{resource} budget exceeded at {site}: "
            f"spent {spent!r} of {limit!r}{origin}")
        self.resource = resource
        self.limit = limit
        self.spent = spent
        self.site = site
        self.injected = injected


class Cancelled(ExecutionError):
    """A governed computation observed a cooperative cancellation request."""

    def __init__(self, site: str) -> None:
        super().__init__(f"execution cancelled at {site}")
        self.site = site


class WorkerFailed(ExecutionError):
    """A parallel worker died or raised a non-budget error.

    Budget exhaustion and cancellation inside a worker re-raise as their own
    typed errors in the parent; everything else — a worker process that
    exited without reporting, an unpicklable result, an unexpected exception
    in a task — surfaces as this, tagged with the worker index.
    """

    def __init__(self, worker: int, reason: str) -> None:
        super().__init__(f"worker {worker} failed: {reason}")
        self.worker = worker
        self.reason = reason


class Degraded(ExecutionError):
    """Degradation was required but the caller forbade degraded answers.

    Raised by the degradation ladder when ``allow_degraded=False`` and the
    exact computation exhausted its budget; carries the events describing
    which rungs failed and why.
    """

    def __init__(self, events: tuple) -> None:
        reasons = "; ".join(str(event) for event in events) or "budget exhausted"
        super().__init__(f"exact answer unavailable within budget: {reasons}")
        self.events = events
