"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle all library failures.  Specific
subclasses mark the subsystem at fault, which keeps error handling in
downstream code explicit.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class GraphError(ReproError):
    """A graph model was used inconsistently (duplicate ids, missing nodes...)."""


class UnknownNodeError(GraphError):
    """An operation referenced a node id that is not in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"unknown node: {node!r}")
        self.node = node


class UnknownEdgeError(GraphError):
    """An operation referenced an edge id that is not in the graph."""

    def __init__(self, edge: object) -> None:
        super().__init__(f"unknown edge: {edge!r}")
        self.edge = edge


class DuplicateIdError(GraphError):
    """A node or edge id was added twice."""

    def __init__(self, kind: str, identifier: object) -> None:
        super().__init__(f"duplicate {kind} id: {identifier!r}")
        self.kind = kind
        self.identifier = identifier


class ModelCapabilityError(ReproError):
    """A test or query needs a capability the graph model does not have.

    For example, a feature test ``(f_i = v)`` only makes sense on a
    vector-labeled graph; evaluating it on a plain labeled graph raises
    this error rather than silently returning ``False``.
    """


class ConversionError(ReproError):
    """A conversion between graph data models could not be performed."""


class RegexSyntaxError(ReproError):
    """The textual form of a regular path query could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        location = "" if position is None else f" (at position {position})"
        super().__init__(f"{message}{location}")
        self.position = position


class QuerySyntaxError(ReproError):
    """A mini-SPARQL or mini-Cypher query could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        location = "" if position is None else f" (at position {position})"
        super().__init__(f"{message}{location}")
        self.position = position


class QueryEvaluationError(ReproError):
    """A query was well-formed but could not be evaluated."""


class LogicError(ReproError):
    """A logic formula was malformed or outside the supported fragment."""


class BoundedVariableError(LogicError):
    """A formula does not fit in the requested number of variables."""


class EstimationError(ReproError):
    """A randomized estimator could not produce a usable estimate."""


class SchemaError(ReproError):
    """A relational table or vector-graph schema was violated."""
