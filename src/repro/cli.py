"""Command-line interface: query graph files without writing Python.

Usage (after ``pip install -e .``, or via ``python -m repro.cli``)::

    python -m repro.cli pathql  graph.json "PATHS MATCHING ?person/contact/?infected LENGTH 1"
    python -m repro.cli sparql  graph.json "SELECT ?x WHERE { ?x <rdf:type> <bus> . }"
    python -m repro.cli cypher  graph.json "MATCH (p:person) RETURN p.name"
    python -m repro.cli summary graph.json
    python -m repro.cli fig2    --out graph.json       # write the paper's example
    python -m repro.cli contact --people 50 --out world.json

Graph files use the JSON interchange format of :mod:`repro.models.io`;
``sparql`` loads a labeled/property graph by converting it to RDF triples
first (node labels become rdf:type).

``batch`` runs many queries from a JSON (or JSON-lines) file over one
graph, optionally across worker processes::

    python -m repro.cli batch graph.json queries.json --workers 4 --json

where each batch entry is ``{"language": "pathql"|"sparql"|"cypher",
"query": "..."}``.  Exit status: 0 all ok, 3 if any query degraded or ran
out of budget, 1 if any query failed outright.

``checkpoint`` and ``recover`` manage *durable stores* — directories
holding a write-ahead log plus snapshots (DESIGN.md §4h)::

    python -m repro.cli checkpoint store/ --ingest graph.json
    python -m repro.cli recover store/ --json
    python -m repro.cli cypher --durable store/ "MATCH (p:person) RETURN p"

``--durable`` makes the query commands treat their graph argument as a
store directory (opened read-only; recovery happens in memory, nothing on
disk is repaired).  ``--from-store`` also names a store directory but
skips recovery entirely: queries are answered straight from the newest
checkpoint's mmapped CSR segments (:mod:`repro.storage.diskread`) with no
WAL replay and no full-graph materialization — the cold-start read path.
Exit status: 4 for an unusable store, and ``recover`` exits 5 when the
store was recovered but needed repairs (torn tail truncated, segments
quarantined, or a corrupt snapshot skipped).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import (
    BudgetExceeded,
    ConversionError,
    ReproError,
    StorageError,
)
from repro.exec import Budget, Context
from repro.models import figure2_property
from repro.models.io import dumps, loads
from repro.obs import (
    Metrics,
    Tracer,
    explain_cypher,
    explain_pathql,
    explain_sparql,
)
from repro.query import run_cypher, run_pathql, run_sparql
from repro.util import format_table

# Exit code for a query stopped by its execution budget (2 is argparse's).
EXIT_BUDGET_EXCEEDED = 3
# A durable store that could not be opened at all.
EXIT_STORAGE_ERROR = 4
# ``recover`` succeeded but had to repair (truncate/quarantine/skip) state.
EXIT_RECOVERED_WITH_LOSS = 5


def _make_context(args: argparse.Namespace) -> Context | None:
    """Build an execution context from --timeout/--max-steps, if any.

    ``--stats`` alone also creates a context (with an unlimited budget), so
    per-query execution statistics can be collected without enforcing
    limits.
    """
    if args.timeout is None and args.max_steps is None and not args.stats:
        return None
    budget = Budget(deadline=args.timeout, max_steps=args.max_steps)
    return Context(budget)


def _make_tracer(args: argparse.Namespace) -> Tracer | None:
    """Build a tracer when any observability output was requested.

    ``tracer=None`` otherwise, so untraced CLI runs keep the library's
    zero-overhead fast path (DESIGN.md §4d).
    """
    if args.trace or args.trace_out or args.metrics_out:
        return Tracer()
    return None


def _print_explain(report, args: argparse.Namespace) -> int:
    print(report.to_json() if args.explain_json else report.to_text())
    return 0


def _make_cache(args: argparse.Namespace):
    """A QueryCache when --cache/--cache-stats asks for one, else None."""
    if getattr(args, "cache", False) or getattr(args, "cache_stats", False):
        from repro.cache import QueryCache

        return QueryCache()
    return None


def _print_cache_stats(cache, args: argparse.Namespace) -> None:
    if cache is None or not getattr(args, "cache_stats", False):
        return
    rows = [[name, value] for name, value in cache.stats().items()]
    print(format_table(["cache statistic", "value"], rows), file=sys.stderr)


def _emit_obs(tracer: Tracer | None, args: argparse.Namespace,
              cache=None) -> None:
    """Emit the human-readable trace tree and/or JSON trace/metrics files."""
    if tracer is None:
        return
    if args.trace:
        print(tracer.format_tree(), file=sys.stderr)
    if args.trace_out:
        _write(args.trace_out, tracer.to_json())
    if args.metrics_out:
        metrics = Metrics()
        metrics.observe_trace(tracer)
        if cache is not None:
            stats = cache.stats()
            metrics.counter("cache.hits").inc(stats["hits"])
            metrics.counter("cache.misses").inc(stats["misses"])
            metrics.counter("cache.stale").inc(stats["stale"])
        _write(args.metrics_out, metrics.to_json())


def _print_stats(ctx: Context | None, args: argparse.Namespace) -> None:
    if ctx is None or not args.stats:
        return
    print(format_table(["statistic", "value"], ctx.stats.as_rows()),
          file=sys.stderr)


def _budget_exceeded(exceeded: BudgetExceeded, ctx: Context | None,
                     args: argparse.Namespace) -> int:
    print(f"budget exceeded: {exceeded}", file=sys.stderr)
    _print_stats(ctx, args)
    return EXIT_BUDGET_EXCEEDED


def _load_graph(path: str):
    with open(path, encoding="utf-8") as handle:
        return loads(handle.read())


def _resolve_graph(args: argparse.Namespace):
    """The query-command graph: a JSON file, or a durable store directory.

    With ``--durable`` the graph argument names a store; it is opened
    read-only (recovery runs in memory, nothing on disk is modified) and
    the recovered in-memory graph is returned.  A non-clean recovery is
    noted on stderr but still served — the recovered prefix is consistent.

    With ``--from-store`` the store's newest checkpoint CSR segments are
    mmapped and queried directly: no WAL replay, no snapshot ``loads()``,
    the cold-start read path of :mod:`repro.storage.diskread`.
    """
    if getattr(args, "from_store", False):
        from repro.storage import open_latest_segments

        return open_latest_segments(args.graph)
    if getattr(args, "durable", False):
        from repro.storage import DurableGraph

        store = DurableGraph.open(args.graph, read_only=True)
        report = store.recovery
        if not report.clean:
            print(f"# store recovered with repairs pending: "
                  f"{report.truncated_reason or 'corrupt snapshot skipped'} "
                  f"(run 'recover' to repair on disk)", file=sys.stderr)
        return store.graph
    return _load_graph(args.graph)


def _apply_as_of(graph, args: argparse.Namespace):
    """Time-travel the graph when ``--as-of N`` was given.

    Returns the reconstructed graph (tagged ``as_of_version``), the
    original graph when the flag is absent, or ``None`` after printing
    the reason a reconstruction is impossible — a future version, a
    version past the mutation log's retained window, or a graph with no
    log at all (the mmapped ``--from-store`` read path) — a usage-level
    failure, exit 2.
    """
    version = getattr(args, "as_of", None)
    if version is None:
        return graph
    from repro.errors import TimeTravelError
    from repro.ivm import as_of

    try:
        return as_of(graph, version)
    except TimeTravelError as error:
        print(f"--as-of {version}: {error}", file=sys.stderr)
        return None


def _validate_workers(args: argparse.Namespace) -> int | None:
    """Reject nonsensical --workers values; ``None`` means valid."""
    if args.workers is not None and args.workers < 1:
        print(f"--workers must be a positive integer, got {args.workers}",
              file=sys.stderr)
        return 2
    return None


def _make_pool(graph, args: argparse.Namespace):
    """A WorkerPool when --workers asks for one, else None (serial path)."""
    if args.workers is None or args.workers == 1:
        return None
    from repro.exec import WorkerPool

    return WorkerPool(graph, args.workers)


def _cmd_pathql(args: argparse.Namespace) -> int:
    invalid = _validate_workers(args)
    if invalid is not None:
        return invalid
    graph = _apply_as_of(_resolve_graph(args), args)
    if graph is None:
        return 2
    ctx = _make_context(args)
    if args.explain or args.explain_json:
        return _print_explain(
            explain_pathql(graph, args.query, governed=ctx is not None,
                           engine=args.engine,
                           as_of=getattr(args, "as_of", None)), args)
    tracer = _make_tracer(args)
    pool = _make_pool(graph, args)
    cache = _make_cache(args)
    try:
        result = run_pathql(graph, args.query, ctx=ctx, tracer=tracer,
                            pool=pool, cache=cache, engine=args.engine)
    except BudgetExceeded as exceeded:
        _emit_obs(tracer, args, cache)
        return _budget_exceeded(exceeded, ctx, args)
    finally:
        if pool is not None:
            pool.close()
    if result.is_degraded:
        steps = "; ".join(str(event) for event in result.degradations)
        print(f"# DEGRADED ({result.quality}): {steps}", file=sys.stderr)
    if result.mode in ("count", "count-approx"):
        print(result.count)
    else:
        for path in result.paths:
            print(path.to_text())
        if result.mode == "sample" and result.count is not None:
            print(f"# support size: {result.count}", file=sys.stderr)
    _emit_obs(tracer, args, cache)
    _print_cache_stats(cache, args)
    _print_stats(ctx, args)
    return 0


def _cmd_sparql(args: argparse.Namespace) -> int:
    from repro.query.sparql import store_for_graph

    graph = _apply_as_of(_resolve_graph(args), args)
    if graph is None:
        return 2
    try:
        store = store_for_graph(graph)
    except ConversionError:
        print("sparql needs a labeled or property graph file", file=sys.stderr)
        return 2
    ctx = _make_context(args)
    if args.explain or args.explain_json:
        return _print_explain(
            explain_sparql(store, args.query, engine=args.engine,
                           as_of=getattr(args, "as_of", None)), args)
    tracer = _make_tracer(args)
    cache = _make_cache(args)
    try:
        result = run_sparql(store, args.query, ctx=ctx, tracer=tracer,
                            cache=cache, engine=args.engine)
    except BudgetExceeded as exceeded:
        _emit_obs(tracer, args, cache)
        return _budget_exceeded(exceeded, ctx, args)
    print(format_table([f"?{v}" for v in result.variables],
                       [[v if v is not None else "" for v in row]
                        for row in result.rows]))
    _emit_obs(tracer, args, cache)
    _print_cache_stats(cache, args)
    _print_stats(ctx, args)
    return 0


def _cmd_cypher(args: argparse.Namespace) -> int:
    from repro.query.cypherish import store_for_graph

    graph = _apply_as_of(_resolve_graph(args), args)
    if graph is None:
        return 2
    try:
        store = store_for_graph(graph)
    except ConversionError:
        print("cypher needs a property graph file", file=sys.stderr)
        return 2
    ctx = _make_context(args)
    if args.explain or args.explain_json:
        return _print_explain(
            explain_cypher(store, args.query, engine=args.engine,
                           as_of=getattr(args, "as_of", None)), args)
    tracer = _make_tracer(args)
    cache = _make_cache(args)
    try:
        result = run_cypher(store, args.query, ctx=ctx, tracer=tracer,
                            cache=cache, engine=args.engine)
    except BudgetExceeded as exceeded:
        _emit_obs(tracer, args, cache)
        return _budget_exceeded(exceeded, ctx, args)
    print(format_table(result.columns,
                       [[v if v is not None else "" for v in row]
                        for row in result.rows]))
    _emit_obs(tracer, args, cache)
    _print_cache_stats(cache, args)
    _print_stats(ctx, args)
    return 0


def _load_batch_queries(path: str) -> list[dict]:
    """Parse a batch file: a JSON array, or one JSON object per line."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("["):
        entries = json.loads(text)
    else:
        entries = [json.loads(line) for line in text.splitlines()
                   if line.strip()]
    if not isinstance(entries, list):
        raise ValueError("batch file must hold a JSON array or JSON lines")
    for entry in entries:
        if not isinstance(entry, dict) or "language" not in entry \
                or ("query" not in entry and "text" not in entry):
            raise ValueError(
                f"each batch entry needs 'language' and 'query' keys, "
                f"got {entry!r}")
    return entries


def _cmd_batch(args: argparse.Namespace) -> int:
    invalid = _validate_workers(args)
    if invalid is not None:
        return invalid
    from repro.exec import BatchSession, batch_exit_status

    graph = _load_graph(args.graph)
    try:
        entries = _load_batch_queries(args.queries)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"cannot read batch file: {error}", file=sys.stderr)
        return 2
    ctx = _make_context(args)
    tracer = _make_tracer(args)
    cache_stats = None
    try:
        with BatchSession(graph, args.workers, cache=not args.no_cache,
                          engine=args.engine) as session:
            results = session.run_batch(entries, ctx=ctx, tracer=tracer)
            if args.cache_stats:
                cache_stats = session.cache_stats()
    except BudgetExceeded as exceeded:
        _emit_obs(tracer, args)
        return _budget_exceeded(exceeded, ctx, args)
    except ReproError as error:
        print(f"batch failed: {error}", file=sys.stderr)
        _emit_obs(tracer, args)
        return 1
    if args.json:
        payload = {"schema": "repro.batch", "version": 1,
                   "workers": session.workers,
                   "results": [r.to_dict() for r in results]}
        if cache_stats is not None:
            payload["cache"] = cache_stats
        print(json.dumps(payload, indent=2))
    else:
        for result in results:
            if not result.ok:
                print(f"[{result.index}] {result.language} "
                      f"{result.status.upper()}: {result.error}")
                continue
            value = result.value
            tag = (f" ({result.status})" if result.status != "ok" else "")
            if result.language == "pathql":
                body = (str(value["count"]) if value["count"] is not None
                        and not value["paths"] else "; ".join(value["paths"]))
            else:
                body = f"{len(value['rows'])} rows"
            print(f"[{result.index}] {result.language}{tag}: {body}")
    if cache_stats is not None and not args.json:
        rows = [[name, value] for name, value in cache_stats.items()
                if name != "workers"]
        print(format_table(["cache statistic", "value"], rows),
              file=sys.stderr)
    _emit_obs(tracer, args)
    _print_stats(ctx, args)
    status = batch_exit_status(results)
    if status == "error":
        return 1
    if status == "degraded":
        for result in results:
            if result.status in ("degraded", "budget"):
                detail = result.error or "; ".join(result.degradations)
                print(f"# DEGRADED [{result.index}]: {detail}",
                      file=sys.stderr)
        return EXIT_BUDGET_EXCEEDED
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    graph = _resolve_graph(args)
    from repro.analytics import connected_components, diameter

    rows = [["nodes", graph.node_count()],
            ["edges", graph.edge_count()],
            ["weak components", len(connected_components(graph))],
            ["diameter (undirected)", diameter(graph)]]
    label_of = getattr(graph, "node_label", None)
    if label_of is not None:
        from collections import Counter

        for label, count in sorted(Counter(
                label_of(n) for n in graph.nodes()).items(), key=str):
            rows.append([f"label {label or '(none)'!s}", count])
    print(format_table(["statistic", "value"], rows))
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    """Open (recovering) a store, optionally ingest a graph, snapshot it."""
    from repro.storage import DurableGraph

    with DurableGraph.open(args.store, model=args.model,
                           fsync=args.fsync) as store:
        report = store.recovery
        if not report.clean:
            print(f"# recovered with repairs: "
                  f"{report.truncated_reason or 'corrupt snapshot skipped'}",
                  file=sys.stderr)
        if args.ingest:
            applied = store.ingest(_load_graph(args.ingest))
            print(f"# ingested {applied} mutations "
                  f"(version {store.version})", file=sys.stderr)
        path = store.checkpoint()
    print(path)
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """Recover a store, repairing on disk unless --dry-run.

    Exit status 0 for a clean recovery, {EXIT_RECOVERED_WITH_LOSS} when the
    store came back but repairs were needed, {EXIT_STORAGE_ERROR} when it
    could not be opened at all (the latter handled in :func:`main`).
    """
    import os

    from repro.storage import DurableGraph

    if not os.path.isdir(args.store):
        # Recovering a path that holds nothing must not conjure an empty
        # store and report it "clean" — that is how data loss gets missed.
        raise StorageError(f"no durable store at {args.store}")
    with DurableGraph.open(args.store, read_only=args.dry_run) as store:
        report = store.recovery
        stats = store.stats()
    if args.json:
        print(json.dumps({"schema": "repro.storage.recovery", "version": 1,
                          "dry_run": args.dry_run,
                          "report": report.to_dict(),
                          "nodes": stats["nodes"], "edges": stats["edges"]},
                         indent=2))
    else:
        rows = [[key, value] for key, value in report.to_dict().items()
                if key not in ("snapshots_rejected", "quarantined")]
        rows.append(["snapshots rejected", len(report.snapshots_rejected)])
        rows.append(["segments quarantined", len(report.quarantined)])
        rows.append(["nodes", stats["nodes"]])
        rows.append(["edges", stats["edges"]])
        print(format_table(["recovery", "value"], rows))
        for path, reason in report.snapshots_rejected:
            print(f"# rejected snapshot {path}: {reason}", file=sys.stderr)
        for path in report.quarantined:
            print(f"# quarantined segment {path}", file=sys.stderr)
    return 0 if report.clean else EXIT_RECOVERED_WITH_LOSS


def _cmd_fig2(args: argparse.Namespace) -> int:
    _write(args.out, dumps(figure2_property(), indent=2))
    return 0


def _cmd_contact(args: argparse.Namespace) -> int:
    from repro.datasets import generate_contact_graph

    graph = generate_contact_graph(args.people, args.buses, args.addresses,
                                   args.companies, rng=args.seed,
                                   infection_rate=args.infection_rate)
    _write(args.out, dumps(graph, indent=2))
    return 0


def _write(path: str | None, text: str) -> None:
    if path is None or path == "-":
        print(text)
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query graph files (models of the SIGMOD'21 tutorial).")
    commands = parser.add_subparsers(dest="command", required=True)

    def add_governor_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--timeout", type=float, default=None, metavar="SECONDS",
            help="deadline for query evaluation; PathQL COUNT degrades "
                 "gracefully, other modes exit with status "
                 f"{EXIT_BUDGET_EXCEEDED} when the budget runs out")
        subparser.add_argument(
            "--max-steps", type=int, default=None, metavar="N",
            help="cap on evaluation checkpoints (a deterministic work budget)")
        subparser.add_argument(
            "--stats", action="store_true",
            help="print per-query execution statistics to stderr")

    def add_obs_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--explain", action="store_true",
            help="print the evaluation strategy (chain vs product, index "
                 "plan, degradation ladder) instead of running the query")
        subparser.add_argument(
            "--explain-json", action="store_true",
            help="like --explain, but as machine-readable JSON")
        subparser.add_argument(
            "--trace", action="store_true",
            help="print a per-phase span tree (timings, steps, cache "
                 "hits) to stderr after the query runs")
        subparser.add_argument(
            "--trace-out", default=None, metavar="FILE",
            help="write the span tree as JSON to FILE ('-' for stdout)")
        subparser.add_argument(
            "--metrics-out", default=None, metavar="FILE",
            help="write aggregated counters/histograms as JSON to FILE")

    def add_engine_flag(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--engine", choices=("auto", "scalar", "vector"), default="auto",
            help="evaluation engine: 'scalar' runs the per-node loops, "
                 "'vector' forces the numpy kernel (errors if numpy is "
                 "missing), 'auto' (default) picks by graph size; the "
                 "chosen engine shows up in --stats and --trace output")

    def add_workers_flag(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="evaluate across N worker processes (fork-shared graph); "
                 "1 or unset runs serially")

    def add_durable_flag(subparser: argparse.ArgumentParser) -> None:
        group = subparser.add_mutually_exclusive_group()
        group.add_argument(
            "--durable", action="store_true",
            help="treat GRAPH as a durable store directory (WAL + "
                 "snapshots); recovery runs in memory, read-only — exit "
                 f"status {EXIT_STORAGE_ERROR} if the store is unusable")
        group.add_argument(
            "--from-store", action="store_true",
            help="treat GRAPH as a durable store directory and answer "
                 "from its newest checkpoint's CSR segments via mmap — "
                 "no WAL replay, no full materialization (mutations since "
                 "the last checkpoint are not visible; run 'checkpoint' "
                 f"first) — exit status {EXIT_STORAGE_ERROR} if no usable "
                 "segments exist")

    def add_as_of_flag(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--as-of", type=int, default=None, metavar="N",
            help="evaluate against the graph as it stood at mutation-log "
                 "version N (transaction-time travel, replayed from the "
                 "bounded mutation log; exit 2 if N is outside the "
                 "retained window)")

    def add_cache_flags(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--cache", action="store_true",
            help="memoize results in a version-checked query cache (one "
                 "process = one query, so this mostly exercises/diagnoses "
                 "the cache path; batch mode caches by default)")
        subparser.add_argument(
            "--cache-stats", action="store_true",
            help="print cache hit/miss/stale counters to stderr "
                 "(implies --cache)")

    pathql = commands.add_parser("pathql", help="run a PathQL statement")
    pathql.add_argument("graph")
    pathql.add_argument("query")
    add_governor_flags(pathql)
    add_obs_flags(pathql)
    add_engine_flag(pathql)
    add_workers_flag(pathql)
    add_cache_flags(pathql)
    add_as_of_flag(pathql)
    add_durable_flag(pathql)
    pathql.set_defaults(handler=_cmd_pathql)

    sparql = commands.add_parser("sparql", help="run a mini-SPARQL query")
    sparql.add_argument("graph")
    sparql.add_argument("query")
    add_governor_flags(sparql)
    add_obs_flags(sparql)
    add_engine_flag(sparql)
    add_cache_flags(sparql)
    add_as_of_flag(sparql)
    add_durable_flag(sparql)
    sparql.set_defaults(handler=_cmd_sparql)

    cypher = commands.add_parser("cypher", help="run a mini-Cypher query")
    cypher.add_argument("graph")
    cypher.add_argument("query")
    add_governor_flags(cypher)
    add_obs_flags(cypher)
    add_engine_flag(cypher)
    add_cache_flags(cypher)
    add_as_of_flag(cypher)
    add_durable_flag(cypher)
    cypher.set_defaults(handler=_cmd_cypher)

    batch = commands.add_parser(
        "batch", help="run a file of PathQL/SPARQL/Cypher queries, "
                      "optionally across worker processes")
    batch.add_argument("graph")
    batch.add_argument("queries",
                       help="JSON array (or JSON lines) of "
                            '{"language": ..., "query": ...} entries')
    batch.add_argument("--json", action="store_true",
                       help="print the full batch result as one JSON document")
    add_governor_flags(batch)
    add_engine_flag(batch)
    add_workers_flag(batch)
    batch.add_argument(
        "--trace", action="store_true",
        help="print the merged span tree (all workers) to stderr")
    batch.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the merged span tree as JSON to FILE ('-' for stdout)")
    batch.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write aggregated counters/histograms as JSON to FILE")
    batch.add_argument(
        "--no-cache", action="store_true",
        help="disable the per-worker query cache (on by default: the "
             "batch graph is frozen for the session, so caching is free)")
    batch.add_argument(
        "--cache-stats", action="store_true",
        help="print aggregated per-worker cache counters to stderr "
             "(or under 'cache' with --json)")
    batch.set_defaults(handler=_cmd_batch)

    summary = commands.add_parser("summary", help="print graph statistics")
    summary.add_argument("graph")
    add_durable_flag(summary)
    summary.set_defaults(handler=_cmd_summary)

    checkpoint = commands.add_parser(
        "checkpoint",
        help="snapshot a durable store (creating it if missing), "
             "optionally ingesting a graph file first")
    checkpoint.add_argument("store",
                            help="durable store directory (WAL + snapshots)")
    checkpoint.add_argument(
        "--ingest", default=None, metavar="FILE",
        help="graph JSON file whose content is loaded into the store as "
             "durable mutations before the snapshot")
    checkpoint.add_argument(
        "--model", choices=("labeled", "property"), default=None,
        help="graph model for a new store (default: property); an "
             "existing store's model cannot be changed")
    checkpoint.add_argument(
        "--fsync", choices=("always", "batch", "never"), default="batch",
        help="WAL fsync policy while ingesting (default: batch)")
    checkpoint.set_defaults(handler=_cmd_checkpoint)

    recover = commands.add_parser(
        "recover",
        help="recover a durable store, repairing torn WAL tails on disk; "
             f"exit {EXIT_RECOVERED_WITH_LOSS} if repairs were needed, "
             f"{EXIT_STORAGE_ERROR} if the store is unusable")
    recover.add_argument("store",
                         help="durable store directory (WAL + snapshots)")
    recover.add_argument("--json", action="store_true",
                         help="print the recovery report as JSON")
    recover.add_argument(
        "--dry-run", action="store_true",
        help="report what recovery would do without modifying the store")
    recover.set_defaults(handler=_cmd_recover)

    fig2 = commands.add_parser("fig2", help="write the Figure 2 property graph")
    fig2.add_argument("--out", default="-")
    fig2.set_defaults(handler=_cmd_fig2)

    contact = commands.add_parser("contact",
                                  help="generate a contact-tracing world")
    contact.add_argument("--people", type=int, default=30)
    contact.add_argument("--buses", type=int, default=4)
    contact.add_argument("--addresses", type=int, default=12)
    contact.add_argument("--companies", type=int, default=2)
    contact.add_argument("--infection-rate", type=float, default=0.15)
    contact.add_argument("--seed", type=int, default=0)
    contact.add_argument("--out", default="-")
    contact.set_defaults(handler=_cmd_contact)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except StorageError as error:
        print(f"storage error: {error}", file=sys.stderr)
        return EXIT_STORAGE_ERROR


if __name__ == "__main__":
    raise SystemExit(main())
