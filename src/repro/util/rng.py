"""Deterministic random number generator helpers.

All randomized algorithms in the library accept either an explicit
:class:`random.Random` instance or an integer seed.  Centralizing the
coercion keeps experiment scripts reproducible by construction.
"""

from __future__ import annotations

import random

#: Seed used when a randomized algorithm must be deterministic *by default*
#: (no seed supplied), e.g. degraded FPRAS answers under the execution
#: governor: re-running the same degraded query reproduces the same estimate.
DEFAULT_SEED = 0x5EED


def make_rng(seed: int | random.Random | None = None) -> random.Random:
    """Return a :class:`random.Random` from a seed, an rng, or ``None``.

    Passing an existing generator returns it unchanged, so library code can
    thread a single generator through nested calls without reseeding.
    ``None`` draws OS entropy; algorithms that must be reproducible without
    an explicit seed use :func:`make_default_rng` instead.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def make_default_rng(seed: int | random.Random | None = None) -> random.Random:
    """Like :func:`make_rng`, but ``None`` means :data:`DEFAULT_SEED`.

    Used where an unseeded run must still be reproducible (FPRAS under the
    governor, fault-injection plans).
    """
    if seed is None:
        return random.Random(DEFAULT_SEED)
    return make_rng(seed)
