"""Deterministic random number generator helpers.

All randomized algorithms in the library accept either an explicit
:class:`random.Random` instance or an integer seed.  Centralizing the
coercion keeps experiment scripts reproducible by construction.
"""

from __future__ import annotations

import random


def make_rng(seed: int | random.Random | None = None) -> random.Random:
    """Return a :class:`random.Random` from a seed, an rng, or ``None``.

    Passing an existing generator returns it unchanged, so library code can
    thread a single generator through nested calls without reseeding.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)
