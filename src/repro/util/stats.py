"""Small statistics helpers used by estimators, tests and benchmarks.

These are intentionally dependency-light (no scipy needed at runtime) so the
core library can report its own accuracy.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty sequence."""
    if not values:
        raise ValueError("mean of an empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator); 0.0 for length-1 input."""
    if not values:
        raise ValueError("stddev of an empty sequence")
    if len(values) == 1:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def relative_error(estimate: float, truth: float) -> float:
    """|estimate - truth| / truth; infinite when the truth is zero but not the estimate."""
    if truth == 0:
        return 0.0 if estimate == 0 else math.inf
    return abs(estimate - truth) / abs(truth)


def chi_square_uniform(samples: Iterable[object], support_size: int) -> float:
    """Chi-square statistic of observed samples against the uniform distribution.

    ``support_size`` is the number of distinct outcomes that *should* be
    possible.  Outcomes never observed still contribute their expected count.
    The caller compares the statistic against a critical value for
    ``support_size - 1`` degrees of freedom.
    """
    if support_size <= 0:
        raise ValueError("support_size must be positive")
    counts = Counter(samples)
    total = sum(counts.values())
    if total == 0:
        raise ValueError("no samples provided")
    expected = total / support_size
    observed_stat = sum((c - expected) ** 2 / expected for c in counts.values())
    unseen = support_size - len(counts)
    return observed_stat + unseen * expected


def chi_square_critical(df: int, alpha: float = 0.001) -> float:
    """Approximate chi-square critical value via the Wilson-Hilferty transform.

    Good to a few percent for df >= 3, which is all the uniformity tests
    need; avoids a scipy dependency in the core library.
    """
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    z = _normal_quantile(1.0 - alpha)
    h = 2.0 / (9.0 * df)
    return df * (1.0 - h + z * math.sqrt(h)) ** 3


def _normal_quantile(p: float) -> float:
    """Inverse standard normal CDF (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
