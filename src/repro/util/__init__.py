"""Shared utilities: deterministic RNG helpers, hashing, small statistics."""

from repro.util.keys import canonical_sort_key
from repro.util.rng import DEFAULT_SEED, make_default_rng, make_rng
from repro.util.stats import chi_square_uniform, mean, relative_error, stddev
from repro.util.tables import format_table

__all__ = [
    "DEFAULT_SEED",
    "canonical_sort_key",
    "make_default_rng",
    "make_rng",
    "mean",
    "stddev",
    "relative_error",
    "chi_square_uniform",
    "format_table",
]
