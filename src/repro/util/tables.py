"""Plain-text table formatting shared by benchmarks, examples and the harness."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as an aligned monospace table.

    Numbers are right-aligned, everything else left-aligned.  The output is
    what the benchmark harness prints as the reproduction of a paper table.
    """
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    numeric = [all(_is_number(row[i]) for row in rows) if rows else False
               for i in range(len(headers))]

    def render_row(values: Sequence[str]) -> str:
        parts = []
        for i, value in enumerate(values):
            parts.append(value.rjust(widths[i]) if numeric[i] else value.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
