"""Canonical ordering for heterogeneous id collections.

Node and edge ids may be any hashable value, and several layers need to
order them *deterministically* regardless of insertion or iteration order:
the serializer (:func:`repro.models.io.dumps` sorts nodes/edges so equal
graphs produce byte-identical documents and therefore snapshot CRCs), the
query cache (:func:`repro.cache.result_cache.nodes_key` canonicalizes
start/end-node restrictions), and the on-disk CSR segment writer
(:mod:`repro.storage.diskread`).

Sorting by ``str`` or ``repr`` alone is not a total order on mixed-type
ids: ``str(1) == str("1")`` and values of different types can share a
``repr``, so Python's stable sort falls back to input order for the tie —
making the "canonical" form depend on how the collection happened to be
iterated.  The composite ``(type name, repr)`` key breaks every such
cross-type tie; within one built-in type, equal reprs imply equal values.
"""

from __future__ import annotations


def canonical_sort_key(value: object) -> tuple[str, str]:
    """A total-order sort key over mixed-type ids: ``(type name, repr)``."""
    return (type(value).__name__, repr(value))
