"""The degradation ladder: exact -> FPRAS -> bounded lower bound.

The paper's own toolbox provides a principled *degraded* answer for Count:
when the (worst-case exponential) exact subset DP exhausts its budget slice,
the FPRAS of Arenas-Croquevielle-Jayaram-Riveros gives an (epsilon,
delta)-style estimate in polynomial time; if even that cannot finish, the
polynomial-delay enumerator yields a certified lower bound — however many
distinct conforming paths it emitted before the budget died.  Each fallback
returns a :class:`GovernedResult` *tagged with how it degraded* instead of
raising, so callers always get an answer plus its provenance.

Cancellation is not degradation: a cooperative cancel propagates as
:class:`~repro.errors.Cancelled` through every rung.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.rpq.count import count_paths_exact
from repro.core.rpq.enumerate import enumerate_paths
from repro.core.rpq.fpras import ApproxPathCounter
from repro.errors import BudgetExceeded, Degraded, EstimationError
from repro.exec.budget import Context, DegradationEvent, ExecStats

#: Result quality tags, strongest first.
QUALITIES = ("exact", "approx", "lower-bound")


@dataclass
class GovernedResult:
    """An answer plus how (and whether) it degraded.

    ``value`` stays an ``int`` for the exact and lower-bound rungs (exact
    counts can exceed float precision); the FPRAS rung returns a ``float``.
    """

    value: int | float
    quality: str  # one of QUALITIES
    degradations: list[DegradationEvent] = field(default_factory=list)
    stats: ExecStats | None = None

    @property
    def is_exact(self) -> bool:
        return self.quality == "exact"

    def banner(self) -> str | None:
        """Human-readable degradation banner, or ``None`` for exact runs."""
        if self.quality == "exact":
            return None
        steps = "; ".join(str(event) for event in self.degradations)
        return f"DEGRADED ({self.quality}): {steps}"


def count_paths_governed(graph, regex, k: int, ctx: Context, *,
                         epsilon: float = 0.2,
                         rng: int | random.Random | None = None,
                         start_nodes: Iterable | None = None,
                         end_nodes: Iterable | None = None,
                         exact_share: float = 0.5,
                         approx_share: float = 0.8,
                         allow_degraded: bool = True,
                         pool_size: int | None = None,
                         trials_per_state: int | None = None,
                         engine: str = "auto",
                         tracer=None, pool=None, cache=None) -> GovernedResult:
    """Count(G, r, k) under a budget, degrading instead of hanging.

    Rung 1 (``exact``) gets ``exact_share`` of the remaining time/steps;
    rung 2 (``approx``) gets ``approx_share`` of what is left; rung 3
    (``lower-bound``) consumes the rest.  The FPRAS rung is seeded (library
    default seed when ``rng`` is ``None``), so a degraded answer is
    reproducible run over run.  ``allow_degraded=False`` turns the first
    exhaustion into a :class:`~repro.errors.Degraded` error instead.

    With a :class:`~repro.obs.Tracer` each rung is recorded as a
    ``degrade:<rung>`` span carrying its checkpoint-step delta and how it
    ended (``answered`` / the exhausted resource); ``tracer=None`` adds
    nothing.

    With a :class:`~repro.exec.parallel.WorkerPool` (``pool=``) only the
    exact rung shards across workers (it dominates the ladder's cost and
    shards exactly); the FPRAS and enumeration fallbacks stay serial —
    their sampling/emission order is part of their seeded determinism.
    ``engine`` is likewise forwarded only to the exact rung — the fallback
    rungs are scalar by construction (seeded sampling / ordered emission).

    With a :class:`~repro.cache.QueryCache` (``cache=``), a previously
    computed *exact* count — stored by this function or by a plain
    :func:`count_paths_exact` call, which shares the key family — returns
    immediately without touching the ladder: zero checkpoints, zero budget
    spend, quality ``exact``.  Degraded answers are never cached (they
    reflect this run's budget, not the graph).
    """
    events: list[DegradationEvent] = []
    cache_key = None
    if cache is not None:
        from repro.cache import MISS, label_footprint
        from repro.cache.result_cache import nodes_key

        start_nodes = nodes_key(start_nodes)
        end_nodes = nodes_key(end_nodes)
        cache_key = ("count_paths", regex.to_text(), k,
                     start_nodes, end_nodes)
        hit = cache.lookup(graph, cache_key)
        if hit is not MISS:
            return GovernedResult(hit, "exact", events, ctx.stats)
    span = (None if tracer is None
            else tracer.start("degrade:exact", ctx=ctx))
    try:
        value = count_paths_exact(graph, regex, k, start_nodes, end_nodes,
                                  engine=engine,
                                  ctx=ctx.fraction(exact_share), pool=pool)
        if span is not None:
            span.attrs["outcome"] = "answered"
            tracer.finish(span)
        if cache is not None:
            from repro.cache import label_footprint

            cache.store(graph, cache_key, label_footprint(regex), value)
        return GovernedResult(value, "exact", events, ctx.stats)
    except BudgetExceeded as error:
        event = DegradationEvent("exact", "approx", error.resource, error.site)
        if span is not None:
            span.attrs["outcome"] = f"{error.resource} exhausted at {error.site}"
            tracer.finish(span)
        events.append(event)
        ctx.record_degradation(event)
        if not allow_degraded:
            raise Degraded(tuple(events)) from error

    span = (None if tracer is None
            else tracer.start("degrade:approx", ctx=ctx))
    try:
        counter = ApproxPathCounter(graph, regex, k, epsilon=epsilon, rng=rng,
                                    pool_size=pool_size,
                                    trials_per_state=trials_per_state,
                                    start_nodes=start_nodes,
                                    end_nodes=end_nodes,
                                    ctx=ctx.fraction(approx_share))
        estimate = counter.estimate()
        if span is not None:
            span.attrs["outcome"] = "answered"
            tracer.finish(span)
        return GovernedResult(estimate, "approx", events, ctx.stats)
    except BudgetExceeded as error:
        event = DegradationEvent("approx", "lower-bound",
                                 error.resource, error.site)
        if span is not None:
            span.attrs["outcome"] = f"{error.resource} exhausted at {error.site}"
            tracer.finish(span)
        events.append(event)
        ctx.record_degradation(event)
    except EstimationError:
        # Sketches built but too sparse to estimate: fall through to the
        # enumerator, which handles the empty answer set exactly.
        event = DegradationEvent("approx", "lower-bound", "estimate", "fpras")
        if span is not None:
            span.attrs["outcome"] = "estimate failed (sparse sketches)"
            tracer.finish(span)
        events.append(event)
        ctx.record_degradation(event)

    # Rung 3 never raises BudgetExceeded: whatever the enumerator produced
    # before the budget died is a certified lower bound (possibly 0).
    span = (None if tracer is None
            else tracer.start("degrade:lower-bound", ctx=ctx))
    emitted = 0
    try:
        for _ in enumerate_paths(graph, regex, k, start_nodes=start_nodes,
                                 end_nodes=end_nodes, ctx=ctx):
            emitted += 1
    except BudgetExceeded:
        pass
    if span is not None:
        span.attrs["outcome"] = f"emitted {emitted}"
        tracer.finish(span)
    return GovernedResult(emitted, "lower-bound", events, ctx.stats)
