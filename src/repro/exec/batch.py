"""Batch query sessions: many frontend queries over one shared graph.

The "heavy traffic" half of the ROADMAP's north star: a
:class:`BatchSession` pins one read-only graph into a
:class:`~repro.exec.parallel.WorkerPool` and pushes whole *query batches*
— PathQL, mini-SPARQL and mini-Cypher statements mixed freely — through
it, one query per task descriptor.  The session guarantees:

- **deterministic ordering** — results come back in submission order,
  whatever order workers finished in (the pool's task ids are the batch
  indices);
- **per-query error isolation** — a query that fails to parse, references
  a capability the graph lacks, or exhausts its own budget slice produces
  a :class:`BatchResult` with ``status="error"``/``"budget"`` in its slot;
  the rest of the batch is unaffected.  Only a *batch-wide* event (the
  caller's context cancelled or globally exhausted, a worker process dying)
  escapes as an exception;
- **governed concurrency** — the caller's :class:`~repro.exec.Context` is
  subdivided across queries exactly like the sharded RPQ helpers
  (deadline global, steps split per query with the
  :meth:`~repro.exec.Context.fraction` floors), and each worker's stats
  merge back at join;
- **store reuse** — each worker lazily builds the SPARQL triple store /
  Cypher property store for the shared graph once, in its ``caches`` dict,
  so a thousand-query batch pays the conversion per *worker*, not per
  query;
- **result reuse** — each worker also keeps one
  :class:`~repro.cache.QueryCache` in its ``caches`` dict (``cache=True``,
  the default), so a query repeated within a session answers from the
  cache.  This is always sound here: the pool's contract freezes the graph
  for the session's lifetime, so no invalidating mutation can occur — but
  the cache still carries the full version/footprint machinery, which is
  what :meth:`BatchSession.cache_stats` reports.

Results carry JSON-ready payloads (paths as text, rows as lists) rather
than live result objects: they crossed a process boundary, and the CLI
batch mode prints them verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BudgetExceeded, Cancelled, ReproError
from repro.exec.parallel import WorkerPool, register_task

#: Languages a batch query may use, mapped to frontend runners in the task.
LANGUAGES = ("pathql", "sparql", "cypher")


@dataclass(frozen=True)
class BatchQuery:
    """One statement of a batch: a language tag plus the query text."""

    language: str
    text: str

    def __post_init__(self) -> None:
        if self.language not in LANGUAGES:
            raise ValueError(f"unknown query language {self.language!r}; "
                             f"expected one of {LANGUAGES}")


@dataclass
class BatchResult:
    """Outcome of one batch slot, in submission order.

    ``status`` is ``"ok"`` (full-fidelity answer), ``"degraded"`` (the
    governor delivered a lower-quality answer — PathQL counts only),
    ``"budget"`` (this query's budget slice ran out with no fallback) or
    ``"error"`` (parse/evaluation failure).  ``value`` is the
    JSON-ready payload (shape depends on the language, see the task
    function); ``error`` is the one-line failure description otherwise.
    """

    index: int
    language: str
    text: str
    status: str
    value: dict | None = None
    error: str | None = None
    degradations: tuple = ()

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "degraded")

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "language": self.language,
            "query": self.text,
            "status": self.status,
            "value": self.value,
            "error": self.error,
            "degradations": [str(event) for event in self.degradations],
        }


def _pathql_value(result) -> dict:
    return {
        "mode": result.mode,
        "count": result.count,
        "paths": [path.to_text() for path in result.paths],
        "quality": result.quality,
    }


def _table_value(columns, rows) -> dict:
    return {"columns": list(columns),
            "rows": [list(row) for row in rows]}


@register_task("batch.query")
def _task_batch_query(state, payload, ctx, tracer):
    """Run one frontend query; always returns a result dict (isolation).

    :class:`Cancelled` is the one exception allowed to escape: it means
    the *batch* was cancelled (parent request or a sibling failure), not
    that this query failed, so it must reach the pool's join logic.
    """
    language = payload["language"]
    text = payload["text"]
    engine = payload.get("engine", "auto")
    graph = state["graph"]
    query_cache = None
    if payload.get("cache", True):
        query_cache = state["caches"].get("query_cache")
        if query_cache is None:
            from repro.cache import QueryCache

            query_cache = state["caches"]["query_cache"] = QueryCache()
    registry_for = None
    if payload.get("views", False):
        # One ViewRegistry per frontend target per worker (a registry is
        # bound to exactly one target), lazily built like the stores.
        def registry_for(target, slot):
            registry = state["caches"].get(slot)
            if registry is None:
                from repro.ivm import ViewRegistry

                registry = state["caches"][slot] = ViewRegistry(target)
            return registry
    outcome = {"status": "ok", "value": None, "error": None,
               "degradations": []}
    try:
        if language == "pathql":
            from repro.query.pathql import run_pathql

            view = (registry_for(graph, "view_registry:pathql")
                    if registry_for is not None else None)
            result = run_pathql(graph, text, ctx=ctx, tracer=tracer,
                                cache=query_cache, view=view, engine=engine)
            outcome["value"] = _pathql_value(result)
            if result.is_degraded:
                outcome["status"] = "degraded"
                outcome["degradations"] = [str(event)
                                           for event in result.degradations]
        elif language == "sparql":
            store = state["caches"].get("sparql_store")
            if store is None:
                from repro.query.sparql import store_for_graph

                store = state["caches"]["sparql_store"] = store_for_graph(graph)
            from repro.query.sparql import run_sparql

            view = (registry_for(store, "view_registry:sparql")
                    if registry_for is not None else None)
            result = run_sparql(store, text, ctx=ctx, tracer=tracer,
                                cache=query_cache, view=view, engine=engine)
            outcome["value"] = _table_value(
                [f"?{v}" for v in result.variables], result.rows)
        else:
            store = state["caches"].get("cypher_store")
            if store is None:
                from repro.query.cypherish import store_for_graph

                store = state["caches"]["cypher_store"] = store_for_graph(graph)
            from repro.query.cypherish import run_cypher

            view = (registry_for(store, "view_registry:cypher")
                    if registry_for is not None else None)
            result = run_cypher(store, text, ctx=ctx, tracer=tracer,
                                cache=query_cache, view=view, engine=engine)
            outcome["value"] = _table_value(result.columns, result.rows)
    except Cancelled:
        raise
    except BudgetExceeded as exceeded:
        outcome["status"] = "budget"
        outcome["error"] = str(exceeded)
    except ReproError as error:
        outcome["status"] = "error"
        outcome["error"] = f"{type(error).__name__}: {error}"
    return outcome


@register_task("batch.view_stats")
def _task_view_stats(state, payload, ctx, tracer):
    """Report this worker's per-frontend view registries' counters."""
    out = {}
    for slot in ("view_registry:pathql", "view_registry:sparql",
                 "view_registry:cypher"):
        registry = state["caches"].get(slot)
        if registry is not None:
            out[slot.split(":", 1)[1]] = registry.stats()
    return out


@register_task("batch.cache_stats")
def _task_cache_stats(state, payload, ctx, tracer):
    """Report this worker's query-cache counters (zeros if it has none)."""
    query_cache = state["caches"].get("query_cache")
    if query_cache is None:
        return {"hits": 0, "misses": 0, "stale": 0, "entries": 0,
                "max_entries": 0}
    return query_cache.stats()


class BatchSession:
    """A pinned (graph, pool) pair that runs query batches.

    Parameters mirror :class:`~repro.exec.parallel.WorkerPool`; the session
    owns its pool and is a context manager::

        with BatchSession(graph, workers=4) as session:
            results = session.run_batch([
                BatchQuery("pathql", "PATHS MATCHING contact LENGTH 1 COUNT"),
                BatchQuery("cypher", "MATCH (p:person) RETURN p.name"),
            ])

    ``run_batch`` distributes queries round-robin over the workers
    (query *i* on worker ``i % workers`` — deterministic, so fault
    campaigns can target the worker a specific query runs on) and returns
    one :class:`BatchResult` per query, in order.

    ``engine`` is the session-wide evaluation-engine selector
    (``auto``/``scalar``/``vector``), forwarded to every frontend runner;
    the answer payloads are engine-independent.

    ``views=True`` additionally gives each worker one
    :class:`~repro.ivm.ViewRegistry` per frontend target, so repeated
    queries are served from materialized views (sound for the same
    reason the cache is: the pool freezes the graph for the session);
    :meth:`view_stats` reports their counters.
    """

    def __init__(self, graph, workers: int | None = None, *,
                 fault_plans: dict | None = None, cache: bool = True,
                 views: bool = False, engine: str = "auto") -> None:
        from repro.core.rpq.vectorized.engine import ENGINES

        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; "
                             f"expected one of {ENGINES}")
        self.pool = WorkerPool(graph, workers, fault_plans=fault_plans)
        self.graph = graph
        self.cache = cache
        self.views = views
        self.engine = engine

    def __enter__(self) -> "BatchSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        self.pool.close()

    @property
    def workers(self) -> int:
        return self.pool.workers

    def run_batch(self, queries, *, ctx=None, tracer=None) -> list[BatchResult]:
        """Run every query; return per-query results in submission order.

        Accepts :class:`BatchQuery` objects or plain ``(language, text)``
        pairs / ``{"language": ..., "query": ...}`` dicts (the CLI's batch
        file rows).  Raises only for batch-wide failures:
        :class:`~repro.errors.BudgetExceeded` when the *caller's* budget is
        globally exhausted, :class:`~repro.errors.Cancelled` on
        cancellation, :class:`~repro.errors.WorkerFailed` if a worker dies.
        """
        batch = [self._coerce(query) for query in queries]
        tasks = [("batch.query", {"language": query.language,
                                  "text": query.text,
                                  "cache": self.cache,
                                  "views": self.views,
                                  "engine": self.engine})
                 for query in batch]
        outcomes = self.pool.run_tasks(tasks, ctx=ctx, tracer=tracer)
        results = []
        for index, (query, outcome) in enumerate(zip(batch, outcomes)):
            results.append(BatchResult(
                index=index, language=query.language, text=query.text,
                status=outcome["status"], value=outcome["value"],
                error=outcome["error"],
                degradations=tuple(outcome["degradations"])))
        return results

    def cache_stats(self) -> dict:
        """Aggregate query-cache counters across every worker.

        Sends one ``batch.cache_stats`` probe per worker (task *i* lands on
        worker ``i % workers``, so ``workers`` probes cover the pool) and
        sums the counters.  Returns ``{"hits": ..., "misses": ...,
        "stale": ..., "entries": ..., "workers": [...]}`` where ``workers``
        holds the per-worker dicts in worker order.
        """
        tasks = [("batch.cache_stats", {})] * self.pool.workers
        per_worker = self.pool.run_tasks(tasks)
        totals = {"hits": 0, "misses": 0, "stale": 0, "entries": 0}
        for stats in per_worker:
            for field in totals:
                totals[field] += stats[field]
        totals["workers"] = per_worker
        return totals

    def view_stats(self) -> list[dict]:
        """Per-worker materialized-view counters (``views=True`` sessions).

        One ``batch.view_stats`` probe per worker, returned in worker
        order; each entry maps frontend name to that worker's registry
        stats (empty when the worker served no view-backed query).
        """
        tasks = [("batch.view_stats", {})] * self.pool.workers
        return self.pool.run_tasks(tasks)

    @staticmethod
    def _coerce(query) -> BatchQuery:
        if isinstance(query, BatchQuery):
            return query
        if isinstance(query, dict):
            return BatchQuery(query["language"],
                              query.get("query", query.get("text", "")))
        language, text = query
        return BatchQuery(language, text)


def batch_exit_status(results) -> str:
    """Collapse a batch to the CLI's exit semantics.

    ``"ok"`` — every query full-fidelity; ``"degraded"`` — all answered
    but at least one degraded or budget-stopped (CLI exit 3, matching the
    single-query budget exit); ``"error"`` — at least one query failed
    outright (CLI exit 1).
    """
    worst = "ok"
    for result in results:
        if result.status == "error":
            return "error"
        if result.status in ("degraded", "budget"):
            worst = "degraded"
    return worst
