"""Parallel execution tier: fork-shared worker pools over the governed core.

The ROADMAP's north star wants the paper's path-extraction machinery served
"as fast as the hardware allows"; this module adds the missing tier between
one governed query and that goal, in the multi-worker evaluation style of
distributed RPQ engines (MillenniumDB's per-query thread budgets, the
partitioned automaton evaluation surveyed by Angles et al.):

- a :class:`WorkerPool` owns N ``fork``-started processes that inherit one
  **read-only** graph through copy-on-write fork memory (no pickling of the
  graph, ever) plus an optional per-worker
  :class:`~repro.exec.FaultInjector`;
- work travels as pickle-cheap *task descriptors* ``(kind, payload)``
  resolved against a registry of task functions (:func:`register_task`), so
  a queue message is a regex AST and a tuple of start nodes — never code,
  never graph data;
- :func:`sharded_endpoint_pairs` / :func:`sharded_count_paths` shard the
  start-node set across tasks; both are *exactly* equivalent to their
  serial counterparts because paths partition by their start node (the
  differential harness in ``tests/test_differential.py`` pins this on
  thousands of seeded random instances);
- the analytics sweeps (``analytics.pagerank_sweep`` etc.) shard one power-
  iteration step by source-node range; the parent merges partial sums in
  shard order, so results match the serial implementation up to float
  re-association (documented merge semantics, DESIGN.md §4e).

**Budgets bind globally.**  :meth:`WorkerPool.run_tasks` derives one
sub-budget per task from the caller's :class:`~repro.exec.Context` — the
full remaining wall-clock deadline (all processes share one wall clock) and
``remaining // n_tasks`` of the step/byte budgets, floored exactly like
:meth:`Context.fraction` floors its slices so a nearly exhausted parent
still lets every task do one unit of work.  At join time every worker's
:class:`~repro.exec.ExecStats` is merged back (per-site checkpoint counts,
peak frontier/bytes, degradations) and the workers' steps are charged to
the parent's shared step counter, so the next parent checkpoint sees the
true global spend.  Worker-side ``BudgetExceeded``/``Cancelled`` are
transported field-by-field (never pickled exception objects) and re-raised
in the parent after the merge.

**Cancellation propagates both ways.**  The pool carries one
``multiprocessing.Event``: a parent-side ``ctx.cancel()`` is observed while
the parent waits for results and sets the event; worker contexts poll it
(throttled to every 64th checkpoint — cancellation latency is bounded, the
hot loop stays hot) and raise :class:`~repro.errors.Cancelled` exactly like
a same-process cancel.  A worker that fails also sets the event, so sibling
shards abort instead of running their budget out.

**Traces merge at join.**  With a tracer, the pool records a ``parallel``
span whose ``worker:<i>`` children hold each worker's spans rebuilt from
their JSON form, in deterministic task order — two runs of the same
parallel query produce byte-identical trace JSON modulo the timing fields.

``workers <= 1`` (or a platform without ``fork``) degrades to an *inline*
pool: the same task functions, sharding, budget floors and trace shape,
executed in-process — the serial member of every differential test pair.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_module
from collections.abc import Iterable, Sequence

from repro.errors import BudgetExceeded, Cancelled, WorkerFailed
from repro.exec.budget import (
    MIN_FRACTION_SECONDS,
    Budget,
    Context,
    DegradationEvent,
)

#: How many checkpoints a worker context may run between polls of the
#: shared cancellation event (an Event.is_set() is a semaphore probe; at
#: every checkpoint it would tax the hot loops the governor keeps cheap).
CANCEL_POLL_INTERVAL = 64

#: Seconds between parent-side liveness/cancellation sweeps while waiting.
_JOIN_POLL_SECONDS = 0.05


def default_worker_count() -> int:
    """The machine's CPU count (the pool default), at least 1."""
    return os.cpu_count() or 1


def fork_available() -> bool:
    """Whether real worker processes can be used on this platform."""
    return "fork" in mp.get_all_start_methods()


def partition_chunks(items: Sequence, n: int) -> list[tuple]:
    """Split ``items`` into up to ``n`` contiguous shards.

    Deterministic for a deterministic input order, and *contiguous* rather
    than strided: nearby start nodes tend to explore overlapping
    neighborhoods, so keeping them in one shard keeps that exploration in
    one worker instead of repeating it in every worker (measured ~2.4x
    total-work blowup with strided shards on cluster-structured graphs,
    ~1.0x with contiguous ones).  Empty shards are dropped.
    """
    if n < 1:
        raise ValueError("need at least one shard")
    size = max(1, -(-len(items) // n))
    return [tuple(items[lo:lo + size])
            for lo in range(0, len(items), size)]


def partition_ranges(length: int, n: int) -> list[tuple[int, int]]:
    """Split ``range(length)`` into up to ``n`` contiguous (lo, hi) chunks.

    Contiguous — not strided — so order-sensitive float merges (the
    analytics sweeps) add partial sums in the same left-to-right order as
    the serial loop, shard by shard.
    """
    if n < 1:
        raise ValueError("need at least one shard")
    chunk = max(1, -(-length // n))
    return [(lo, min(lo + chunk, length))
            for lo in range(0, length, chunk)]


# ---------------------------------------------------------------------------
# Task registry
# ---------------------------------------------------------------------------

#: kind -> function(state, payload, ctx, tracer) -> picklable result.
_TASKS: dict[str, object] = {}


def register_task(kind: str):
    """Register a worker task function under a descriptor kind.

    Task functions must be registered at import time of a module the
    *parent* imports before creating the pool: ``fork`` workers inherit the
    registry as forked memory.  ``state`` is the per-process worker state
    (``graph``, a ``caches`` dict that lives as long as the worker, and the
    worker ``index``).
    """
    def decorate(function):
        _TASKS[kind] = function
        return function
    return decorate


# ---------------------------------------------------------------------------
# Worker-side execution
# ---------------------------------------------------------------------------


class _EventShared:
    """Budget accounting shared state whose cancellation flag is backed by a
    process-shared Event (drop-in for ``repro.exec.budget._Shared``).

    The event is polled every :data:`CANCEL_POLL_INTERVAL` reads, so a
    parent cancel lands within a bounded number of checkpoints without a
    semaphore probe per checkpoint.  Once observed (or set locally), the
    flag stays up without further polling.
    """

    __slots__ = ("steps", "clock_offset", "_event", "_flag", "_reads")

    def __init__(self, event) -> None:
        self.steps = 0
        self.clock_offset = 0.0
        self._event = event
        self._flag = False
        self._reads = 0

    @property
    def cancelled(self) -> bool:
        if self._flag:
            return True
        if self._event is None:
            return False
        self._reads += 1
        if self._reads >= CANCEL_POLL_INTERVAL:
            self._reads = 0
            if self._event.is_set():
                self._flag = True
        return self._flag

    @cancelled.setter
    def cancelled(self, value: bool) -> None:
        if value:
            self._flag = True
            if self._event is not None:
                self._event.set()


def _make_task_context(budget_fields, event, faults) -> Context:
    """A worker/inline task context whose cancellation is event-backed."""
    ctx = Context(Budget(*budget_fields), faults=faults)
    shared = _EventShared(event)
    # Re-anchor the step ceiling on the fresh shared counter (both start at
    # zero, so the arithmetic of Context.__init__ is preserved).
    ctx._shared = shared
    return ctx


def _encode_stats(task_ctx: Context) -> dict:
    stats = task_ctx.stats
    return {
        "checkpoints": dict(stats.checkpoints),
        # The true step spend: with block-granular checkpoints (the
        # vectorized RPQ kernel charges ``steps=n`` per call) the per-site
        # call counts no longer sum to the steps consumed.
        "steps": task_ctx._shared.steps,
        "peak_frontier": stats.peak_frontier,
        "peak_bytes": stats.peak_bytes,
        "results": stats.results,
        "degradations": [(e.from_quality, e.to_quality, e.resource, e.site)
                         for e in stats.degradations],
        "notes": dict(stats.notes),
    }


def _merge_stats(ctx: Context, encoded: dict) -> None:
    """Fold one worker's encoded ExecStats into the parent context.

    Worker steps are charged to the parent's *shared* counter, so the
    global step budget keeps binding after the join; per the fraction()
    floors, the total may overshoot by at most one floored slice per task.
    """
    stats = ctx.stats
    for site, count in encoded["checkpoints"].items():
        stats.checkpoints[site] = stats.checkpoints.get(site, 0) + count
    ctx._shared.steps += encoded.get(
        "steps", sum(encoded["checkpoints"].values()))
    stats.peak_frontier = max(stats.peak_frontier, encoded["peak_frontier"])
    stats.peak_bytes = max(stats.peak_bytes, encoded["peak_bytes"])
    stats.results += encoded["results"]
    for fields in encoded["degradations"]:
        stats.degradations.append(DegradationEvent(*fields))
    stats.notes.update(encoded.get("notes", ()))


def _encode_error(error: BaseException) -> dict:
    if isinstance(error, BudgetExceeded):
        return {"kind": "budget", "resource": error.resource,
                "limit": repr(error.limit), "spent": repr(error.spent),
                "site": error.site, "injected": error.injected}
    if isinstance(error, Cancelled):
        return {"kind": "cancelled", "site": error.site}
    return {"kind": "error",
            "message": f"{type(error).__name__}: {error}"}


def _decode_error(encoded: dict, worker: int) -> BaseException:
    if encoded["kind"] == "budget":
        return BudgetExceeded(encoded["resource"], encoded["limit"],
                              encoded["spent"], encoded["site"],
                              injected=encoded["injected"])
    if encoded["kind"] == "cancelled":
        return Cancelled(encoded["site"])
    return WorkerFailed(worker, encoded["message"])


def _execute_task(state: dict, item: tuple, event, faults) -> bytes:
    """Run one task message; return the pickled result message.

    Pickling happens *here*, inside the try, so an unpicklable result turns
    into a reported error instead of killing the queue feeder.
    """
    task_id, kind, payload, budget_fields, want_stats, want_trace = item
    ctx = tracer = None
    if want_stats or budget_fields is not None or faults is not None:
        fields = budget_fields if budget_fields is not None else (None,) * 5
        ctx = _make_task_context(fields, event, faults)
    if want_trace:
        from repro.obs.tracer import Tracer
        tracer = Tracer()
    status, result, error = "ok", None, None
    try:
        function = _TASKS[kind]
        result = function(state, payload, ctx, tracer)
    except BaseException as exc:  # isolation: report, never crash the worker
        status, error = "failed", _encode_error(exc)
    stats = _encode_stats(ctx) if ctx is not None else None
    spans = tracer.to_dict()["spans"] if tracer is not None else None
    message = (task_id, state["index"], status, result, error, stats, spans)
    try:
        return pickle.dumps(message)
    except Exception as exc:
        fallback = (task_id, state["index"], "failed",
                    None, _encode_error(exc), stats, spans)
        return pickle.dumps(fallback)


def _worker_main(index: int, graph, tasks, results, event, faults) -> None:
    """Process entry point: drain the task queue until the ``None`` sentinel."""
    state = {"graph": graph, "caches": {}, "index": index}
    while True:
        item = tasks.get()
        if item is None:
            break
        results.put(_execute_task(state, item, event, faults))


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------


class WorkerPool:
    """N fork-shared workers bound to one read-only graph.

    Parameters
    ----------
    graph:
        The graph every task evaluates against.  Workers inherit it through
        fork copy-on-write memory; the sharded helpers assert the caller
        passes *this* object, so a pool can never silently answer for a
        different graph.  The graph must not be mutated while the pool is
        open (workers would not see the mutation — document-level contract,
        matching the read-only evaluation tier).
    workers:
        Shard/process count; ``None`` means :func:`default_worker_count`.
        ``workers <= 1`` — or a platform without ``fork`` — runs every task
        inline in the parent process through the identical code path.
    fault_plans:
        Optional ``{worker_index: FaultInjector}`` targeting individual
        workers: shard tasks executed by worker *i* run under plan *i*
        (inline pools apply plan 0), which is how the fault campaigns
        exercise partial-failure joins deterministically.
    """

    def __init__(self, graph, workers: int | None = None, *,
                 fault_plans: dict | None = None) -> None:
        self.graph = graph
        self.workers = default_worker_count() if workers is None else workers
        if self.workers < 1:
            raise ValueError("a pool needs at least one worker")
        self.fault_plans = dict(fault_plans) if fault_plans else {}
        self._procs: list | None = None
        self._task_queues: list = []
        self._results = None
        self._event = None
        self._inline_state: dict | None = None
        self._next_task = 0
        if self.workers > 1 and fork_available():
            self._start()
        else:
            self._inline_state = {"graph": graph, "caches": {}, "index": 0}
            self._event = None

    # -- lifecycle -----------------------------------------------------------

    def _start(self) -> None:
        ctx = mp.get_context("fork")
        self._event = ctx.Event()
        self._results = ctx.Queue()
        self._task_queues = [ctx.Queue() for _ in range(self.workers)]
        self._procs = []
        for index in range(self.workers):
            process = ctx.Process(
                target=_worker_main,
                args=(index, self.graph, self._task_queues[index],
                      self._results, self._event,
                      self.fault_plans.get(index)),
                daemon=True)
            process.start()
            self._procs.append(process)

    @property
    def n_shards(self) -> int:
        """How many shards work should be split into (= ``workers``)."""
        return self.workers

    @property
    def is_inline(self) -> bool:
        return self._procs is None

    def close(self) -> None:
        """Stop the workers (idempotent)."""
        if self._procs is None:
            return
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except (OSError, ValueError):
                pass
        for process in self._procs:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for task_queue in self._task_queues:
            task_queue.close()
        self._results.close()
        self._procs = None
        self._inline_state = {"graph": self.graph, "caches": {}, "index": 0}

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def cancel(self) -> None:
        """Ask every in-flight worker task to cancel cooperatively."""
        if self._event is not None:
            self._event.set()

    # -- budget subdivision ----------------------------------------------------

    @staticmethod
    def subdivide(ctx: Context | None, n_tasks: int) -> tuple | None:
        """The per-task sub-budget for ``n_tasks`` concurrent tasks.

        Wall-clock deadline passes through whole (one shared wall clock
        enforces it globally); divisible budgets (steps, bytes) hand each
        task ``remaining // n_tasks``; size *caps* (frontier) and
        ``max_results`` pass through unchanged.  Slices are floored like
        :meth:`Context.fraction` — at least 1 step / :data:`MIN_FRACTION_SECONDS`
        — so the group may overshoot by at most one floor per task, the
        documented price of letting every shard run.
        """
        if ctx is None:
            return None
        left = ctx.time_left()
        deadline = None if left is None else max(left, MIN_FRACTION_SECONDS)
        steps_left = ctx.steps_left()
        steps = None if steps_left is None else max(1, steps_left // n_tasks)
        max_bytes = ctx.budget.max_bytes
        bytes_share = None if max_bytes is None else max(1, max_bytes // n_tasks)
        return (deadline, steps, ctx.budget.max_frontier, bytes_share,
                ctx.budget.max_results)

    # -- running tasks ---------------------------------------------------------

    def run_tasks(self, tasks: Sequence[tuple], *, ctx: Context | None = None,
                  tracer=None) -> list:
        """Execute ``[(kind, payload), ...]``; return results in task order.

        Task *i* runs on worker ``i % workers`` — a deterministic
        assignment, so fault plans and merged traces are reproducible.  The
        first worker-side :class:`BudgetExceeded`/:class:`Cancelled` (by
        task order) re-raises here after stats/trace merging; any other
        worker error raises :class:`~repro.errors.WorkerFailed`.  On any
        failure the remaining shards are cancelled via the shared event.
        """
        if not tasks:
            return []
        if ctx is not None:
            # Surfaces pre-existing cancellation/exhaustion before any work
            # is sent, and accounts for the dispatch itself.
            ctx.checkpoint("parallel.submit")
        budget_fields = self.subdivide(ctx, len(tasks))
        want_stats = ctx is not None
        want_trace = tracer is not None
        parent_span = None
        if tracer is not None:
            parent_span = tracer.start("parallel", workers=self.workers,
                                       tasks=len(tasks),
                                       inline=self.is_inline)
        try:
            if self._procs is None:
                messages = self._run_inline(tasks, ctx, budget_fields,
                                            want_stats, want_trace)
            else:
                messages = self._run_forked(tasks, ctx, budget_fields,
                                            want_stats, want_trace)
            return self._join(messages, ctx, tracer, len(tasks))
        finally:
            if parent_span is not None:
                tracer.finish(parent_span)
            if self._event is not None:
                # A poisoned event must not outlive the run that set it.
                self._event.clear()

    def _run_inline(self, tasks, ctx, budget_fields, want_stats, want_trace):
        """Inline mode: same task functions and message shape, no processes."""
        state = self._inline_state
        faults = self.fault_plans.get(0)
        messages = []
        for task_id, (kind, payload) in enumerate(tasks):
            item = (task_id, kind, payload, budget_fields,
                    want_stats, want_trace)
            messages.append(pickle.loads(
                _execute_task(state, item, None, faults)))
            # Mirror cross-worker cancellation: a failed shard stops the
            # remaining shards (they report as cancelled at submit).
            status = messages[-1][2]
            if status != "ok":
                for skipped_id in range(task_id + 1, len(tasks)):
                    messages.append((skipped_id, 0, "failed", None,
                                     {"kind": "cancelled",
                                      "site": "parallel.submit"},
                                     None, None))
                break
        return messages

    def _run_forked(self, tasks, ctx, budget_fields, want_stats, want_trace):
        for task_id, (kind, payload) in enumerate(tasks):
            item = (task_id, kind, payload, budget_fields,
                    want_stats, want_trace)
            self._task_queues[task_id % self.workers].put(item)
        messages = []
        pending = len(tasks)
        failed = False
        while pending:
            if (ctx is not None and ctx.cancelled
                    and not self._event.is_set()):
                self._event.set()
            try:
                raw = self._results.get(timeout=_JOIN_POLL_SECONDS)
            except queue_module.Empty:
                self._check_alive()
                continue
            message = pickle.loads(raw)
            messages.append(message)
            pending -= 1
            if message[2] != "ok" and not failed:
                # Abort sibling shards promptly; their cancellations are
                # subordinated to the primary error during the join.
                failed = True
                self._event.set()
        return messages

    def _check_alive(self) -> None:
        for process in self._procs:
            if process.exitcode is not None:
                self._event.set()
                raise WorkerFailed(
                    self._procs.index(process),
                    f"worker process exited with code {process.exitcode} "
                    f"while tasks were pending")

    def _join(self, messages, ctx, tracer, n_tasks):
        """Merge stats and traces, surface errors, order results."""
        messages.sort(key=lambda message: message[0])
        if ctx is not None:
            for message in messages:
                if message[5] is not None:
                    _merge_stats(ctx, message[5])
        if tracer is not None:
            self._merge_traces(tracer, messages)
        primary = None
        for message in messages:
            _, worker, status, _, error, _, _ = message
            if status == "ok":
                continue
            decoded = _decode_error(error, worker)
            if primary is None:
                primary = decoded
            elif (isinstance(primary, Cancelled)
                  and isinstance(decoded, BudgetExceeded)):
                # A real budget error outranks the cancellations it caused
                # in sibling shards, wherever it landed in task order.
                primary = decoded
        if primary is not None:
            raise primary
        return [message[3] for message in messages]

    def _merge_traces(self, tracer, messages) -> None:
        from repro.obs.tracer import Span

        def rebuild(encoded: dict) -> Span:
            span = Span(encoded["name"])
            span.attrs = dict(encoded["attrs"])
            span.wall_start = encoded["wall_start"]
            span.duration = encoded["duration_s"]
            span.status = encoded["status"]
            span.error = encoded["error"]
            span.children = [rebuild(child) for child in encoded["children"]]
            return span

        by_worker: dict[int, list] = {}
        for task_id, worker, _, _, _, _, spans in messages:
            if spans:
                by_worker.setdefault(worker, []).extend(
                    (task_id, span) for span in spans)
        for worker in sorted(by_worker):
            with tracer.span(f"worker:{worker}") as parent:
                for task_id, encoded in sorted(by_worker[worker],
                                               key=lambda pair: pair[0]):
                    child = rebuild(encoded)
                    child.attrs.setdefault("task", task_id)
                    parent.children.append(child)


# ---------------------------------------------------------------------------
# Sharded RPQ entry points (the machinery behind ``pool=`` keywords)
# ---------------------------------------------------------------------------


def _normalized_starts(pool: WorkerPool, graph, start_nodes) -> list:
    if graph is not pool.graph:
        raise ValueError("this pool is bound to a different graph object; "
                         "create a WorkerPool for the graph being queried")
    nodes = graph.nodes() if start_nodes is None else start_nodes
    # Sort + dedupe: shard contents become a pure function of the query, so
    # worker results (and merged traces) are deterministic, and duplicated
    # user-supplied start nodes cannot double-count across shards.
    return sorted(set(nodes), key=str)


@register_task("rpq.endpoint_pairs")
def _task_endpoint_pairs(state, payload, ctx, tracer):
    from repro.core.rpq.evaluate import endpoint_pairs

    return endpoint_pairs(state["graph"], payload["regex"],
                          start_nodes=payload["starts"],
                          end_nodes=payload["ends"],
                          use_label_index=payload["use_label_index"],
                          engine=payload.get("engine", "auto"),
                          ctx=ctx, tracer=tracer)


def sharded_endpoint_pairs(pool: WorkerPool, graph, regex,
                           start_nodes=None, end_nodes=None, *,
                           use_label_index: bool = True, engine: str = "auto",
                           ctx=None, tracer=None) -> set[tuple]:
    """:func:`~repro.core.rpq.evaluate.endpoint_pairs` sharded by start node.

    Exact: every conforming path belongs to exactly one shard (the one
    holding its start node), so the union of the per-shard answers is the
    serial answer.
    """
    starts = _normalized_starts(pool, graph, start_nodes)
    ends = None if end_nodes is None else tuple(sorted(set(end_nodes), key=str))
    tasks = [("rpq.endpoint_pairs",
              {"regex": regex, "starts": shard, "ends": ends,
               "use_label_index": use_label_index, "engine": engine})
             for shard in partition_chunks(starts, pool.n_shards)]
    pairs: set[tuple] = set()
    for shard_pairs in pool.run_tasks(tasks, ctx=ctx, tracer=tracer):
        pairs |= shard_pairs
    return pairs


@register_task("rpq.count_paths")
def _task_count_paths(state, payload, ctx, tracer):
    from repro.core.rpq.count import count_paths_exact

    return count_paths_exact(state["graph"], payload["regex"], payload["k"],
                             start_nodes=payload["starts"],
                             end_nodes=payload["ends"],
                             use_label_index=payload["use_label_index"],
                             engine=payload.get("engine", "auto"),
                             ctx=ctx)


def sharded_count_paths(pool: WorkerPool, graph, regex, k: int,
                        start_nodes=None, end_nodes=None, *,
                        use_label_index: bool = True, engine: str = "auto",
                        ctx=None, tracer=None) -> int:
    """Count(G, r, k) sharded by start node; the shard counts sum exactly.

    Distinct paths have distinct (start node, word) encodings and the start
    sets are disjoint, so no path is counted twice or dropped.
    """
    starts = _normalized_starts(pool, graph, start_nodes)
    ends = None if end_nodes is None else tuple(sorted(set(end_nodes), key=str))
    tasks = [("rpq.count_paths",
              {"regex": regex, "k": k, "starts": shard, "ends": ends,
               "use_label_index": use_label_index, "engine": engine})
             for shard in partition_chunks(starts, pool.n_shards)]
    return sum(pool.run_tasks(tasks, ctx=ctx, tracer=tracer))


# ---------------------------------------------------------------------------
# Analytics sweep tasks (used by repro.analytics.pagerank / hits)
# ---------------------------------------------------------------------------


def _sorted_nodes(state: dict) -> list:
    nodes = state["caches"].get("sorted_nodes")
    if nodes is None:
        nodes = state["caches"]["sorted_nodes"] = sorted(
            state["graph"].nodes(), key=str)
    return nodes


@register_task("analytics.pagerank_sweep")
def _task_pagerank_sweep(state, payload, ctx, tracer):
    """One shard of a PageRank power-iteration sweep.

    Returns ``(incoming, dangling)`` where ``incoming`` maps successor ->
    mass received from this shard's sources (summed in sorted-source order)
    and ``dangling`` is the shard's dangling mass.
    """
    graph = state["graph"]
    nodes = _sorted_nodes(state)
    lo, hi = payload["range"]
    rank = payload["rank"]
    incoming: dict = {}
    dangling = 0.0
    for node in nodes[lo:hi]:
        if ctx is not None:
            ctx.checkpoint("pagerank.shard")
        out_degree = graph.out_degree(node)
        if out_degree == 0:
            dangling += rank[node]
            continue
        share = rank[node] / out_degree
        for successor in graph.successors(node):
            incoming[successor] = incoming.get(successor, 0.0) + share
    return incoming, dangling


@register_task("analytics.hits_authority_sweep")
def _task_hits_authority_sweep(state, payload, ctx, tracer):
    """Authority contributions of this shard's source nodes (pre-merge)."""
    graph = state["graph"]
    nodes = _sorted_nodes(state)
    lo, hi = payload["range"]
    hub = payload["hub"]
    contributions: dict = {}
    for node in nodes[lo:hi]:
        if ctx is not None:
            ctx.checkpoint("hits.shard")
        for successor in graph.successors(node):
            contributions[successor] = (contributions.get(successor, 0.0)
                                        + hub[node])
    return contributions


@register_task("analytics.hits_hub_sweep")
def _task_hits_hub_sweep(state, payload, ctx, tracer):
    """Hub scores of this shard's nodes from the (already merged) authority
    vector; shards are disjoint by node, so the parent merge is a dict
    union."""
    graph = state["graph"]
    nodes = _sorted_nodes(state)
    lo, hi = payload["range"]
    authority = payload["authority"]
    hubs: dict = {}
    for node in nodes[lo:hi]:
        if ctx is not None:
            ctx.checkpoint("hits.shard")
        hubs[node] = sum(authority[successor]
                         for successor in graph.successors(node))
    return hubs
