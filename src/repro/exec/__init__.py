"""Execution governance: budgets, checkpoints, degradation, fault injection.

The robustness spine of the library (DESIGN.md §4c).  A query runs under a
:class:`Budget` carried by a :class:`Context`; governed hot loops call
``ctx.checkpoint(site)`` cooperatively, so deadlines, step/memory budgets
and cancellation all take effect at well-defined points.  Exhaustion raises
the typed outcomes of :mod:`repro.errors` (:class:`BudgetExceeded`,
:class:`Cancelled`), and :func:`count_paths_governed` converts exhaustion
into *degraded answers* (FPRAS estimate, then certified lower bound)
instead of failures.  :class:`FaultInjector` makes every one of those paths
deterministically testable.
"""

from repro.errors import (
    BudgetExceeded,
    Cancelled,
    Degraded,
    ExecutionError,
    WorkerFailed,
)
from repro.exec.budget import (
    MIN_FRACTION_SECONDS,
    Budget,
    Context,
    DegradationEvent,
    ExecStats,
)
from repro.exec.faults import (
    BufferedDiskIO,
    FaultInjector,
    FlakyIO,
    StorageIO,
    TornWriteIO,
    WriteCrash,
    run_with_fault,
)
from repro.exec.governor import GovernedResult, QUALITIES, count_paths_governed
from repro.exec.parallel import (
    WorkerPool,
    default_worker_count,
    fork_available,
    register_task,
    sharded_count_paths,
    sharded_endpoint_pairs,
)
from repro.exec.batch import (
    BatchQuery,
    BatchResult,
    BatchSession,
    batch_exit_status,
)

__all__ = [
    "MIN_FRACTION_SECONDS",
    "Budget",
    "Context",
    "ExecStats",
    "DegradationEvent",
    "FaultInjector",
    "run_with_fault",
    "StorageIO",
    "TornWriteIO",
    "BufferedDiskIO",
    "FlakyIO",
    "WriteCrash",
    "GovernedResult",
    "QUALITIES",
    "count_paths_governed",
    "WorkerPool",
    "default_worker_count",
    "fork_available",
    "register_task",
    "sharded_endpoint_pairs",
    "sharded_count_paths",
    "BatchQuery",
    "BatchResult",
    "BatchSession",
    "batch_exit_status",
    "ExecutionError",
    "BudgetExceeded",
    "Cancelled",
    "Degraded",
    "WorkerFailed",
]
