"""Deterministic fault injection for the execution governor.

Real timeouts make terrible tests: they are slow, flaky and rarely hit the
code path you meant to exercise.  This harness makes every governed
failure mode reproducible without sleeping:

- **inject-at-Nth-checkpoint** — raise a typed fault (or request
  cancellation) the N-th time a given site (or any site) checkpoints;
- **clock skew** — advance the context's *virtual* clock by a fixed amount
  per checkpoint, so a real ``deadline`` budget expires after a
  deterministic number of checkpoints;
- **allocation pressure** — multiply every charged byte count, so
  ``max_bytes`` trips early and the memory-exhaustion paths run on tiny
  inputs;
- **seeded plans** — :meth:`FaultInjector.from_seed` draws the trigger
  point from :mod:`repro.util.rng`, so randomized fault campaigns (CI) are
  replayable from one integer.

The injector also keeps its own per-site observation counters, which is
what the checkpoint-coverage assertions in the test suite read: a loop that
never checkpoints can never be faulted, so coverage of the injector *is*
coverage of the governor.
"""

from __future__ import annotations

import errno
import os
import random
import signal

from repro.errors import BudgetExceeded, Cancelled
from repro.util.rng import make_default_rng

#: Fault kinds an injector can raise at its trigger checkpoint.
KINDS = ("deadline", "steps", "cancel", "frontier", "bytes")


class FaultInjector:
    """Deterministic fault plan attached to a :class:`~repro.exec.Context`.

    Parameters
    ----------
    fail_at:
        Trigger ordinal, 1-based.  With ``site=None`` it counts every
        checkpoint globally; with a site it counts only that site's hits.
        ``None`` disables the trigger (useful for pure skew/pressure runs).
    site:
        Checkpoint site the trigger counts, or ``None`` for all sites.
    kind:
        What happens at the trigger: ``'deadline'``/``'steps'``/
        ``'frontier'``/``'bytes'`` raise the corresponding
        :class:`BudgetExceeded` (marked ``injected=True``); ``'cancel'``
        flips the context's cooperative cancellation flag, so the
        checkpoint's own cancellation check raises :class:`Cancelled` —
        exactly how an external cancel lands.
    skew_per_checkpoint:
        Seconds of virtual clock added at every checkpoint.
    allocation_multiplier:
        Factor applied to every ``charge_bytes`` amount.
    """

    def __init__(self, *, fail_at: int | None = None, site: str | None = None,
                 kind: str = "deadline", skew_per_checkpoint: float = 0.0,
                 allocation_multiplier: float = 1.0) -> None:
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; expected one of {KINDS}")
        if fail_at is not None and fail_at < 1:
            raise ValueError("fail_at is 1-based and must be >= 1")
        self.fail_at = fail_at
        self.site = site
        self.kind = kind
        self.skew_per_checkpoint = skew_per_checkpoint
        self.allocation_multiplier = allocation_multiplier
        self.observed: dict[str, int] = {}
        self.fired = False

    @classmethod
    def from_seed(cls, seed: int | random.Random | None, *,
                  max_ordinal: int = 64, site: str | None = None,
                  kinds: tuple[str, ...] = ("deadline", "steps", "cancel")) -> "FaultInjector":
        """A replayable randomized plan: the trigger ordinal and fault kind
        are drawn from a seeded generator (``None`` = the library default
        seed, still deterministic)."""
        rng = make_default_rng(seed)
        return cls(fail_at=rng.randint(1, max_ordinal),
                   site=site, kind=rng.choice(list(kinds)))

    # -- hooks called by Context ---------------------------------------------

    def on_checkpoint(self, ctx, site: str) -> None:
        self.observed[site] = self.observed.get(site, 0) + 1
        if self.skew_per_checkpoint:
            ctx.skew_clock(self.skew_per_checkpoint)
        if self.fail_at is None or self.fired:
            return
        if self.site is not None:
            if site != self.site:
                return
            ordinal = self.observed[site]
        else:
            ordinal = sum(self.observed.values())
        if ordinal < self.fail_at:
            return
        self.fired = True
        if self.kind == "cancel":
            ctx.cancel()
            return
        raise BudgetExceeded(self.kind, "<injected>", ordinal, site,
                             injected=True)

    def on_allocation(self, amount: int) -> int:
        if self.allocation_multiplier != 1.0:
            return int(amount * self.allocation_multiplier)
        return amount


# ---------------------------------------------------------------------------
# Storage crash faults: the IO plane the WAL writes through
# ---------------------------------------------------------------------------
#
# The governor faults above interrupt *computation* at cooperative
# checkpoints.  Durable storage needs the complementary harness: faults on
# the *IO plane* — a process killed halfway through an append, a page cache
# that never reached the platter, an fsync that returns EIO.  Real crashes
# make terrible tests for the same reason real timeouts do, so
# :class:`~repro.storage.wal.WalWriter` routes every byte through a
# :class:`StorageIO` object, and the subclasses here make each failure mode
# deterministic:
#
# - :class:`TornWriteIO` — kill-at-Nth-write: the N-th write persists only
#   its first B bytes, then the "process" dies (a :class:`WriteCrash`
#   escape, or a literal SIGKILL for forked campaign children).  Sweeping
#   (N, B) visits every record and byte boundary a crash can tear at.
# - :class:`BufferedDiskIO` — OS-crash emulation: writes land in a shadow
#   buffer (the page cache) and reach the file only on fsync, so the
#   difference between fsync policies ``always``/``batch``/``never``
#   becomes observable in a unit test.
# - :class:`FlakyIO` — transient EIO from write/fsync, exercising the
#   writer's retry-with-backoff loop and its give-up error.


class WriteCrash(BaseException):
    """Simulated process death during a storage write.

    Deliberately *not* a :class:`~repro.errors.ReproError` — nothing in the
    library may catch and survive it, exactly as nothing survives SIGKILL.
    Test harnesses catch it at top level, then reopen the store from disk.
    """


class StorageIO:
    """Default IO plane: direct ``os.write``/``os.fsync`` passthrough.

    The WAL writer performs *every* data-plane operation through one of
    these, so a fault subclass can intercept any byte.  ``write`` loops
    until the whole buffer is accepted, as a partial ``os.write`` return is
    not an error.
    """

    def write(self, fd: int, data: bytes) -> int:
        view = memoryview(data)
        written = 0
        while written < len(view):
            written += os.write(fd, view[written:])
        return written

    def fsync(self, fd: int) -> None:
        os.fsync(fd)

    def truncate(self, fd: int, size: int) -> None:
        os.ftruncate(fd, size)


class TornWriteIO(StorageIO):
    """Crash mid-write: the ``crash_at_write``-th write call (1-based)
    persists only its first ``crash_at_byte`` bytes, then the process dies.

    ``signal_kill=True`` delivers a real ``SIGKILL`` to the calling process
    (for forked campaign children); otherwise a :class:`WriteCrash`
    escapes.  After the crash point every further operation also "fails
    dead" — a killed process writes nothing more — so an in-process harness
    that accidentally keeps using the writer cannot leak post-crash bytes.
    """

    def __init__(self, crash_at_write: int, crash_at_byte: int = 0, *,
                 signal_kill: bool = False) -> None:
        if crash_at_write < 1:
            raise ValueError("crash_at_write is 1-based and must be >= 1")
        if crash_at_byte < 0:
            raise ValueError("crash_at_byte must be >= 0")
        self.crash_at_write = crash_at_write
        self.crash_at_byte = crash_at_byte
        self.signal_kill = signal_kill
        self.writes = 0
        self.crashed = False

    def _die(self):
        self.crashed = True
        if self.signal_kill:
            os.kill(os.getpid(), signal.SIGKILL)
        raise WriteCrash(
            f"torn write at call {self.writes}, byte {self.crash_at_byte}")

    def write(self, fd: int, data: bytes) -> int:
        if self.crashed:
            raise WriteCrash("process already dead")
        self.writes += 1
        if self.writes == self.crash_at_write:
            kept = data[:self.crash_at_byte]
            if kept:
                super().write(fd, kept)
            self._die()
        return super().write(fd, data)

    def fsync(self, fd: int) -> None:
        if self.crashed:
            raise WriteCrash("process already dead")
        super().fsync(fd)

    def truncate(self, fd: int, size: int) -> None:
        if self.crashed:
            raise WriteCrash("process already dead")
        super().truncate(fd, size)


class BufferedDiskIO(StorageIO):
    """OS-crash emulation: unsynced writes live in a volatile page cache.

    ``write`` appends to an in-memory shadow buffer per fd; only ``fsync``
    moves the buffer to the real file (and syncs it).  :meth:`crash`
    discards everything unsynced — precisely what a machine losing power
    does to its page cache — after which all further operations fail dead.
    ``crash_at_write=N`` arms an automatic crash on the N-th write that
    instead models the kernel having written back everything pending plus
    the first ``flushed_bytes_of_crashing_write`` bytes of that write
    (writeback is sequential, so what survives is always a prefix) — the
    torn sector a real power cut can leave.
    """

    def __init__(self, crash_at_write: int | None = None,
                 flushed_bytes_of_crashing_write: int = 0) -> None:
        self.crash_at_write = crash_at_write
        self.flushed_partial = flushed_bytes_of_crashing_write
        self._pending: dict[int, bytearray] = {}
        self._synced: dict[int, int] = {}
        self.writes = 0
        self.crashed = False

    def _check_alive(self) -> None:
        if self.crashed:
            raise WriteCrash("process already dead")

    def write(self, fd: int, data: bytes) -> int:
        self._check_alive()
        self.writes += 1
        pending = self._pending.setdefault(fd, bytearray())
        if self.crash_at_write is not None and \
                self.writes == self.crash_at_write:
            pending.extend(data[:self.flushed_partial])
            if pending:
                super().write(fd, bytes(pending))
            self._lose_power()
        pending.extend(data)
        return len(data)

    def fsync(self, fd: int) -> None:
        self._check_alive()
        pending = self._pending.get(fd)
        if pending:
            super().write(fd, bytes(pending))
            self._pending[fd] = bytearray()
        super().fsync(fd)
        self._synced[fd] = os.fstat(fd).st_size

    def truncate(self, fd: int, size: int) -> None:
        self._check_alive()
        flushed = os.fstat(fd).st_size
        pending = self._pending.setdefault(fd, bytearray())
        if size >= flushed:
            del pending[size - flushed:]
        else:
            super().truncate(fd, size)
            self._pending[fd] = bytearray()

    def crash(self, fd: int | None = None) -> None:
        """Lose the page cache right now: every unsynced byte vanishes."""
        self._lose_power()

    def _lose_power(self) -> None:
        self._pending = {}
        self.crashed = True
        raise WriteCrash(f"simulated power loss at write {self.writes}")


class FlakyIO(StorageIO):
    """Transient IO errors: the first ``fail_fsyncs`` fsync calls and the
    first ``fail_writes`` write calls raise ``EIO``, then the plane heals.

    Exercises the WAL writer's bounded retry-with-backoff: with failures
    below the retry budget an append succeeds (slowly); above it, the
    writer surfaces :class:`~repro.errors.WalWriteError` and the store must
    still recover to the acknowledged prefix.
    """

    def __init__(self, *, fail_fsyncs: int = 0, fail_writes: int = 0) -> None:
        self.fail_fsyncs = fail_fsyncs
        self.fail_writes = fail_writes
        self.fsync_calls = 0
        self.write_calls = 0

    def write(self, fd: int, data: bytes) -> int:
        self.write_calls += 1
        if self.write_calls <= self.fail_writes:
            raise OSError(errno.EIO, "injected write failure")
        return super().write(fd, data)

    def fsync(self, fd: int) -> None:
        self.fsync_calls += 1
        if self.fsync_calls <= self.fail_fsyncs:
            raise OSError(errno.EIO, "injected fsync failure")
        super().fsync(fd)


def run_with_fault(function, ctx_factory, injector: FaultInjector):
    """Run ``function(ctx)`` under ``injector``; return the outcome.

    Returns ``('ok', result)`` when the fault never fired (plan ordinal past
    the end of the computation), ``('budget', error)`` for an injected or
    real :class:`BudgetExceeded`, ``('cancelled', error)`` for
    :class:`Cancelled`.  Test harness helper: campaigns sweep ``fail_at``
    over 1..N and assert every outcome leaves the system consistent.
    """
    ctx = ctx_factory(injector)
    try:
        return "ok", function(ctx)
    except BudgetExceeded as error:
        return "budget", error
    except Cancelled as error:
        return "cancelled", error
