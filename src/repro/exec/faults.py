"""Deterministic fault injection for the execution governor.

Real timeouts make terrible tests: they are slow, flaky and rarely hit the
code path you meant to exercise.  This harness makes every governed
failure mode reproducible without sleeping:

- **inject-at-Nth-checkpoint** — raise a typed fault (or request
  cancellation) the N-th time a given site (or any site) checkpoints;
- **clock skew** — advance the context's *virtual* clock by a fixed amount
  per checkpoint, so a real ``deadline`` budget expires after a
  deterministic number of checkpoints;
- **allocation pressure** — multiply every charged byte count, so
  ``max_bytes`` trips early and the memory-exhaustion paths run on tiny
  inputs;
- **seeded plans** — :meth:`FaultInjector.from_seed` draws the trigger
  point from :mod:`repro.util.rng`, so randomized fault campaigns (CI) are
  replayable from one integer.

The injector also keeps its own per-site observation counters, which is
what the checkpoint-coverage assertions in the test suite read: a loop that
never checkpoints can never be faulted, so coverage of the injector *is*
coverage of the governor.
"""

from __future__ import annotations

import random

from repro.errors import BudgetExceeded, Cancelled
from repro.util.rng import make_default_rng

#: Fault kinds an injector can raise at its trigger checkpoint.
KINDS = ("deadline", "steps", "cancel", "frontier", "bytes")


class FaultInjector:
    """Deterministic fault plan attached to a :class:`~repro.exec.Context`.

    Parameters
    ----------
    fail_at:
        Trigger ordinal, 1-based.  With ``site=None`` it counts every
        checkpoint globally; with a site it counts only that site's hits.
        ``None`` disables the trigger (useful for pure skew/pressure runs).
    site:
        Checkpoint site the trigger counts, or ``None`` for all sites.
    kind:
        What happens at the trigger: ``'deadline'``/``'steps'``/
        ``'frontier'``/``'bytes'`` raise the corresponding
        :class:`BudgetExceeded` (marked ``injected=True``); ``'cancel'``
        flips the context's cooperative cancellation flag, so the
        checkpoint's own cancellation check raises :class:`Cancelled` —
        exactly how an external cancel lands.
    skew_per_checkpoint:
        Seconds of virtual clock added at every checkpoint.
    allocation_multiplier:
        Factor applied to every ``charge_bytes`` amount.
    """

    def __init__(self, *, fail_at: int | None = None, site: str | None = None,
                 kind: str = "deadline", skew_per_checkpoint: float = 0.0,
                 allocation_multiplier: float = 1.0) -> None:
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; expected one of {KINDS}")
        if fail_at is not None and fail_at < 1:
            raise ValueError("fail_at is 1-based and must be >= 1")
        self.fail_at = fail_at
        self.site = site
        self.kind = kind
        self.skew_per_checkpoint = skew_per_checkpoint
        self.allocation_multiplier = allocation_multiplier
        self.observed: dict[str, int] = {}
        self.fired = False

    @classmethod
    def from_seed(cls, seed: int | random.Random | None, *,
                  max_ordinal: int = 64, site: str | None = None,
                  kinds: tuple[str, ...] = ("deadline", "steps", "cancel")) -> "FaultInjector":
        """A replayable randomized plan: the trigger ordinal and fault kind
        are drawn from a seeded generator (``None`` = the library default
        seed, still deterministic)."""
        rng = make_default_rng(seed)
        return cls(fail_at=rng.randint(1, max_ordinal),
                   site=site, kind=rng.choice(list(kinds)))

    # -- hooks called by Context ---------------------------------------------

    def on_checkpoint(self, ctx, site: str) -> None:
        self.observed[site] = self.observed.get(site, 0) + 1
        if self.skew_per_checkpoint:
            ctx.skew_clock(self.skew_per_checkpoint)
        if self.fail_at is None or self.fired:
            return
        if self.site is not None:
            if site != self.site:
                return
            ordinal = self.observed[site]
        else:
            ordinal = sum(self.observed.values())
        if ordinal < self.fail_at:
            return
        self.fired = True
        if self.kind == "cancel":
            ctx.cancel()
            return
        raise BudgetExceeded(self.kind, "<injected>", ordinal, site,
                             injected=True)

    def on_allocation(self, amount: int) -> int:
        if self.allocation_multiplier != 1.0:
            return int(amount * self.allocation_multiplier)
        return amount


def run_with_fault(function, ctx_factory, injector: FaultInjector):
    """Run ``function(ctx)`` under ``injector``; return the outcome.

    Returns ``('ok', result)`` when the fault never fired (plan ordinal past
    the end of the computation), ``('budget', error)`` for an injected or
    real :class:`BudgetExceeded`, ``('cancelled', error)`` for
    :class:`Cancelled`.  Test harness helper: campaigns sweep ``fail_at``
    over 1..N and assert every outcome leaves the system consistent.
    """
    ctx = ctx_factory(injector)
    try:
        return "ok", function(ctx)
    except BudgetExceeded as error:
        return "budget", error
    except Cancelled as error:
        return "cancelled", error
