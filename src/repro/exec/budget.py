"""Execution budgets and the cooperative checkpoint protocol.

The paper's complexity results are the reason this module exists: Count is
SpanL-complete, so the exact algorithms are *expected* to blow up on
adversarial inputs, and nothing short of per-query resource governance
makes them safe to run unattended.  The design follows the per-query
resource managers of production RPQ engines (MillenniumDB's query
deadlines/thread budgets):

- a :class:`Budget` declares limits — wall-clock ``deadline`` (seconds),
  ``max_steps`` (checkpoints), ``max_frontier`` (live states / DP subsets),
  ``max_bytes`` (sample-pool / DP memory), ``max_results`` (emitted
  answers);
- a :class:`Context` carries the budget through a computation and accounts
  against it.  Hot loops call :meth:`Context.checkpoint` (cheap: one dict
  bump, one counter, one clock read) at every O(1)-amortized unit of work;
  exceeding any limit raises :class:`~repro.errors.BudgetExceeded`, and a
  cooperative :meth:`Context.cancel` from anywhere raises
  :class:`~repro.errors.Cancelled` at the next checkpoint;
- :class:`ExecStats` records, per checkpoint *site*, how often the site was
  hit, plus peak frontier size, peak charged bytes and every degradation
  event — the per-query observability the bench harness and CLI surface.

Checkpoint placement rules (see DESIGN.md §4c): every loop whose trip count
depends on the *input* (graph size, product size, number of subsets,
sampling trials, join candidates, fixpoint iterations) checkpoints once per
iteration under a stable dotted site name; loops bounded by a small
constant do not.  Sites are the unit of fault injection and of the
checkpoint-coverage assertions in the test suite.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import BudgetExceeded, Cancelled

#: Minimum deadline slice (seconds) a :meth:`Context.fraction` child is
#: granted.  Without a floor, a nearly exhausted parent hands a rung a
#: share that rounds to ~0 and the rung dies at its *first* checkpoint
#: before doing any work; with it, every rung of the degradation ladder
#: gets at least epsilon seconds (and, symmetrically, at least 1 step) to
#: produce its cheapest possible answer.
MIN_FRACTION_SECONDS = 1e-3


@dataclass(frozen=True)
class Budget:
    """Declarative per-query resource limits; ``None`` means unlimited.

    ``deadline`` is relative (seconds from the creation of the
    :class:`Context`); the context turns it into an absolute monotonic
    instant, so nested sub-budgets share one clock.
    """

    deadline: float | None = None
    max_steps: int | None = None
    max_frontier: int | None = None
    max_bytes: int | None = None
    max_results: int | None = None

    def is_unlimited(self) -> bool:
        return (self.deadline is None and self.max_steps is None
                and self.max_frontier is None and self.max_bytes is None
                and self.max_results is None)


@dataclass
class DegradationEvent:
    """One rung of the degradation ladder giving up."""

    from_quality: str
    to_quality: str
    resource: str
    site: str

    def __str__(self) -> str:
        return (f"{self.from_quality} -> {self.to_quality} "
                f"({self.resource} exhausted at {self.site})")


@dataclass
class ExecStats:
    """Per-query execution statistics, shared by a context and its children."""

    checkpoints: dict[str, int] = field(default_factory=dict)
    peak_frontier: int = 0
    peak_bytes: int = 0
    results: int = 0
    degradations: list[DegradationEvent] = field(default_factory=list)
    #: Free-form per-query annotations (e.g. ``engine``/``engine_reason``
    #: from the RPQ engine selector) surfaced by ``--stats`` and merged
    #: last-writer-wins across workers.
    notes: dict[str, object] = field(default_factory=dict)

    @property
    def total_checkpoints(self) -> int:
        return sum(self.checkpoints.values())

    def sites(self) -> set[str]:
        """The checkpoint sites this query actually passed through."""
        return set(self.checkpoints)

    def as_rows(self) -> list[list[object]]:
        """Table rows for the bench harness / CLI ``--stats`` output."""
        rows: list[list[object]] = [
            ["checkpoints (total)", self.total_checkpoints],
            ["peak frontier", self.peak_frontier],
            ["peak bytes (approx)", self.peak_bytes],
            ["results emitted", self.results],
            ["degradation events", len(self.degradations)],
        ]
        for site in sorted(self.checkpoints):
            rows.append([f"site {site}", self.checkpoints[site]])
        for event in self.degradations:
            rows.append(["degraded", str(event)])
        for name in sorted(self.notes):
            rows.append([f"note {name}", self.notes[name]])
        return rows


class _Shared:
    """Mutable accounting shared between a context and its sub-contexts.

    Steps, the cancellation flag and the (fault-skewable) clock offset are
    global to the whole query, so a degradation ladder cannot reset them by
    creating a child context.
    """

    __slots__ = ("steps", "cancelled", "clock_offset")

    def __init__(self) -> None:
        self.steps = 0
        self.cancelled = False
        self.clock_offset = 0.0


class Context:
    """A budget in flight: accounting state + the checkpoint entry point.

    Code under the governor receives a context through an optional ``ctx``
    keyword; ``ctx=None`` (the default everywhere) keeps the ungoverned hot
    paths entirely free of overhead.
    """

    __slots__ = ("budget", "stats", "faults", "_clock", "_shared",
                 "_deadline", "_max_steps", "_bytes", "_results", "_parent")

    def __init__(self, budget: Budget | None = None, *,
                 clock: Callable[[], float] = time.monotonic,
                 faults=None, stats: ExecStats | None = None) -> None:
        self.budget = budget if budget is not None else Budget()
        self.stats = stats if stats is not None else ExecStats()
        self.faults = faults
        self._clock = clock
        self._shared = _Shared()
        self._bytes = 0
        self._results = 0
        self._parent: Context | None = None
        self._deadline = (None if self.budget.deadline is None
                          else self.now() + self.budget.deadline)
        self._max_steps = (None if self.budget.max_steps is None
                           else self._shared.steps + self.budget.max_steps)

    # -- clock ---------------------------------------------------------------

    def now(self) -> float:
        """Current monotonic time, including any injected clock skew."""
        return self._clock() + self._shared.clock_offset

    def skew_clock(self, seconds: float) -> None:
        """Advance the virtual clock (fault injection: deterministic
        deadline expiry without real sleeping)."""
        self._shared.clock_offset += seconds

    def time_left(self) -> float | None:
        """Seconds until the deadline, or ``None`` when unbounded."""
        if self._deadline is None:
            return None
        return self._deadline - self.now()

    def steps_left(self) -> int | None:
        if self._max_steps is None:
            return None
        return self._max_steps - self._shared.steps

    # -- cancellation --------------------------------------------------------

    def cancel(self) -> None:
        """Request cooperative cancellation; the next checkpoint (of this
        context or any relative) raises :class:`Cancelled`."""
        self._shared.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._shared.cancelled

    # -- the checkpoint protocol ---------------------------------------------

    def checkpoint(self, site: str, steps: int = 1) -> None:
        """One governed unit of work at ``site``, charging ``steps`` steps.

        Order matters: the site counter bumps *first* (so coverage counters
        see aborted loops), then injected faults fire, then cancellation,
        then step / deadline limits.

        ``steps`` lets block-granular callers (the vectorized RPQ kernel,
        which does a whole frontier sweep per numpy call) keep step
        accounting equivalent to the scalar per-element loops: one
        checkpoint *call* per block, with the block's element count charged
        in bulk against ``max_steps``.
        """
        stats = self.stats
        stats.checkpoints[site] = stats.checkpoints.get(site, 0) + 1
        shared = self._shared
        shared.steps += steps
        if self.faults is not None:
            self.faults.on_checkpoint(self, site)
        if shared.cancelled:
            raise Cancelled(site)
        if self._max_steps is not None and shared.steps > self._max_steps:
            raise BudgetExceeded("steps", self.budget.max_steps,
                                 shared.steps, site)
        if self._deadline is not None:
            now = self.now()
            if now > self._deadline:
                # ``spent`` reports the overshoot past the (absolute) deadline.
                raise BudgetExceeded("deadline", self.budget.deadline,
                                     f"+{now - self._deadline:.6f}s", site)

    def note_frontier(self, size: int, site: str) -> None:
        """Record a live-state / frontier size; enforce ``max_frontier``."""
        if size > self.stats.peak_frontier:
            self.stats.peak_frontier = size
        limit = self.budget.max_frontier
        if limit is not None and size > limit:
            raise BudgetExceeded("frontier", limit, size, site)

    def charge_bytes(self, amount: int, site: str) -> None:
        """Charge an (approximate) allocation; enforce ``max_bytes``."""
        if self.faults is not None:
            amount = self.faults.on_allocation(amount)
        self._bytes += amount
        if self._bytes > self.stats.peak_bytes:
            self.stats.peak_bytes = self._bytes
        limit = self.budget.max_bytes
        if limit is not None and self._bytes > limit:
            raise BudgetExceeded("bytes", limit, self._bytes, site)

    def release_bytes(self, amount: int) -> None:
        """Return previously charged bytes (a pool or DP layer was freed)."""
        self._bytes = max(0, self._bytes - amount)

    def tick_results(self, site: str, n: int = 1) -> None:
        """Count emitted answers; enforce ``max_results``."""
        self._results += n
        self.stats.results += n
        limit = self.budget.max_results
        if limit is not None and self._results > limit:
            raise BudgetExceeded("results", limit, self._results, site)

    # -- sub-budgets ----------------------------------------------------------

    def fraction(self, share: float) -> "Context":
        """A child context owning ``share`` of the remaining time and steps.

        The child shares this context's stats, cancellation flag, step
        counter, clock (including injected skew) and fault injector; only
        its deadline and step ceiling are tightened.  Used by the
        degradation ladder to give each rung a bounded slice while the
        whole query stays under the original budget.

        Both slices are floored — at least 1 step and at least
        :data:`MIN_FRACTION_SECONDS` of deadline — so a rung spawned from a
        nearly (or fully) exhausted parent can still do a minimal unit of
        work instead of raising :class:`~repro.errors.BudgetExceeded` at
        its first checkpoint.  The ladder may therefore overshoot the
        global deadline by at most epsilon per rung, which is the price of
        guaranteeing every rung gets to run.
        """
        if not 0.0 < share <= 1.0:
            raise ValueError("share must be in (0, 1]")
        child = object.__new__(Context)
        child.budget = self.budget
        child.stats = self.stats
        child.faults = self.faults
        child._clock = self._clock
        child._shared = self._shared
        child._bytes = 0
        child._results = 0
        child._parent = self
        left = self.time_left()
        child._deadline = (self._deadline if left is None
                           else self.now() + max(left * share,
                                                 MIN_FRACTION_SECONDS))
        steps_left = self.steps_left()
        child._max_steps = (self._max_steps if steps_left is None
                            else self._shared.steps + max(1, int(steps_left * share)))
        return child

    def record_degradation(self, event: DegradationEvent) -> None:
        self.stats.degradations.append(event)
