"""Unweighted shortest paths: BFS distances, counts, diameter.

The paper (Section 4.2) notes that classical betweenness centrality is
efficient because "given a labeled graph, a pair of nodes a, b and a length
k, count the number of paths of length k from a to b" is easy *without*
regular expressions; :func:`count_shortest_paths` is that easy counting
problem, solved by the standard BFS dynamic program (as in Brandes).
"""

from __future__ import annotations

from collections import deque


def bfs_distances(graph, source, *, directed: bool = True) -> dict:
    """Shortest-path distances from ``source`` to every reachable node."""
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        next_nodes = set(graph.successors(node))
        if not directed:
            next_nodes.update(graph.predecessors(node))
        for neighbor in next_nodes:
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def count_shortest_paths(graph, source, *, directed: bool = True) -> tuple[dict, dict]:
    """BFS from ``source`` returning (distances, number of shortest paths).

    Shortest paths in an unlabeled graph are simple, so the BFS DAG counting
    sigma[v] = sum of sigma over predecessors at distance d-1 is exact.
    """
    distances = {source: 0}
    sigma = {source: 1}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        next_nodes = list(graph.successors(node))
        if not directed:
            next_nodes.extend(graph.predecessors(node))
        for neighbor in next_nodes:
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                sigma[neighbor] = 0
                queue.append(neighbor)
            if distances[neighbor] == distances[node] + 1:
                sigma[neighbor] += sigma[node]
    return distances, sigma


def all_pairs_shortest_lengths(graph, *, directed: bool = True) -> dict:
    """dict of dicts with d(u, v) for every reachable pair (BFS per source)."""
    return {node: bfs_distances(graph, node, directed=directed)
            for node in graph.nodes()}


def diameter(graph, *, directed: bool = False) -> int:
    """Longest shortest-path distance over reachable pairs; 0 for empty graphs."""
    best = 0
    for node in graph.nodes():
        distances = bfs_distances(graph, node, directed=directed)
        if distances:
            best = max(best, max(distances.values()))
    return best
