"""Counting fixed-length walks — the easy counting problem of Section 4.2.

The paper contrasts two counting problems: counting paths of length k
between two nodes in a plain graph is efficient (this module: a textbook
dynamic program, polynomial time), whereas the same problem constrained by
a regular expression is SpanL-complete (handled by
:mod:`repro.core.rpq.count` and approximated by the FPRAS).  Having both in
the library makes the tractability boundary the paper draws directly
observable in experiment B1.
"""

from __future__ import annotations


def count_walks(graph, source, k: int, *, directed: bool = True) -> dict:
    """Number of length-k walks from ``source`` to every node.

    Walks may repeat nodes and edges; parallel edges count with
    multiplicity.  Runs in O(k * |E|).
    """
    if k < 0:
        raise ValueError("walk length must be non-negative")
    counts = {source: 1}
    for _ in range(k):
        following: dict = {}
        for node, count in counts.items():
            for successor in graph.successors(node):
                following[successor] = following.get(successor, 0) + count
            if not directed:
                for predecessor in graph.predecessors(node):
                    following[predecessor] = following.get(predecessor, 0) + count
        counts = following
    return counts


def count_walks_between(graph, source, target, k: int, *,
                        directed: bool = True) -> int:
    """Number of length-k walks from ``source`` to ``target``."""
    return count_walks(graph, source, k, directed=directed).get(target, 0)
