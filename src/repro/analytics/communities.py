"""Community detection by asynchronous label propagation.

A light-weight representative of the community-detection family the paper
cites (finding "groups with a rich interaction in a network").
"""

from __future__ import annotations

import random
from collections import Counter

from repro.util.rng import make_rng


def label_propagation(graph, max_iterations: int = 100,
                      rng: int | random.Random | None = None) -> list[set]:
    """Partition nodes into communities, largest first.

    Asynchronous label propagation on the undirected projection: each node
    repeatedly adopts the most frequent label among its neighbors (ties
    broken randomly) until labels are stable.
    """
    rng = make_rng(rng)
    labels = {node: node for node in graph.nodes()}
    nodes = sorted(graph.nodes(), key=str)
    for _ in range(max_iterations):
        rng.shuffle(nodes)
        changed = False
        for node in nodes:
            neighbors = graph.neighbors(node)
            neighbors.discard(node)
            if not neighbors:
                continue
            counts = Counter(labels[neighbor] for neighbor in neighbors)
            best = max(counts.values())
            candidates = sorted((label for label, c in counts.items() if c == best),
                                key=str)
            choice = rng.choice(candidates)
            if labels[node] != choice:
                labels[node] = choice
                changed = True
        if not changed:
            break
    communities: dict = {}
    for node, label in labels.items():
        communities.setdefault(label, set()).add(node)
    return sorted(communities.values(), key=len, reverse=True)
