"""PageRank (Brin & Page), power iteration with dangling-node handling."""

from __future__ import annotations


def pagerank(graph, damping: float = 0.85, max_iterations: int = 100,
             tolerance: float = 1e-10, *, ctx=None, pool=None) -> dict:
    """PageRank scores summing to 1.0.

    Parallel edges contribute multiplicity to the transition probabilities,
    matching the multigraph models of the paper.  Dangling nodes distribute
    their mass uniformly.  Under an execution context the power iteration
    checkpoints once per sweep (site ``pagerank.iteration``).

    With a :class:`~repro.exec.parallel.WorkerPool` bound to this graph,
    each power-iteration sweep is sharded over contiguous ranges of the
    sorted node list and the partial incoming-mass vectors are merged in
    shard order; the result matches the serial iteration up to float
    re-association (DESIGN.md §4e), so compare with a tolerance, not
    ``==``.
    """
    if not 0 <= damping < 1:
        raise ValueError("damping must be in [0, 1)")
    if pool is not None and graph is not pool.graph:
        raise ValueError("this pool is bound to a different graph object")
    nodes = sorted(graph.nodes(), key=str)
    n = len(nodes)
    if n == 0:
        return {}
    rank = {node: 1.0 / n for node in nodes}
    out_degree = {node: graph.out_degree(node) for node in nodes}
    for _ in range(max_iterations):
        if ctx is not None:
            ctx.checkpoint("pagerank.iteration")
        if pool is None:
            dangling_mass = sum(rank[node] for node in nodes
                                if out_degree[node] == 0)
            incoming = {node: 0.0 for node in nodes}
            for node in nodes:
                if out_degree[node] == 0:
                    continue
                share = rank[node] / out_degree[node]
                for successor in graph.successors(node):
                    incoming[successor] += share
        else:
            from repro.exec.parallel import partition_ranges

            tasks = [("analytics.pagerank_sweep", {"range": shard, "rank": rank})
                     for shard in partition_ranges(n, pool.n_shards)]
            incoming = {node: 0.0 for node in nodes}
            dangling_mass = 0.0
            for shard_incoming, shard_dangling in pool.run_tasks(tasks, ctx=ctx):
                for node, mass in shard_incoming.items():
                    incoming[node] += mass
                dangling_mass += shard_dangling
        updated = {}
        base = (1.0 - damping) / n + damping * dangling_mass / n
        for node in nodes:
            updated[node] = base + damping * incoming[node]
        delta = sum(abs(updated[node] - rank[node]) for node in nodes)
        rank = updated
        if delta < tolerance:
            break
    return rank
