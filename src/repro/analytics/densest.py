"""Densest subgraph discovery (Goldberg's problem, cited as [30, 45]).

Density of a node set S is |E(S)| / |S| with E(S) the edges having both
endpoints in S (direction ignored, parallel edges counted).  Two solvers:

- :func:`charikar_peel` — the classic greedy 2-approximation: repeatedly
  remove the minimum-degree node, keep the densest prefix.
- :func:`densest_subgraph_exact` — Goldberg's binary search over candidate
  densities, each step decided by a max-flow computed with a from-scratch
  Dinic implementation.  Exact on small/medium graphs.
"""

from __future__ import annotations

import heapq
from collections import Counter, deque
from fractions import Fraction


def subgraph_density(graph, nodes: set) -> float:
    """|E(S)| / |S| for a node set S (0.0 for the empty set)."""
    if not nodes:
        return 0.0
    return float(subgraph_density_exact(graph, nodes))


def subgraph_density_exact(graph, nodes: set) -> Fraction:
    """Exact rational density |E(S)| / |S|."""
    if not nodes:
        return Fraction(0)
    edges = sum(1 for e in graph.edges()
                if graph.source(e) in nodes and graph.target(e) in nodes)
    return Fraction(edges, len(nodes))


def _undirected_adjacency(graph) -> dict:
    """node -> Counter(neighbor -> multiplicity), self-loops under the node."""
    adjacency: dict = {node: Counter() for node in graph.nodes()}
    for edge in graph.edges():
        u, v = graph.endpoints(edge)
        if u == v:
            adjacency[u][u] += 1
        else:
            adjacency[u][v] += 1
            adjacency[v][u] += 1
    return adjacency


def charikar_peel(graph) -> set:
    """Greedy peeling; returns a node set with density >= optimum / 2."""
    nodes = set(graph.nodes())
    if not nodes:
        return set()
    adjacency = _undirected_adjacency(graph)
    degree = {node: sum(adjacency[node].values()) + adjacency[node][node]
              for node in nodes}
    # degree counts self-loops twice so peeling order matches edge removal.

    heap = [(degree[node], str(node), node) for node in nodes]
    heapq.heapify(heap)
    removed: set = set()
    removal_order: list = []
    current_edges = graph.edge_count()
    current_size = len(nodes)
    best_density = Fraction(current_edges, current_size)
    best_prefix = 0
    while current_size > 1:
        while True:
            d, _, node = heapq.heappop(heap)
            if node not in removed and d == degree[node]:
                break
        removed.add(node)
        removal_order.append(node)
        current_edges -= adjacency[node][node]
        for neighbor, multiplicity in adjacency[node].items():
            if neighbor == node or neighbor in removed:
                continue
            current_edges -= multiplicity
            degree[neighbor] -= multiplicity
            heapq.heappush(heap, (degree[neighbor], str(neighbor), neighbor))
        current_size -= 1
        density = Fraction(current_edges, current_size)
        if density > best_density:
            best_density = density
            best_prefix = len(removal_order)
    return nodes - set(removal_order[:best_prefix])


def densest_subgraph_exact(graph) -> set:
    """Exact densest subgraph via Goldberg's max-flow binary search."""
    nodes = sorted(graph.nodes(), key=str)
    n = len(nodes)
    if n == 0:
        return set()
    m = graph.edge_count()
    if m == 0:
        return {nodes[0]}

    weight: dict = {}
    degree = {node: 0 for node in nodes}
    for edge in graph.edges():
        u, v = graph.endpoints(edge)
        degree[u] += 1
        degree[v] += 1
        if u != v:
            key = (u, v) if str(u) <= str(v) else (v, u)
            weight[key] = weight.get(key, 0) + 1

    best_set = set(nodes)
    best_density = subgraph_density_exact(graph, best_set)
    low = best_density
    high = Fraction(m, 1)
    # Densities are rationals with denominator <= n; once the interval is
    # narrower than 1/n^2 no two distinct achievable densities fit inside.
    resolution = Fraction(1, n * n)
    while high - low > resolution:
        g = (low + high) / 2
        candidate = _denser_than(nodes, weight, degree, m, g)
        if candidate:
            density = subgraph_density_exact(graph, candidate)
            if density > best_density:
                best_density = density
                best_set = candidate
            low = g
        else:
            high = g
    return best_set


def _denser_than(nodes, weight, degree, m, g: Fraction):
    """Return a node set with density > g, or None (Goldberg's flow check).

    Goldberg's network, with all capacities scaled by g's denominator q so
    they are integers: source -> u with m*q; u -> sink with
    m*q + 2p - deg(u)*q (p = g's numerator); each undirected pair with its
    multiplicity*q in both directions.  A min cut below m*n*q certifies a
    subgraph denser than g, read off the source side of the cut.
    """
    p, q = g.numerator, g.denominator
    network = _Dinic()
    source = network.add_node()
    sink = network.add_node()
    ids = {node: network.add_node() for node in nodes}
    for node in nodes:
        network.add_arc(source, ids[node], m * q)
        network.add_arc(ids[node], sink, max(m * q + 2 * p - degree[node] * q, 0))
    for (u, v), multiplicity in weight.items():
        network.add_arc(ids[u], ids[v], multiplicity * q)
        network.add_arc(ids[v], ids[u], multiplicity * q)
    total = network.max_flow(source, sink)
    if total >= m * len(nodes) * q:
        return None
    reachable = network.residual_reachable(source)
    candidate = {node for node in nodes if ids[node] in reachable}
    return candidate or None


class _Dinic:
    """Dinic's max-flow on integer capacities (paired-arc residual graph)."""

    def __init__(self) -> None:
        self.adjacency: list[list[int]] = []
        self.to: list[int] = []
        self.capacity: list[int] = []

    def add_node(self) -> int:
        self.adjacency.append([])
        return len(self.adjacency) - 1

    def add_arc(self, u: int, v: int, capacity: int) -> None:
        self.adjacency[u].append(len(self.to))
        self.to.append(v)
        self.capacity.append(capacity)
        self.adjacency[v].append(len(self.to))
        self.to.append(u)
        self.capacity.append(0)

    def max_flow(self, source: int, sink: int) -> int:
        flow = 0
        while True:
            level = self._bfs_levels(source, sink)
            if level is None:
                return flow
            iterators = [0] * len(self.adjacency)
            while True:
                pushed = self._dfs_push(source, sink, None, level, iterators)
                if not pushed:
                    break
                flow += pushed

    def _bfs_levels(self, source: int, sink: int):
        level = [-1] * len(self.adjacency)
        level[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for arc in self.adjacency[node]:
                if self.capacity[arc] > 0 and level[self.to[arc]] < 0:
                    level[self.to[arc]] = level[node] + 1
                    queue.append(self.to[arc])
        return level if level[sink] >= 0 else None

    def _dfs_push(self, node: int, sink: int, limit, level, iterators) -> int:
        if node == sink:
            return limit if limit is not None else 0
        while iterators[node] < len(self.adjacency[node]):
            arc = self.adjacency[node][iterators[node]]
            target = self.to[arc]
            if self.capacity[arc] > 0 and level[target] == level[node] + 1:
                available = self.capacity[arc] if limit is None else min(limit, self.capacity[arc])
                pushed = self._dfs_push(target, sink, available, level, iterators)
                if pushed:
                    self.capacity[arc] -= pushed
                    self.capacity[arc ^ 1] += pushed
                    return pushed
            iterators[node] += 1
        return 0

    def residual_reachable(self, source: int) -> set[int]:
        seen = {source}
        stack = [source]
        while stack:
            node = stack.pop()
            for arc in self.adjacency[node]:
                target = self.to[arc]
                if self.capacity[arc] > 0 and target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen
