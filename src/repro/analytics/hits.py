"""HITS hubs-and-authorities (Kleinberg), cited by the paper for community
interaction analysis."""

from __future__ import annotations

import math


def hits(graph, max_iterations: int = 100,
         tolerance: float = 1e-10, *, ctx=None) -> tuple[dict, dict]:
    """Return (hub, authority) scores, each L2-normalized.

    Parallel edges count with multiplicity.  Under an execution context the
    mutual-recursion loop checkpoints once per sweep (site
    ``hits.iteration``).
    """
    nodes = sorted(graph.nodes(), key=str)
    if not nodes:
        return {}, {}
    hub = {node: 1.0 for node in nodes}
    authority = {node: 1.0 for node in nodes}
    for _ in range(max_iterations):
        if ctx is not None:
            ctx.checkpoint("hits.iteration")
        new_authority = {node: 0.0 for node in nodes}
        for node in nodes:
            for successor in graph.successors(node):
                new_authority[successor] += hub[node]
        _normalize(new_authority)
        new_hub = {node: 0.0 for node in nodes}
        for node in nodes:
            for successor in graph.successors(node):
                new_hub[node] += new_authority[successor]
        _normalize(new_hub)
        delta = sum(abs(new_hub[n] - hub[n]) for n in nodes)
        delta += sum(abs(new_authority[n] - authority[n]) for n in nodes)
        hub, authority = new_hub, new_authority
        if delta < tolerance:
            break
    return hub, authority


def _normalize(scores: dict) -> None:
    norm = math.sqrt(sum(value * value for value in scores.values()))
    if norm > 0:
        for key in scores:
            scores[key] /= norm
