"""HITS hubs-and-authorities (Kleinberg), cited by the paper for community
interaction analysis."""

from __future__ import annotations

import math


def hits(graph, max_iterations: int = 100,
         tolerance: float = 1e-10, *, ctx=None, pool=None) -> tuple[dict, dict]:
    """Return (hub, authority) scores, each L2-normalized.

    Parallel edges count with multiplicity.  Under an execution context the
    mutual-recursion loop checkpoints once per sweep (site
    ``hits.iteration``).

    With a :class:`~repro.exec.parallel.WorkerPool` bound to this graph,
    each of the two per-iteration sweeps is sharded over contiguous ranges
    of the sorted node list (two worker round-trips per iteration: the hub
    sweep needs the *merged* authority vector).  Authority partials merge
    in shard order; hub shards are disjoint by node, so their merge is a
    dict union.  Matches the serial iteration up to float re-association
    (DESIGN.md §4e).
    """
    if pool is not None and graph is not pool.graph:
        raise ValueError("this pool is bound to a different graph object")
    nodes = sorted(graph.nodes(), key=str)
    if not nodes:
        return {}, {}
    if pool is not None:
        from repro.exec.parallel import partition_ranges

        shards = partition_ranges(len(nodes), pool.n_shards)
    hub = {node: 1.0 for node in nodes}
    authority = {node: 1.0 for node in nodes}
    for _ in range(max_iterations):
        if ctx is not None:
            ctx.checkpoint("hits.iteration")
        if pool is None:
            new_authority = {node: 0.0 for node in nodes}
            for node in nodes:
                for successor in graph.successors(node):
                    new_authority[successor] += hub[node]
            _normalize(new_authority)
            new_hub = {node: 0.0 for node in nodes}
            for node in nodes:
                for successor in graph.successors(node):
                    new_hub[node] += new_authority[successor]
            _normalize(new_hub)
        else:
            new_authority = {node: 0.0 for node in nodes}
            tasks = [("analytics.hits_authority_sweep",
                      {"range": shard, "hub": hub}) for shard in shards]
            for contributions in pool.run_tasks(tasks, ctx=ctx):
                for node, value in contributions.items():
                    new_authority[node] += value
            _normalize(new_authority)
            tasks = [("analytics.hits_hub_sweep",
                      {"range": shard, "authority": new_authority})
                     for shard in shards]
            new_hub = {node: 0.0 for node in nodes}
            for hubs in pool.run_tasks(tasks, ctx=ctx):
                new_hub.update(hubs)
            _normalize(new_hub)
        delta = sum(abs(new_hub[n] - hub[n]) for n in nodes)
        delta += sum(abs(new_authority[n] - authority[n]) for n in nodes)
        hub, authority = new_hub, new_authority
        if delta < tolerance:
            break
    return hub, authority


def _normalize(scores: dict) -> None:
    norm = math.sqrt(sum(value * value for value in scores.values()))
    if norm > 0:
        for key in scores:
            scores[key] /= norm
