"""Clustering coefficients on the undirected simple projection of a graph."""

from __future__ import annotations


def _undirected_neighbors(graph, node) -> set:
    neighbors = graph.neighbors(node)
    neighbors.discard(node)
    return neighbors


def local_clustering(graph, node) -> float:
    """Fraction of a node's neighbor pairs that are themselves adjacent.

    Computed on the undirected simple projection (direction and parallel
    edges ignored); 0.0 for degree < 2.
    """
    neighbors = _undirected_neighbors(graph, node)
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    neighbor_list = sorted(neighbors, key=str)
    for i, u in enumerate(neighbor_list):
        adjacent = _undirected_neighbors(graph, u)
        for v in neighbor_list[i + 1:]:
            if v in adjacent:
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph) -> float:
    """Mean local clustering coefficient over all nodes; 0.0 for empty graphs."""
    nodes = list(graph.nodes())
    if not nodes:
        return 0.0
    return sum(local_clustering(graph, node) for node in nodes) / len(nodes)


def global_clustering(graph) -> float:
    """Transitivity: 3 * triangles / connected triples, on the projection."""
    triangles = 0
    triples = 0
    for node in graph.nodes():
        neighbors = sorted(_undirected_neighbors(graph, node), key=str)
        k = len(neighbors)
        triples += k * (k - 1) // 2
        for i, u in enumerate(neighbors):
            adjacent = _undirected_neighbors(graph, u)
            for v in neighbors[i + 1:]:
                if v in adjacent:
                    triangles += 1
    if triples == 0:
        return 0.0
    # Each triangle is counted once per corner, i.e. three times.
    return triangles / triples
