"""Graph analytics: the "global properties" toolbox of Section 4.2.

The paper lists the typical applications — clustering, connected components
and diameter, shortest paths, centrality measures such as betweenness and
PageRank, and community detection such as densest-subgraph discovery.  Each
lives in its own module here, implemented from scratch over the
:class:`repro.models.MultiGraph` family.
"""

from repro.analytics.components import (
    connected_components,
    is_connected,
    strongly_connected_components,
)
from repro.analytics.shortest_paths import (
    all_pairs_shortest_lengths,
    bfs_distances,
    count_shortest_paths,
    diameter,
)
from repro.analytics.pagerank import pagerank
from repro.analytics.hits import hits
from repro.analytics.clustering import (
    average_clustering,
    global_clustering,
    local_clustering,
)
from repro.analytics.communities import label_propagation
from repro.analytics.densest import (
    charikar_peel,
    densest_subgraph_exact,
    subgraph_density,
)
from repro.analytics.walks import count_walks, count_walks_between

__all__ = [
    "connected_components", "strongly_connected_components", "is_connected",
    "bfs_distances", "all_pairs_shortest_lengths", "count_shortest_paths",
    "diameter",
    "pagerank", "hits",
    "local_clustering", "average_clustering", "global_clustering",
    "label_propagation",
    "subgraph_density", "charikar_peel", "densest_subgraph_exact",
    "count_walks", "count_walks_between",
]
