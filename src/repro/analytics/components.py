"""Connected components (weak and strong)."""

from __future__ import annotations


def connected_components(graph) -> list[set]:
    """Weakly connected components (edge direction ignored), largest first."""
    remaining = set(graph.nodes())
    components: list[set] = []
    while remaining:
        seed = next(iter(remaining))
        seen = {seed}
        stack = [seed]
        while stack:
            node = stack.pop()
            for neighbor in graph.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        components.append(seen)
        remaining -= seen
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph) -> bool:
    """Is the graph weakly connected (vacuously true when empty)?"""
    if graph.node_count() == 0:
        return True
    return len(connected_components(graph)) == 1


def strongly_connected_components(graph) -> list[set]:
    """Strongly connected components by Tarjan's algorithm (iterative).

    Returned largest first; singleton components included.
    """
    index_counter = 0
    indices: dict = {}
    lowlinks: dict = {}
    on_stack: set = set()
    stack: list = []
    components: list[set] = []

    for root in graph.nodes():
        if root in indices:
            continue
        # Iterative Tarjan: work items are (node, iterator over successors).
        work = [(root, iter(sorted(set(graph.successors(root)), key=str)))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in indices:
                    indices[successor] = lowlinks[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor,
                                 iter(sorted(set(graph.successors(successor)), key=str))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    components.sort(key=len, reverse=True)
    return components
