"""Label footprints: which mutations can change a query's answer.

A :class:`Footprint` is a sound over-approximation of everything a query
*reads* from a graph, at the same granularity the mutation log records
writes (:mod:`repro.cache.versioning`): edge labels, node labels, property
names, feature indices, plus ``all_*`` escape hatches for queries whose
dependence cannot be bounded by a finite label set (wildcards, negations,
nullable expressions whose answer contains ``(n, n)`` for every node).

Soundness contract — the property the footprint test suite pins per AST
node: if ``not footprint.intersects(record)`` for every mutation record
between two versions, the query's answer is identical at both versions.
The converse need not hold; an intersecting mutation is merely *allowed*
to change the answer, and the cache then re-evaluates.

The visitors live here rather than on the AST classes so the cache layer
stays a leaf: model modules import :mod:`repro.cache.versioning`, and this
module imports the query ASTs lazily inside the visitor functions, so no
import cycle can form through the package ``__init__``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.versioning import MutationRecord


@dataclass(frozen=True)
class Footprint:
    """The set of graph aspects a query depends on."""

    edge_labels: frozenset = frozenset()
    node_labels: frozenset = frozenset()
    properties: frozenset = frozenset()
    features: frozenset = frozenset()
    all_edges: bool = False
    all_nodes: bool = False
    all_properties: bool = False
    all_features: bool = False

    def __or__(self, other: "Footprint") -> "Footprint":
        return Footprint(
            edge_labels=self.edge_labels | other.edge_labels,
            node_labels=self.node_labels | other.node_labels,
            properties=self.properties | other.properties,
            features=self.features | other.features,
            all_edges=self.all_edges or other.all_edges,
            all_nodes=self.all_nodes or other.all_nodes,
            all_properties=self.all_properties or other.all_properties,
            all_features=self.all_features or other.all_features,
        )

    def intersects(self, record: "MutationRecord") -> bool:
        """Could a mutation with this record change the query's answer?

        ``all_edges`` / ``all_nodes`` depend on the element *sets* and their
        labels (wildcards and negations read every element), so they fire on
        structural changes and on any relabel — but deliberately not on pure
        property/feature writes, which leave the element sets untouched.
        """
        if self.all_edges and (record.structural_edges or record.edge_labels):
            return True
        if self.all_nodes and (record.structural_nodes or record.node_labels):
            return True
        if self.all_properties and record.properties:
            return True
        if self.all_features and record.features:
            return True
        if not self.edge_labels.isdisjoint(record.edge_labels):
            return True
        if not self.node_labels.isdisjoint(record.node_labels):
            return True
        if not self.properties.isdisjoint(record.properties):
            return True
        if not self.features.isdisjoint(record.features):
            return True
        return False

    def to_dict(self) -> dict:
        """JSON-friendly form for EXPLAIN output (sorted, deterministic)."""
        return {
            "edge_labels": sorted(map(str, self.edge_labels)),
            "node_labels": sorted(map(str, self.node_labels)),
            "properties": sorted(map(str, self.properties)),
            "features": sorted(self.features),
            "all_edges": self.all_edges,
            "all_nodes": self.all_nodes,
            "all_properties": self.all_properties,
            "all_features": self.all_features,
        }

    @classmethod
    def everything(cls) -> "Footprint":
        """The footprint that intersects every mutation (never-valid cache)."""
        return cls(all_edges=True, all_nodes=True,
                   all_properties=True, all_features=True)


EMPTY = Footprint()


# ---------------------------------------------------------------------------
# RPQ regexes
# ---------------------------------------------------------------------------


def test_footprint(test, position: str) -> Footprint:
    """Footprint of a :class:`~repro.core.rpq.ast.Test` applied to nodes
    (``position="node"``) or edges (``position="edge"``).

    A negation reads the *whole* population of its position: ``!l`` matches
    every edge except ``l``-labeled ones, so adding any edge at all can grow
    the answer.  Conjunction and disjunction both take the union of their
    children — for AND this is coarser than necessary but sound (a superset
    of reads never misses an invalidation).
    """
    from repro.core.rpq import ast

    if isinstance(test, ast.LabelTest):
        if position == "edge":
            return Footprint(edge_labels=frozenset((test.label,)))
        return Footprint(node_labels=frozenset((test.label,)))
    if isinstance(test, ast.PropertyTest):
        return Footprint(properties=frozenset((test.prop,)))
    if isinstance(test, ast.FeatureTest):
        return Footprint(features=frozenset((test.index,)))
    if isinstance(test, ast.TrueTest):
        return (Footprint(all_edges=True) if position == "edge"
                else Footprint(all_nodes=True))
    if isinstance(test, ast.FalseTest):
        return EMPTY
    if isinstance(test, ast.NotTest):
        base = (Footprint(all_edges=True) if position == "edge"
                else Footprint(all_nodes=True))
        return base | test_footprint(test.inner, position)
    if isinstance(test, (ast.AndTest, ast.OrTest)):
        return (test_footprint(test.left, position)
                | test_footprint(test.right, position))
    raise TypeError(f"unknown test node {type(test).__name__}")


def _nullable(regex) -> bool:
    """Does the regex match some length-0 path?  (``r*`` always does; a node
    test does too, but only at nodes passing the test, which the test's own
    footprint already covers — so only Star forces the all-nodes term.)"""
    from repro.core.rpq import ast

    if isinstance(regex, ast.Star):
        return True
    if isinstance(regex, ast.NodeTest):
        return False
    if isinstance(regex, ast.EdgeAtom):
        return False
    if isinstance(regex, ast.Union):
        return _nullable(regex.left) or _nullable(regex.right)
    if isinstance(regex, ast.Concat):
        return _nullable(regex.left) and _nullable(regex.right)
    raise TypeError(f"unknown regex node {type(regex).__name__}")


def label_footprint(regex) -> Footprint:
    """Footprint of an RPQ regex (the visitor named in the design docs).

    Structurally: atoms contribute their test's footprint in the matching
    position; the combinators take unions.  On top of that, a *nullable*
    regex (one matching the empty path unconditionally, i.e. containing a
    top-level ``r*`` component) answers ``(n, n)`` for **every** node, so
    adding or removing any node changes its endpoint relation — hence the
    ``all_nodes`` term.
    """
    from repro.core.rpq import ast

    def visit(node) -> Footprint:
        if isinstance(node, ast.NodeTest):
            return test_footprint(node.test, "node")
        if isinstance(node, ast.EdgeAtom):
            # Direction is irrelevant to invalidation: an inverse atom reads
            # the same edges, just traversed backwards.
            return test_footprint(node.test, "edge")
        if isinstance(node, (ast.Union, ast.Concat)):
            return visit(node.left) | visit(node.right)
        if isinstance(node, ast.Star):
            return visit(node.inner)
        raise TypeError(f"unknown regex node {type(node).__name__}")

    footprint = visit(regex)
    if _nullable(regex):
        footprint = replace(footprint, all_nodes=True)
    return footprint


# ---------------------------------------------------------------------------
# PathQL
# ---------------------------------------------------------------------------


def pathql_footprint(query) -> Footprint:
    """Footprint of a parsed :class:`~repro.query.pathql.PathQuery`.

    Everything a PathQL query reads flows through its regex; FROM/TO
    restrict to fixed node ids whose membership only changes through
    structural mutations, which the regex footprint's terms (or the
    all-nodes nullability term) already cover for any query whose answer
    those nodes can reach.  SHORTEST adds a length minimization over the
    same path set, introducing no new reads.
    """
    footprint = label_footprint(query.regex)
    if query.source is not None or query.target is not None:
        # A pinned endpoint makes the answer depend on that node existing
        # at all, which no label can witness: cover it structurally.
        footprint = replace(footprint, all_nodes=True)
    return footprint


# ---------------------------------------------------------------------------
# SPARQL
# ---------------------------------------------------------------------------


def _path_expr_footprint(path) -> Footprint:
    from repro.models.rdf import RDF_TYPE
    from repro.query import sparql as s

    if isinstance(path, s.PIri):
        if path.iri == RDF_TYPE:
            # rdf:type triples are how labeled-graph node labels surface in
            # RDF; with a variable/any object the dependence is on the whole
            # label map, i.e. every node.
            return Footprint(all_nodes=True)
        return Footprint(edge_labels=frozenset((path.iri,)))
    if isinstance(path, s.PVar):
        # A predicate variable ranges over every predicate, including
        # rdf:type: the query reads the full triple set.
        return Footprint.everything()
    if isinstance(path, s.PInverse):
        return _path_expr_footprint(path.inner)
    if isinstance(path, (s.PSequence, s.PAlternative)):
        return _path_expr_footprint(path.left) | _path_expr_footprint(path.right)
    if isinstance(path, s.PStar):
        # Zero-length paths relate every resource to itself.
        return replace(_path_expr_footprint(path.inner), all_nodes=True)
    if isinstance(path, s.PPlus):
        return _path_expr_footprint(path.inner)
    raise TypeError(f"unknown path expression {type(path).__name__}")


def _pattern_footprint(pattern) -> Footprint:
    from repro.models.rdf import RDF_TYPE
    from repro.query import sparql as s

    path = pattern.path
    if isinstance(path, s.PIri) and path.iri == RDF_TYPE and \
            not isinstance(pattern.object, s.Var):
        # ``?x rdf:type <l>`` reads exactly the ``l``-labeled node set.
        return Footprint(node_labels=frozenset((pattern.object.value,)))
    return _path_expr_footprint(path)


def sparql_footprint(query) -> Footprint:
    """Footprint of a parsed :class:`~repro.query.sparql.SelectQuery`.

    The union over every triple pattern in every UNION branch and OPTIONAL
    group.  FILTERs compare already-bound values and add no reads.
    """
    branches = query.union_branches or \
        ((query.patterns, query.filters, query.optionals),)
    footprint = EMPTY
    for patterns, _filters, optionals in branches:
        for pattern in patterns:
            footprint = footprint | _pattern_footprint(pattern)
        for group in optionals:
            for pattern in group.patterns:
                footprint = footprint | _pattern_footprint(pattern)
    return footprint


# ---------------------------------------------------------------------------
# Cypher
# ---------------------------------------------------------------------------


def cypher_footprint(query) -> Footprint:
    """Footprint of a parsed :class:`~repro.query.cypherish.CypherQuery`.

    Node patterns read a label bucket (or, unlabeled, the whole node set);
    relationship patterns a label bucket or the whole edge set; property
    maps, WHERE comparisons and RETURN projections read property names.
    """
    footprint = EMPTY
    for path in query.patterns:
        for node in path.nodes:
            if node.label is not None:
                footprint = footprint | Footprint(
                    node_labels=frozenset((node.label,)))
            else:
                footprint = footprint | Footprint(all_nodes=True)
            if node.properties:
                footprint = footprint | Footprint(
                    properties=frozenset(key for key, _ in node.properties))
        for rel in path.rels:
            if rel.label is not None:
                footprint = footprint | Footprint(
                    edge_labels=frozenset((rel.label,)))
            else:
                footprint = footprint | Footprint(all_edges=True)
    props: set = set()
    if query.where is not None:
        for clause in query.where.clauses:
            for condition in clause:
                for side in (condition.left, condition.right):
                    if side.prop is not None:
                        props.add(side.prop)
    for item in query.items:
        if item.expr.prop is not None:
            props.add(item.expr.prop)
    if props:
        footprint = footprint | Footprint(properties=frozenset(props))
    return footprint
