"""Query result caching with versioned, label-footprint invalidation.

Three pieces:

- :mod:`repro.cache.versioning` — the per-graph :class:`MutationLog` every
  model maintains (a monotonically increasing ``version`` plus bounded
  records of which labels/properties/features each mutation touched);
- :mod:`repro.cache.footprint` — :class:`Footprint` and the
  :func:`label_footprint` / :func:`sparql_footprint` /
  :func:`cypher_footprint` visitors computing what a query *reads*;
- :mod:`repro.cache.result_cache` — :class:`QueryCache`, the LRU memo
  serving a cached result iff no intersecting mutation occurred since it
  was stored.

The invalidation rule (sound, per the footprint test suite): a cached
answer survives a mutation exactly when the mutation's record is disjoint
from the query's footprint.  Everything else — re-evaluation, refresh,
metrics — follows from that single predicate.
"""

from repro.cache.footprint import (
    Footprint,
    cypher_footprint,
    label_footprint,
    pathql_footprint,
    sparql_footprint,
    test_footprint,
)
from repro.cache.result_cache import MISS, QueryCache
from repro.cache.versioning import MutationLog, MutationRecord

__all__ = [
    "Footprint",
    "MISS",
    "MutationLog",
    "MutationRecord",
    "QueryCache",
    "cypher_footprint",
    "label_footprint",
    "pathql_footprint",
    "sparql_footprint",
    "test_footprint",
]
