"""The query result cache: memoization with label-footprint invalidation.

A :class:`QueryCache` maps ``(graph identity, canonical query key)`` to a
previously computed result, remembering the graph version the result was
computed at and the query's :class:`~repro.cache.footprint.Footprint`.  On
lookup against a newer graph version, the entry is served only if no
mutation recorded since its version intersects its footprint (the sound
invalidation rule); otherwise it counts as *stale*, is evicted, and the
caller re-evaluates and refreshes.

Graphs are identified by identity, held through a weak reference so a cache
never keeps a dead graph's entries alive as false hits for a recycled
``id()``.  Any object carrying a ``mutation_log`` attribute (the
:class:`~repro.cache.versioning.MutationLog` protocol: the MultiGraph
family, :class:`~repro.models.rdf.RDFGraph`,
:class:`~repro.storage.triple_store.TripleStore`, and
:class:`~repro.storage.property_store.PropertyGraphStore` by delegation)
is cacheable; anything else is a permanent miss.

Thread/process notes: a cache is plain in-process state with no locks —
use one per worker (as :class:`~repro.exec.batch.BatchSession` does) rather
than sharing across threads.  Entries hold weakrefs, so caches are
deliberately not picklable; create them on the worker side of a fork.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass

from repro.cache.footprint import Footprint
from repro.util import canonical_sort_key

#: Sentinel distinguishing "no cached value" from a cached ``None``.
MISS = object()

DEFAULT_MAX_ENTRIES = 512


def nodes_key(nodes):
    """Canonical, hashable form of a start/end-node restriction.

    ``None`` (unrestricted) stays ``None``; any iterable becomes a sorted
    tuple, so ``{1, 2}``, ``[2, 1]`` and ``(1, 2)`` key identically.  The
    sort key is :func:`~repro.util.canonical_sort_key` — a bare ``repr``
    sort is not a total order over mixed-type ids, so ``{1, "1"}``-style
    restrictions would key by iteration order and split into duplicate
    entries.  The result is itself a valid ``start_nodes``/``end_nodes``
    argument.
    """
    if nodes is None:
        return None
    return tuple(sorted(nodes, key=canonical_sort_key))


@dataclass
class _Entry:
    ref: weakref.ref
    version: int
    footprint: Footprint
    value: object


class QueryCache:
    """LRU result cache keyed by (graph identity, canonical query form)."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES,
                 metrics=None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._stale = 0
        self._metrics = metrics

    def attach_metrics(self, metrics) -> None:
        """Mirror hit/miss/stale counts into an :class:`~repro.obs.Metrics`
        registry (counters ``cache.hits`` / ``cache.misses`` /
        ``cache.stale``) from now on."""
        self._metrics = metrics

    # -- core protocol -----------------------------------------------------

    def lookup(self, target, key):
        """Return the cached value for ``key`` on ``target``, or :data:`MISS`.

        A hit requires the stored entry to be provably current: either the
        target's version is unchanged, or every mutation since lies outside
        the entry's footprint (in which case the entry is re-stamped at the
        current version, so the next lookup is O(1) again).
        """
        log = getattr(target, "mutation_log", None)
        if log is None:
            return self._miss()
        full_key = (id(target), key)
        entry = self._entries.get(full_key)
        if entry is None or entry.ref() is not target:
            if entry is not None:  # id() reuse after gc: drop the corpse
                del self._entries[full_key]
            return self._miss()
        version = log.version
        if entry.version != version:
            if log.intersects_since(entry.version, entry.footprint):
                del self._entries[full_key]
                return self._stale_miss()
            entry.version = version
        self._entries.move_to_end(full_key)
        return self._hit(entry.value)

    def store(self, target, key, footprint: Footprint, value) -> None:
        """Remember ``value`` for ``key`` at the target's current version."""
        log = getattr(target, "mutation_log", None)
        if log is None:
            return
        full_key = (id(target), key)
        self._entries[full_key] = _Entry(
            ref=weakref.ref(target), version=log.version,
            footprint=footprint, value=value)
        self._entries.move_to_end(full_key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    # -- accounting --------------------------------------------------------

    def _hit(self, value):
        self._hits += 1
        if self._metrics is not None:
            self._metrics.counter("cache.hits").inc()
        return value

    def _miss(self):
        self._misses += 1
        if self._metrics is not None:
            self._metrics.counter("cache.misses").inc()
        return MISS

    def _stale_miss(self):
        self._stale += 1
        if self._metrics is not None:
            self._metrics.counter("cache.stale").inc()
        return self._miss()

    def stats(self) -> dict:
        """Counts for ``--cache-stats`` and the bench harness.  ``stale`` is
        a subset cause of ``misses`` (every stale lookup is also a miss)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "stale": self._stale,
            "entries": len(self._entries),
            "max_entries": self.max_entries,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"<QueryCache entries={len(self._entries)} "
                f"hits={self._hits} misses={self._misses} stale={self._stale}>")
