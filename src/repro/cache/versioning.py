"""Versioned mutation logs for the graph models.

Every mutable model (the :class:`~repro.models.multigraph.MultiGraph`
family, :class:`~repro.models.rdf.RDFGraph`, and the
:class:`~repro.storage.triple_store.TripleStore`) owns a
:class:`MutationLog`: a monotonically increasing ``version`` counter plus a
bounded record of *what kind of thing* each mutation touched — edge labels,
node labels, property names, feature indices, and whether the node/edge
*structure* changed at all.

Invalidation (:meth:`MutationLog.intersects_since`) is decided purely on
the label level, matching the theory: an RPQ's answer can only change when a
mutation touches a label in the expression's *label footprint* (see
:mod:`repro.cache.footprint`).  For label-based invalidation identities
would buy little extra precision — but they are exactly what *incremental*
maintenance and time travel need, so each record also carries a small
``payload`` tuple naming the mutated object (and, for destructive
mutations, enough of its old state to restore it).  Payload shapes are a
per-``kind`` convention owned by the model layer that wrote the record;
consumers (:mod:`repro.ivm`) treat records whose kind they do not know
conservatively.  Payloads stay O(mutated object), never O(graph).

A logical mutation may append more than one record — each layer of the model
hierarchy logs the part it owns (structure at the base, labels in
``LabeledGraph``, properties in ``PropertyGraph``, features in
``VectorGraph``) — so ``version`` advances at least once per mutation but is
not a mutation *count*.  Only monotonicity matters to consumers.

The log keeps at most ``capacity`` records.  Once truncation discards
history, questions about versions older than the retained window are
answered conservatively: :meth:`intersects_since` returns ``True`` ("assume
invalidated"), never a false "still valid".
"""

from __future__ import annotations

import os
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.cache.footprint import Footprint

#: Default number of retained mutation records per graph (used when neither
#: the constructor argument nor ``REPRO_LOG_HORIZON`` overrides it).
DEFAULT_LOG_CAPACITY = 1024

#: Environment variable overriding the default retained-record horizon.
LOG_HORIZON_ENV = "REPRO_LOG_HORIZON"


def default_log_capacity() -> int:
    """The capacity a :class:`MutationLog` gets when none is passed.

    ``REPRO_LOG_HORIZON`` (a positive integer) overrides the built-in
    :data:`DEFAULT_LOG_CAPACITY`, so long-running mutation-heavy processes
    can widen the invalidation window — or shrink it to stress the
    conservative-truncation path — without touching call sites.  A
    malformed value raises :class:`ValueError` rather than being silently
    ignored: a typo here would invisibly change cache behavior.
    """
    raw = os.environ.get(LOG_HORIZON_ENV)
    if raw is None or not raw.strip():
        return DEFAULT_LOG_CAPACITY
    try:
        capacity = int(raw)
    except ValueError:
        raise ValueError(
            f"{LOG_HORIZON_ENV} must be a positive integer, got {raw!r}"
        ) from None
    if capacity < 1:
        raise ValueError(
            f"{LOG_HORIZON_ENV} must be a positive integer, got {raw!r}")
    return capacity


@dataclass(frozen=True)
class MutationRecord:
    """What one mutation touched, at label granularity.

    ``structural_edges`` / ``structural_nodes`` flag that the *set* of edges
    or nodes changed (add/remove), as opposed to an in-place relabel or
    property write.  The label sets carry everything the mutated object wore:
    removing an edge records its label, its property names, and (for vector
    graphs) every feature index, because any query reading those could see a
    different answer afterwards.
    """

    kind: str
    version: int
    edge_labels: frozenset = frozenset()
    node_labels: frozenset = frozenset()
    properties: frozenset = frozenset()
    features: frozenset = frozenset()
    structural_edges: bool = False
    structural_nodes: bool = False
    #: Identity (and old-state) of the mutated object, shaped per ``kind``
    #: — e.g. ``(edge, source, target, label)`` for ``"remove_edge.label"``.
    #: Empty for records written before payloads existed or by layers that
    #: do not support replay; consumers must fall back conservatively then.
    payload: tuple = ()


_EMPTY: frozenset = frozenset()


class _Absent:
    """Sentinel for "the property had no value" in old-state payloads.

    Distinct from ``None`` because ``None`` is a storable property value;
    restoring ``ABSENT`` means *deleting* the property.
    """

    _instance = None

    def __new__(cls) -> "_Absent":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ABSENT"


#: Old-value marker in property payloads: the property did not exist.
ABSENT = _Absent()


class MutationLog:
    """Append-only, bounded log of :class:`MutationRecord` entries.

    ``version`` starts at 0 (a freshly built graph) and increases by one per
    appended record.  Records hold the contiguous version range
    ``(horizon, version]``; ``horizon`` is the newest version *not*
    retained, so a cache entry stored at or before it can no longer be
    validated and must be treated as stale.

    **Bounded horizon and conservative truncation.**  The log is a
    ``deque(maxlen=capacity)``: appending past ``capacity`` silently drops
    the oldest record, moving ``horizon`` forward.  Truncation never makes
    the log *lie* — every question about a version older than the retained
    window is answered pessimistically (:meth:`records_since` returns
    ``None``, :meth:`intersects_since` returns ``True``, "assume
    invalidated"), so consumers re-compute rather than serve a possibly
    stale answer.  The cost of a too-small capacity is therefore wasted
    work, never wrong answers.  ``capacity`` defaults to
    :func:`default_log_capacity`, which honors the ``REPRO_LOG_HORIZON``
    environment variable.
    """

    __slots__ = ("capacity", "_version", "_records")

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is None:
            capacity = default_log_capacity()
        if capacity < 1:
            raise ValueError("log capacity must be positive")
        self.capacity = capacity
        self._version = 0
        self._records: deque = deque(maxlen=capacity)

    @property
    def version(self) -> int:
        """The current version: the number of mutations recorded so far."""
        return self._version

    @property
    def horizon(self) -> int:
        """Newest discarded version (0 while no truncation has happened)."""
        return self._version - len(self._records)

    def record(self, kind: str, *,
               edge_labels: Iterable = (),
               node_labels: Iterable = (),
               properties: Iterable = (),
               features: Iterable = (),
               structural_edges: bool = False,
               structural_nodes: bool = False,
               payload: tuple = ()) -> int:
        """Append one record, bump the version, and return the new version."""
        self._version += 1
        self._records.append(MutationRecord(
            kind=kind,
            version=self._version,
            edge_labels=frozenset(edge_labels) if edge_labels else _EMPTY,
            node_labels=frozenset(node_labels) if node_labels else _EMPTY,
            properties=frozenset(properties) if properties else _EMPTY,
            features=frozenset(features) if features else _EMPTY,
            structural_edges=structural_edges,
            structural_nodes=structural_nodes,
            payload=payload,
        ))
        return self._version

    def fast_forward(self, version: int) -> None:
        """Adopt ``version`` as the current version, dropping all records.

        Used by storage recovery: a graph rebuilt from a snapshot taken at
        version ``V`` must rejoin the versioning timeline at ``V`` — WAL
        entries, cache stamps and adjacency-array snapshots all carry
        absolute versions — but its in-process history is gone, so the
        retained window collapses to nothing (``horizon == version``).
        Every validity question about the pre-recovery past then gets the
        conservative "assume invalidated" answer, exactly as if the window
        had been truncated away.  Rewinding is refused: versions are
        monotonic by contract.
        """
        if version < self._version:
            raise ValueError(
                f"cannot fast-forward backwards: {self._version} -> {version}")
        self._version = version
        self._records.clear()

    def records_since(self, version: int) -> list[MutationRecord] | None:
        """Records strictly newer than ``version``, or ``None`` if that part
        of the history has been truncated (caller must assume the worst)."""
        if version < self.horizon:
            return None
        return [r for r in self._records if r.version > version]

    def intersects_since(self, version: int, footprint: "Footprint") -> bool:
        """Did any mutation after ``version`` intersect ``footprint``?

        ``True`` is the conservative answer: it is returned both for a real
        intersection and for a truncated history.  ``False`` is a proof that
        a result computed at ``version`` is still current.
        """
        if version >= self._version:
            return False
        records = self.records_since(version)
        if records is None:
            return True
        return any(footprint.intersects(record) for record in records)

    def __len__(self) -> int:
        return len(self._records)
