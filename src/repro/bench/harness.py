"""Tiny experiment harness: named experiments printing paper-style tables.

The benchmark suite regenerates each of the paper's artifacts as a printed
table/series; this module gives those printouts one consistent shape so
EXPERIMENTS.md can quote them directly.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.util.tables import format_table

#: Version stamped into every BENCH_*.json artifact.  History:
#: 1 (implicit) — unversioned single-process timings;
#: 2 — adds explicit ``schema``/``version``/``workers``/``cpus`` metadata,
#:     so a timing row can no longer silently imply a single process.
BENCH_SCHEMA_VERSION = 2


def report_metadata(*, workers: int = 1) -> dict:
    """The metadata header every BENCH JSON report embeds.

    ``workers`` declares how many processes produced the *headline* rows
    (scaling sections annotate their own per-row worker counts); ``cpus``
    records the machine, without which a scaling column is uninterpretable.
    """
    return {
        "schema": "repro.bench",
        "version": BENCH_SCHEMA_VERSION,
        "workers": workers,
        "cpus": os.cpu_count() or 1,
    }


@dataclass
class Experiment:
    """A named experiment accumulating result rows."""

    identifier: str
    description: str
    headers: Sequence[str] = ()
    rows: list[Sequence[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        self.rows.append(values)

    def render(self) -> str:
        title = f"[{self.identifier}] {self.description}"
        if not self.headers:
            return title
        return format_table(self.headers, self.rows, title=title)

    def show(self) -> None:
        print()
        print(self.render())


def timed(function: Callable, *args, repeat: int = 1, tracer=None,
          **kwargs) -> tuple[object, float]:
    """Run a callable, returning (last result, best wall-clock seconds).

    With a :class:`~repro.obs.Tracer`, ``tracer=tracer`` is threaded into
    the callable so its spans accumulate on the tracer; a BENCH JSON row
    can then attach ``tracer.summary()`` next to the timing.
    """
    if tracer is not None:
        kwargs["tracer"] = tracer
    best = float("inf")
    result = None
    for _ in range(max(repeat, 1)):
        start = time.perf_counter()
        result = function(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return result, best


def timed_governed(function: Callable, budget, *args, tracer=None,
                   **kwargs) -> tuple[object, float, object]:
    """Run ``function(*args, ctx=Context(budget), **kwargs)`` once.

    Returns ``(result, wall-clock seconds, stats)`` where ``stats`` is the
    context's :class:`~repro.exec.ExecStats` — checkpoints hit, peak
    frontier, degradation events — so governed experiments can report
    result quality next to timing.  A :class:`~repro.obs.Tracer` is
    threaded through like in :func:`timed`.
    """
    from repro.exec import Context

    if tracer is not None:
        kwargs["tracer"] = tracer
    ctx = Context(budget)
    start = time.perf_counter()
    result = function(*args, ctx=ctx, **kwargs)
    elapsed = time.perf_counter() - start
    return result, elapsed, ctx.stats


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence[object]]) -> None:
    print()
    print(format_table(headers, rows, title=title))


def print_series(title: str, series: dict) -> None:
    """Print a {name: {x: y}} family of series as a wide table."""
    xs = sorted({x for points in series.values() for x in points})
    headers = ["series", *[str(x) for x in xs]]
    rows = []
    for name in series:
        rows.append([name, *[series[name].get(x, "") for x in xs]])
    print_table(title, headers, rows)
