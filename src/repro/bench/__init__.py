"""Experiment harness shared by benchmarks and examples."""

from repro.bench.harness import (
    BENCH_SCHEMA_VERSION,
    Experiment,
    print_series,
    print_table,
    report_metadata,
    timed,
    timed_governed,
)

__all__ = ["BENCH_SCHEMA_VERSION", "Experiment", "report_metadata",
           "timed", "timed_governed", "print_table", "print_series"]
