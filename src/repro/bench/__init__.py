"""Experiment harness shared by benchmarks and examples."""

from repro.bench.harness import (
    Experiment,
    print_series,
    print_table,
    timed,
    timed_governed,
)

__all__ = ["Experiment", "timed", "timed_governed", "print_table",
           "print_series"]
