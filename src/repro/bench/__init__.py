"""Experiment harness shared by benchmarks and examples."""

from repro.bench.harness import Experiment, print_series, print_table, timed

__all__ = ["Experiment", "timed", "print_table", "print_series"]
