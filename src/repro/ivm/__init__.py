"""Incremental view maintenance and time travel (see DESIGN §4j).

Three cooperating pieces over the per-graph
:class:`~repro.cache.versioning.MutationLog`:

- :mod:`repro.ivm.delta` — :class:`IncrementalPairs`, the delta engine
  keeping an ``endpoint_pairs`` answer continuously correct by
  propagating mutation records through the product-automaton frontier;
- :mod:`repro.ivm.views` — :class:`ViewRegistry` /
  :class:`MaterializedView`, named registered queries (pairs, counts and
  all three frontends) served through the ``view=`` keyword of
  ``run_pathql`` / ``run_sparql`` / ``run_cypher``;
- :mod:`repro.ivm.temporal` — :func:`as_of` transaction-time travel by
  inverse replay of payload-carrying records, plus the ``valid_at`` /
  ``invalid_at`` bi-temporal property helpers.
"""

from repro.errors import TimeTravelError, ViewError
from repro.ivm.delta import IncrementalPairs
from repro.ivm.temporal import (
    INVALID_AT,
    VALID_AT,
    as_of,
    edge_valid_at,
    node_valid_at,
    set_edge_validity,
    set_node_validity,
    subgraph_valid_at,
)
from repro.ivm.views import MaterializedView, ViewRegistry

__all__ = [
    "INVALID_AT",
    "IncrementalPairs",
    "MaterializedView",
    "TimeTravelError",
    "VALID_AT",
    "ViewError",
    "ViewRegistry",
    "as_of",
    "edge_valid_at",
    "node_valid_at",
    "set_edge_validity",
    "set_node_validity",
    "subgraph_valid_at",
]
