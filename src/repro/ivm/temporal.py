"""Transaction-time travel and bi-temporal validity over the mutation log.

Two distinct notions of time, deliberately kept orthogonal (the classic
bi-temporal split, as in graphiti's ``valid_at``/``invalid_at`` schema):

- **Transaction time** — when the *database* learned something.  The
  mutation log is exactly a transaction-time history, and since every
  record now carries a payload naming the mutated object and its old
  state, :func:`as_of` can reconstruct the graph at any retained version by
  *inverse replay*: copy the current graph, then undo records newest-first.
  This is O(changes since v), not O(history), and never touches the
  original graph.

- **Valid time** — when a fact is true *in the modeled world*.  That is
  ordinary data, carried as the reserved node/edge properties
  :data:`VALID_AT` / :data:`INVALID_AT` and queried with
  :func:`subgraph_valid_at` — which works the same at any transaction-time
  version, so ``subgraph_valid_at(as_of(g, v), t)`` answers "what did we
  believe at version v about time t".

Inverse replay processes one logical mutation's record stack newest-first,
which makes the *richest* layer's record (the one carrying labels and
properties) arrive before the base structural record; each undo rule is
therefore idempotent — it checks whether the object is already in the
restored state and skips if so.  A record that cannot be inverted (no
payload: pre-payload history) raises
:class:`~repro.errors.TimeTravelError` rather than guessing, as does a
version outside the log's bounded window.
"""

from __future__ import annotations

from repro.cache.versioning import ABSENT, MutationRecord
from repro.errors import ModelCapabilityError, TimeTravelError

#: Reserved property names of the bi-temporal validity interval.
VALID_AT = "valid_at"
INVALID_AT = "invalid_at"

_REMOVED_EDGE_KINDS = frozenset({
    "remove_edge", "remove_edge.label", "remove_edge.props",
    "remove_edge.features"})
_ADDED_EDGE_KINDS = frozenset({
    "add_edge", "add_edge.label", "add_edge.props", "add_edge.features"})
_REMOVED_NODE_KINDS = frozenset({
    "remove_node", "remove_node.label", "remove_node.props",
    "remove_node.features"})
_ADDED_NODE_KINDS = frozenset({"add_node", "add_node.label",
                               "add_node.features"})


def as_of(target, version: int):
    """The graph/store as it stood at mutation-log ``version``.

    Returns a fresh object of the same type (the original is untouched),
    tagged with an ``as_of_version`` attribute so downstream consumers —
    EXPLAIN, the CLI — can surface which version a result was computed at.
    Raises :class:`~repro.errors.TimeTravelError` for a future version, a
    version the bounded log no longer reaches, or an uninvertible record.
    """
    # A property-graph store wraps a live graph and delegates its log to
    # it; travel the graph and re-wrap so the store's indexes rebuild
    # against the reconstructed state.
    graph_attr = getattr(target, "graph", None)
    if graph_attr is not None and hasattr(target, "nodes_with_property"):
        snapshot = type(target)(as_of(graph_attr, version))
        snapshot.as_of_version = version
        return snapshot
    log = getattr(target, "mutation_log", None)
    if log is None:
        raise TimeTravelError(
            f"{type(target).__name__} keeps no mutation log; "
            "time travel needs a versioned in-memory graph or store")
    if version < 0:
        raise TimeTravelError(f"version must be >= 0, got {version}")
    if version > log.version:
        raise TimeTravelError(
            f"AS OF {version} is in the future (current version is "
            f"{log.version})")
    records = log.records_since(version)
    if records is None:
        raise TimeTravelError(
            f"AS OF {version} is beyond the log's retained window "
            f"(horizon {log.horizon}); widen REPRO_LOG_HORIZON or "
            "snapshot earlier")
    snapshot = _fresh_copy(target)
    for record in reversed(records):
        _apply_inverse(snapshot, record)
    snapshot.as_of_version = version
    return snapshot


def _fresh_copy(target):
    copy = getattr(target, "copy", None)
    if copy is not None:
        return copy()
    # RDFGraph / TripleStore: rebuild from the triple set.
    triples = getattr(target, "triples", None)
    if triples is not None:
        return type(target)(list(triples()))
    raise TimeTravelError(
        f"cannot snapshot a {type(target).__name__} for time travel")


def _require_payload(record: MutationRecord) -> tuple:
    if not record.payload:
        raise TimeTravelError(
            f"record {record.kind!r} at version {record.version} carries "
            "no payload (pre-payload history cannot be inverted)")
    return record.payload


def _apply_inverse(target, record: MutationRecord) -> None:
    """Undo one record on ``target`` (idempotent per logical mutation)."""
    kind = record.kind
    if kind in ("add_triple", "discard_triple", "remove_triple"):
        subject, predicate, obj = _require_payload(record)
        if kind == "add_triple":
            remove = getattr(target, "discard", None) or target.remove
            remove(subject, predicate, obj)
        else:
            target.add(subject, predicate, obj)
        return
    payload = _require_payload(record)
    if kind in _ADDED_EDGE_KINDS:
        if target.has_edge(payload[0]):
            target.remove_edge(payload[0])
    elif kind in _REMOVED_EDGE_KINDS:
        edge = payload[0]
        if not target.has_edge(edge):
            if kind == "remove_edge":
                _, source, node = payload
                target.add_edge(edge, source, node)
            elif kind == "remove_edge.label":
                _, source, node, label = payload
                target.add_edge(edge, source, node, label)
            elif kind == "remove_edge.props":
                _, source, node, label, props = payload
                target.add_edge(edge, source, node, label, dict(props))
            else:  # remove_edge.features
                _, source, node, vector = payload
                target.add_edge(edge, source, node, vector)
    elif kind == "add_node.props":
        node, pairs, origin = payload
        if origin == "fresh":
            if target.has_node(node):
                target.remove_node(node)
        else:  # in-place property update on an existing node
            for prop, old, _new in pairs:
                if old is ABSENT:
                    target.delete_node_property(node, prop)
                else:
                    target.set_node_property(node, prop, old)
    elif kind in _ADDED_NODE_KINDS:
        if target.has_node(payload[0]):
            target.remove_node(payload[0])
    elif kind in _REMOVED_NODE_KINDS:
        node = payload[0]
        if not target.has_node(node):
            if kind == "remove_node":
                target.add_node(node)
            elif kind == "remove_node.label":
                target.add_node(node, payload[1])
            elif kind == "remove_node.props":
                _, label, props = payload
                target.add_node(node, label, dict(props))
            else:  # remove_node.features
                target.add_node(node, payload[1])
    elif kind == "set_node_label":
        node, old, _new = payload
        target.set_node_label(node, old)
    elif kind == "set_edge_label":
        edge, old, _new = payload
        target.set_edge_label(edge, old)
    elif kind == "set_node_property":
        node, prop, old, _new = payload
        if old is ABSENT:
            target.delete_node_property(node, prop)
        else:
            target.set_node_property(node, prop, old)
    elif kind == "set_edge_property":
        edge, prop, old, _new = payload
        if old is ABSENT:
            target.delete_edge_property(edge, prop)
        else:
            target.set_edge_property(edge, prop, old)
    elif kind == "del_node_property":
        node, prop, old = payload
        target.set_node_property(node, prop, old)
    elif kind == "del_edge_property":
        edge, prop, old = payload
        target.set_edge_property(edge, prop, old)
    elif kind == "set_node_vector":
        node, old, _new = payload
        target.set_node_vector(node, old)
    elif kind == "set_edge_vector":
        edge, old, _new = payload
        target.set_edge_vector(edge, old)
    else:
        raise TimeTravelError(
            f"record kind {record.kind!r} at version {record.version} "
            "has no inverse rule")


# -- valid time ------------------------------------------------------------


def set_node_validity(graph, node, valid_at=None, invalid_at=None) -> None:
    """Set the valid-time interval [valid_at, invalid_at) of a node.

    ``None`` leaves that bound open (and clears a previously set one).
    Bounds are ordinary property values; they only need to be mutually
    comparable with the instants passed to the ``*_valid_at`` readers.
    """
    _set_validity(graph, node, valid_at, invalid_at,
                  graph.set_node_property, graph.delete_node_property)


def set_edge_validity(graph, edge, valid_at=None, invalid_at=None) -> None:
    """Set the valid-time interval [valid_at, invalid_at) of an edge."""
    _set_validity(graph, edge, valid_at, invalid_at,
                  graph.set_edge_property, graph.delete_edge_property)


def _set_validity(graph, item, valid_at, invalid_at, setter, deleter) -> None:
    for prop, bound in ((VALID_AT, valid_at), (INVALID_AT, invalid_at)):
        if bound is None:
            deleter(item, prop)
        else:
            setter(item, prop, bound)


def _interval_holds(valid_at, invalid_at, at) -> bool:
    if valid_at is not None and at < valid_at:
        return False
    if invalid_at is not None and not at < invalid_at:
        return False
    return True


def node_valid_at(graph, node, at) -> bool:
    """Is ``node`` valid-time current at instant ``at``?"""
    return _interval_holds(graph.node_property(node, VALID_AT),
                           graph.node_property(node, INVALID_AT), at)


def edge_valid_at(graph, edge, at) -> bool:
    """Is ``edge`` itself valid-time current at instant ``at``?

    Only the edge's own interval; :func:`subgraph_valid_at` additionally
    requires both endpoints to be valid.
    """
    return _interval_holds(graph.edge_property(edge, VALID_AT),
                           graph.edge_property(edge, INVALID_AT), at)


def subgraph_valid_at(graph, at):
    """The same-typed subgraph of elements valid at instant ``at``.

    Keeps every node whose interval covers ``at`` and every edge whose own
    interval covers ``at`` *and* whose endpoints survive.  Elements without
    validity properties are timeless and always kept.
    """
    if not hasattr(graph, "node_property"):
        raise ModelCapabilityError(
            "valid-time filtering needs a property graph "
            f"(got {type(graph).__name__})")
    clone = type(graph)()
    for node in graph.nodes():
        if node_valid_at(graph, node, at):
            clone.add_node(node, graph.node_label(node),
                           graph.node_properties(node))
    for edge in graph.edges():
        source, target = graph.endpoints(edge)
        if (edge_valid_at(graph, edge, at)
                and clone.has_node(source) and clone.has_node(target)):
            clone.add_edge(edge, source, target, graph.edge_label(edge),
                           graph.edge_properties(edge))
    return clone
