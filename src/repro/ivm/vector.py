"""Vectorized delta application against :class:`GraphArrays`.

The scalar delta seeder of :class:`~repro.ivm.delta.IncrementalPairs`
matches each net-new edge against each NFA transition with a per-edge
Python ``matches_edge`` call — exactly right for the single-digit deltas of
an interactive mutation stream.  For *bulk* deltas (a batch load landing
thousands of edges) that inner loop dominates, and the adjacency-array
snapshot the vector engine already maintains can answer all the membership
questions at once: one boolean mask per transition over the edge-id array,
indexed at the batch's positions.

The helper is read-only over the shared
:func:`~repro.core.rpq.vectorized.arrays.graph_arrays` cache — it never
mutates a cached array in place (see the double-invalidation audit in
DESIGN §4j: views and the cache share one mutation log, so a view that
re-stamped or rewrote shared arrays would corrupt the other consumer's
validity reasoning).  The arrays snapshot is rebuilt by its own cache on
structural change, which costs O(m); that is why the bulk path only
engages past a batch-size threshold where the rebuild amortizes.
"""

from __future__ import annotations

try:  # pragma: no cover - exercised by presence/absence of numpy
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Below this batch size the scalar per-edge loop wins (building the
#: edge-position map alone costs O(m)); ``force=True`` (engine="vector")
#: overrides it so tests can pin scalar == vector on small batches.
MIN_BULK_EDGES = 64


def numpy_available() -> bool:
    return _np is not None


def bulk_transition_matches(graph, transition_list, edge_ids, *,
                            force: bool = False) -> dict | None:
    """Which transitions each edge of a batch can fire, computed vectorized.

    Returns ``{edge_id: set_of_transition_indices}`` (indices into
    ``transition_list``, whose rows are ``(q1, test, inverse, q2)``), or
    ``None`` when the bulk path should not run — no numpy, a too-small
    batch without ``force``, or a graph the arrays builder cannot snapshot.
    A ``None`` return means "use the scalar loop", never "no matches".
    """
    if _np is None:
        return None
    if not force and len(edge_ids) < MIN_BULK_EDGES:
        return None
    from repro.core.rpq.vectorized.arrays import graph_arrays
    try:
        arrays = graph_arrays(graph)
    except Exception:
        return None
    position_of = {edge: index for index, edge in enumerate(arrays.edges)}
    positions = []
    batch = []
    for edge in edge_ids:
        position = position_of.get(edge)
        if position is not None:
            positions.append(position)
            batch.append(edge)
    matches: dict = {edge: set() for edge in batch}
    if not batch:
        return matches
    index_array = _np.asarray(positions, dtype=_np.int64)
    for t_index, (_q1, test, _inverse, _q2) in enumerate(transition_list):
        mask = arrays.edge_mask(graph, test, use_label_index=True)
        hits = mask[index_array]
        for edge, hit in zip(batch, hits):
            if hit:
                matches[edge].add(t_index)
    return matches
