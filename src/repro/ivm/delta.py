"""Incremental maintenance of RPQ endpoint pairs under graph mutation.

:class:`IncrementalPairs` keeps the answer of
:func:`~repro.core.rpq.evaluate.endpoint_pairs` continuously correct while
the underlying graph mutates, by propagating each
:class:`~repro.cache.versioning.MutationRecord` as an *edge delta* through
the product-automaton frontier instead of re-running the fixpoint from
scratch.

The maintained state is the forward fixpoint of the product automaton made
explicit: a *fact* is a pair ``(q, node)`` — NFA state reached at a graph
node — whose value is the bit mask of start nodes that reach it (the same
encoding the scalar engine uses transiently).  Around the facts the engine
keeps two support indexes:

- ``by_edge[e]``  — the facts with a derivation instance that traverses
  edge ``e`` (what a removal of ``e`` can invalidate);
- ``dependents[f]`` — the facts derived (by an edge step or a guarded-
  epsilon move) from fact ``f`` (how invalidation cascades).

Both indexes are conservative *supersets* of the live derivation graph:
stale entries cost extra rederivation work, never wrong answers, and they
are compacted on every full recompute.

**Additions** seed a semi-naive forward delta-fixpoint: each net-new edge
is matched against every NFA transition (scalar per-edge tests, or one
vectorized pass over :class:`~repro.core.rpq.vectorized.GraphArrays` for
large batches — see :mod:`repro.ivm.vector`), existing source-fact masks
flow across it, and the ordinary monotone worklist propagation completes
the fixpoint from the affected frontier only.

**Removals** use delete-and-rederive (DRed) over support *sets*: the facts
reachable in the dependency graph from any derivation instance of a removed
edge (or any fact at a removed node) are over-deleted, then rederived by a
boundary-fixed least fixpoint — each suspect's mask is recomputed from its
surviving in-neighbors, and forward propagation closes the suspect region.
Support *counts* would be unsound here: cyclic derivations (``r*`` around a
cycle) keep each other's counts positive after the external support is
gone, whereas rederivation from the fixed boundary provably reaches the
least fixpoint.

**Fallback.**  Three situations abandon the delta and re-evaluate in full,
counted in :meth:`IncrementalPairs.stats`: a mutation-log window that no
longer reaches the view's version (truncation or
:meth:`~repro.cache.versioning.MutationLog.fast_forward`); a record of a
kind the engine does not handle exactly (in-place relabels and property
writes) whose label sets intersect the automaton's *sensitivity footprint*
(the union of its transition tests' and epsilon guards' footprints); and a
net delta larger than ``delta_threshold`` edges+nodes, past which the
delta bookkeeping costs more than one fixpoint.

All phases checkpoint a governed :class:`~repro.exec.Context` (sites
``ivm.delta``, ``ivm.retract``, ``ivm.rederive``, ``ivm.recompute``), and a
sync aborted by a budget error poisons the view: the next sync falls back
to a full recompute rather than trusting half-applied state.
"""

from __future__ import annotations

from repro.cache.footprint import Footprint, test_footprint
from repro.core.rpq.ast import Regex
from repro.core.rpq.evaluate import _decode_mask
from repro.core.rpq.nfa import compile_regex
from repro.core.rpq.parser import parse_regex
from repro.core.rpq.product import _edge_fetchers
from repro.errors import EngineUnavailableError

#: Test-only escape hatch: when True, removal records are dropped on the
#: floor instead of triggering retraction, deliberately violating the
#: delta rule.  The metamorphic tier flips this to prove it would catch a
#: maintenance bug (incremental answers go stale the first time an
#: effective removal lands).
_BREAK_DELTA_RULE = False

#: Structural record kinds the delta engine handles exactly, mapped to the
#: event they witness.  Only the *base* layer's record is consulted — the
#: ``.label`` / ``.props`` / ``.features`` companions describe the same
#: structural event and are ignored (their payloads matter to time travel,
#: not to maintenance).
_EDGE_EVENTS = {"add_edge": "add", "remove_edge": "remove"}
_NODE_EVENTS = {"add_node": "add", "remove_node": "remove"}

_COMPANION_KINDS = frozenset({
    "add_edge.label", "remove_edge.label",
    "add_node.label", "remove_node.label",
    "add_edge.props", "remove_edge.props", "remove_node.props",
    "add_edge.features", "remove_edge.features",
    "add_node.features", "remove_node.features",
})


def _sensitivity_footprint(nfa) -> Footprint:
    """What non-structural state the automaton's answer can depend on.

    The union of every edge transition test's footprint and every epsilon
    guard's node footprint.  Structural changes are handled exactly by the
    delta rules, so — unlike the cache's
    :func:`~repro.cache.footprint.label_footprint` — this footprint is only
    consulted for in-place writes (relabels, property/feature updates).
    """
    footprint = Footprint()
    for transitions in nfa.edge_transitions.values():
        for test, _inverse, _q2 in transitions:
            footprint = footprint | test_footprint(test, "edge")
    for moves in nfa.epsilon_transitions.values():
        for guard, _q2 in moves:
            if guard is not None:
                footprint = footprint | test_footprint(guard, "node")
    return footprint


class IncrementalPairs:
    """A continuously-correct ``endpoint_pairs`` answer for one query.

    Maintenance is pull-based: nothing subscribes to the graph; call
    :meth:`sync` (or :meth:`pairs`, which syncs first) and the engine
    catches up with every mutation recorded since its last sync.  The
    engine never writes to the graph or its mutation log, so caches
    sharing the same log are unaffected by view maintenance.
    """

    def __init__(self, graph, regex: Regex | str,
                 start_nodes=None, end_nodes=None, *,
                 use_label_index: bool = True, engine: str = "auto",
                 delta_threshold: int | None = None) -> None:
        if isinstance(regex, str):
            regex = parse_regex(regex)
        if engine not in ("auto", "scalar", "vector"):
            raise ValueError(f"unknown engine {engine!r}")
        if engine == "vector":
            from repro.ivm.vector import numpy_available
            if not numpy_available():
                raise EngineUnavailableError(
                    "engine='vector' requested but numpy is not importable")
        self.graph = graph
        self.regex = regex
        self.nfa = compile_regex(regex)
        self.engine = engine
        self.start_filter = (None if start_nodes is None
                             else frozenset(start_nodes))
        self.end_filter = None if end_nodes is None else frozenset(end_nodes)
        self.use_label_index = use_label_index
        self.delta_threshold = delta_threshold
        self.version: int | None = None
        self.stats = {
            "syncs": 0, "delta_syncs": 0, "full_recomputes": 0,
            "retractions": 0, "rederived": 0, "truncations": 0,
            "threshold_fallbacks": 0, "unhandled_fallbacks": 0,
            "vector_batches": 0,
        }
        self._poisoned = False
        self._q0 = self.nfa.start
        self._accept_q = self.nfa.accept
        self._sensitivity = _sensitivity_footprint(self.nfa)
        self._plan = _edge_fetchers(graph, use_label_index)
        # Forward fetch plans per NFA state, and the flat transition list
        # the addition seeder matches new edges against.
        self._prepared: dict[int, list[tuple]] = {}
        self._transition_list: list[tuple] = []
        for q, transitions in self.nfa.edge_transitions.items():
            self._prepared[q] = [
                (test, inverse, q2, *self._plan(test, inverse))
                for test, inverse, q2 in transitions]
            for test, inverse, q2 in transitions:
                self._transition_list.append((q, test, inverse, q2))
        # Reversed fetch plans per *target* NFA state, for rederivation:
        # candidates arriving at a node came through the opposite index
        # direction of the forward traversal.
        self._rev_prepared: dict[int, list[tuple]] = {}
        for q1, test, inverse, q2 in self._transition_list:
            self._rev_prepared.setdefault(q2, []).append(
                (q1, test, inverse, *self._plan(test, not inverse)))
        self._eps_sources = self.nfa.epsilon_transitions.keys()
        self._closure_cache: dict[tuple, frozenset] = {}
        self._trivial_closure: dict[int, frozenset] = {}
        # Maintained state.
        self.masks: dict[tuple, int] = {}
        self.facts_at: dict[object, set[int]] = {}
        self.by_edge: dict[object, set[tuple]] = {}
        self.dependents: dict[tuple, set[tuple]] = {}
        self.accept_masks: dict[object, int] = {}
        self._bit_of: dict[object, int] = {}
        self._of_bit: list = []
        self._free_bits: list[int] = []
        self._pairs_cache: frozenset | None = None

    # -- public API --------------------------------------------------------

    def pairs(self, ctx=None) -> frozenset:
        """The current (start, end) pairs, synced to the graph's version."""
        self.sync(ctx)
        if self._pairs_cache is None:
            out = set()
            decoded: dict[int, list] = {}
            for node, mask in self.accept_masks.items():
                starts = decoded.get(mask)
                if starts is None:
                    starts = decoded[mask] = _decode_mask(mask, self._of_bit)
                for start in starts:
                    out.add((start, node))
            self._pairs_cache = frozenset(out)
        return self._pairs_cache

    def sync(self, ctx=None) -> None:
        """Catch up with every mutation recorded since the last sync."""
        log = self.graph.mutation_log
        current = log.version
        if self.version == current and not self._poisoned:
            return
        self.stats["syncs"] += 1
        try:
            if self._poisoned or self.version is None:
                self._recompute(ctx)
            else:
                records = log.records_since(self.version)
                if records is None:
                    self.stats["truncations"] += 1
                    self._recompute(ctx)
                else:
                    self._apply_records(records, ctx)
            self.version = current
            self._poisoned = False
        except BaseException:
            # A budget error (or any abort) mid-sync leaves half-applied
            # state; trusting it would serve wrong answers.
            self._poisoned = True
            raise

    # -- record classification ---------------------------------------------

    def _apply_records(self, records, ctx) -> None:
        graph = self.graph
        edge_first: dict = {}
        node_first: dict = {}
        for record in records:
            kind = record.kind
            event = _EDGE_EVENTS.get(kind)
            if event is not None:
                if _BREAK_DELTA_RULE and event == "remove":
                    continue
                if not record.payload:
                    self.stats["unhandled_fallbacks"] += 1
                    self._recompute(ctx)
                    return
                edge_first.setdefault(record.payload[0], event)
                continue
            event = _NODE_EVENTS.get(kind)
            if event is not None:
                if _BREAK_DELTA_RULE and event == "remove":
                    continue
                if not record.payload:
                    self.stats["unhandled_fallbacks"] += 1
                    self._recompute(ctx)
                    return
                node_first.setdefault(record.payload[0], event)
                continue
            if kind in _COMPANION_KINDS:
                continue
            if (kind == "add_node.props" and record.payload
                    and record.payload[-1] == "fresh"):
                continue  # companion of the add_node that created the node
            # An in-place write (relabel, property/feature update) or an
            # unknown kind: exact only if the automaton cannot read it.
            if self._sensitivity.intersects(record):
                self.stats["unhandled_fallbacks"] += 1
                self._recompute(ctx)
                return
        added_edges, removed_edges = [], []
        for edge, first in edge_first.items():
            present = graph.has_edge(edge)
            if first == "add":
                if present:  # churn (add then remove) cancels out
                    added_edges.append(edge)
            else:
                removed_edges.append(edge)
                if present:  # removed then re-added, possibly rewired
                    added_edges.append(edge)
        added_nodes, removed_nodes = [], []
        for node, first in node_first.items():
            present = graph.has_node(node)
            if first == "add":
                if present:
                    added_nodes.append(node)
            else:
                removed_nodes.append(node)
                if present:
                    added_nodes.append(node)
        delta_size = (len(added_edges) + len(removed_edges)
                      + len(added_nodes) + len(removed_nodes))
        threshold = self.delta_threshold
        if threshold is None:
            threshold = max(16, (graph.edge_count() + graph.node_count()) // 2)
        if delta_size > threshold:
            self.stats["threshold_fallbacks"] += 1
            self._recompute(ctx)
            return
        self.stats["delta_syncs"] += 1
        self._closure_cache.clear()
        if removed_edges or removed_nodes:
            self._retract(removed_nodes, removed_edges, ctx)
        if added_edges or added_nodes:
            self._apply_additions(added_nodes, added_edges, ctx)

    # -- fact bookkeeping --------------------------------------------------

    def _is_start(self, node) -> bool:
        return self.start_filter is None or node in self.start_filter

    def _bit_for(self, node) -> int:
        position = self._bit_of.get(node)
        if position is None:
            if self._free_bits:
                position = self._free_bits.pop()
                self._of_bit[position] = node
            else:
                position = len(self._of_bit)
                self._of_bit.append(node)
            self._bit_of[node] = position
        return 1 << position

    def _closure(self, q: int, node) -> frozenset:
        """Guarded-epsilon closure of {q} at ``node`` (cached per sync)."""
        if q not in self._eps_sources:
            found = self._trivial_closure.get(q)
            if found is None:
                found = self._trivial_closure[q] = frozenset((q,))
            return found
        key = (q, node)
        found = self._closure_cache.get(key)
        if found is None:
            graph = self.graph
            eps = self.nfa.epsilon_transitions
            result: set[int] = set()
            stack = [q]
            while stack:
                state = stack.pop()
                if state in result:
                    continue
                result.add(state)
                for guard, q2 in eps.get(state, ()):
                    if q2 not in result and (
                            guard is None or guard.matches_node(graph, node)):
                        stack.append(q2)
            found = self._closure_cache[key] = frozenset(result)
        return found

    def _or_into(self, q: int, node, mask: int, worklist, queued) -> bool:
        key = (q, node)
        old = self.masks.get(key, 0)
        if mask | old == old:
            return False
        new = old | mask
        self.masks[key] = new
        if not old:
            self.facts_at.setdefault(node, set()).add(q)
        if q == self._accept_q and (
                self.end_filter is None or node in self.end_filter):
            self.accept_masks[node] = new
            self._pairs_cache = None
        if key not in queued:
            queued.add(key)
            worklist.append(key)
        return True

    def _drop_fact(self, key) -> None:
        if self.masks.pop(key, None) is None:
            return
        q, node = key
        states = self.facts_at.get(node)
        if states is not None:
            states.discard(q)
            if not states:
                del self.facts_at[node]
        if q == self._accept_q and node in self.accept_masks:
            del self.accept_masks[node]
            self._pairs_cache = None

    # -- the forward fixpoint ----------------------------------------------

    def _propagate(self, worklist, queued, ctx, site: str) -> None:
        graph = self.graph
        endpoints = graph.endpoints
        masks = self.masks
        while worklist:
            if ctx is not None:
                ctx.checkpoint(site)
                ctx.note_frontier(len(worklist), site)
            key = worklist.pop()
            queued.discard(key)
            mask = masks.get(key, 0)
            if not mask:
                continue
            q, node = key
            for q2 in self._closure(q, node):
                if q2 != q:
                    self.dependents.setdefault(key, set()).add((q2, node))
                    self._or_into(q2, node, mask, worklist, queued)
            for test, inverse, q2, fetch, skip_test in self._prepared.get(q, ()):
                for edge in fetch(node):
                    if not skip_test and not test.matches_edge(graph, edge):
                        continue
                    source, target = endpoints(edge)
                    w = source if inverse else target
                    self.by_edge.setdefault(edge, set()).add((q2, w))
                    self.dependents.setdefault(key, set()).add((q2, w))
                    self._or_into(q2, w, mask, worklist, queued)

    def _recompute(self, ctx) -> None:
        """Rebuild every fact and support index from the live graph."""
        self.stats["full_recomputes"] += 1
        self.masks.clear()
        self.facts_at.clear()
        self.by_edge.clear()
        self.dependents.clear()
        self.accept_masks.clear()
        self._bit_of.clear()
        self._of_bit.clear()
        self._free_bits.clear()
        self._closure_cache.clear()
        self._pairs_cache = None
        worklist: list = []
        queued: set = set()
        for node in self.graph.nodes():
            if ctx is not None:
                ctx.checkpoint("ivm.recompute")
            if self._is_start(node):
                self._or_into(self._q0, node, self._bit_for(node),
                              worklist, queued)
        self._propagate(worklist, queued, ctx, "ivm.recompute")

    # -- additions ----------------------------------------------------------

    def _apply_additions(self, added_nodes, added_edges, ctx) -> None:
        graph = self.graph
        worklist: list = []
        queued: set = set()
        for node in added_nodes:
            if graph.has_node(node) and self._is_start(node):
                self._or_into(self._q0, node, self._bit_for(node),
                              worklist, queued)
        matches = None
        if added_edges and self.engine != "scalar":
            from repro.ivm.vector import bulk_transition_matches
            matches = bulk_transition_matches(
                graph, self._transition_list, added_edges,
                force=self.engine == "vector")
            if matches is not None:
                self.stats["vector_batches"] += 1
        for edge in added_edges:
            if ctx is not None:
                ctx.checkpoint("ivm.delta")
            if not graph.has_edge(edge):
                continue
            source, target = graph.endpoints(edge)
            matched = matches.get(edge) if matches is not None else None
            for index, (q1, test, inverse, q2) in enumerate(
                    self._transition_list):
                if matched is not None:
                    if index not in matched:
                        continue
                elif not test.matches_edge(graph, edge):
                    continue
                u1, w = (target, source) if inverse else (source, target)
                mask = self.masks.get((q1, u1), 0)
                if mask:
                    self.by_edge.setdefault(edge, set()).add((q2, w))
                    self.dependents.setdefault((q1, u1), set()).add((q2, w))
                    self._or_into(q2, w, mask, worklist, queued)
        self._propagate(worklist, queued, ctx, "ivm.delta")

    # -- removals: delete-and-rederive ---------------------------------------

    def _retract(self, removed_nodes, removed_edges, ctx) -> None:
        self.stats["retractions"] += 1
        graph = self.graph
        suspects: set = set()
        stack: list = []
        for edge in removed_edges:
            for key in self.by_edge.pop(edge, ()):
                if key in self.masks and key not in suspects:
                    suspects.add(key)
                    stack.append(key)
        doomed: set = set()
        for node in removed_nodes:
            for q in tuple(self.facts_at.get(node, ())):
                key = (q, node)
                doomed.add(key)
                if key not in suspects:
                    suspects.add(key)
                    stack.append(key)
        # Over-delete: everything transitively derived from a suspect.
        while stack:
            if ctx is not None:
                ctx.checkpoint("ivm.retract")
                ctx.note_frontier(len(stack), "ivm.retract")
            key = stack.pop()
            for dep in self.dependents.pop(key, ()):
                if dep in self.masks and dep not in suspects:
                    suspects.add(dep)
                    stack.append(dep)
        for key in suspects:
            self._drop_fact(key)
        for node in removed_nodes:
            position = self._bit_of.pop(node, None)
            if position is not None:
                self._of_bit[position] = None
                self._free_bits.append(position)
        # Rederive: recompute each surviving suspect from its in-neighbors
        # (the non-suspect boundary is already correct), then let forward
        # propagation close the suspect region to the least fixpoint.
        worklist: list = []
        queued: set = set()
        survivors = 0
        for key in suspects:
            if key in doomed or not graph.has_node(key[1]):
                continue
            if ctx is not None:
                ctx.checkpoint("ivm.rederive")
            survivors += 1
            mask = self._scratch_mask(key)
            if mask:
                self._or_into(key[0], key[1], mask, worklist, queued)
        self.stats["rederived"] += survivors
        self._propagate(worklist, queued, ctx, "ivm.rederive")

    def _scratch_mask(self, key) -> int:
        """One fact's mask recomputed from current facts and live edges."""
        q, node = key
        graph = self.graph
        mask = 0
        if q == self._q0 and self._is_start(node):
            mask |= self._bit_for(node)
        for q1 in self.facts_at.get(node, ()):
            if q1 == q:
                continue
            contributed = self.masks.get((q1, node), 0)
            if contributed and q in self._closure(q1, node):
                self.dependents.setdefault((q1, node), set()).add(key)
                mask |= contributed
        endpoints = graph.endpoints
        for q1, test, inverse, fetch, skip_test in self._rev_prepared.get(q, ()):
            for edge in fetch(node):
                if not skip_test and not test.matches_edge(graph, edge):
                    continue
                source, target = endpoints(edge)
                u1 = target if inverse else source
                contributed = self.masks.get((q1, u1), 0)
                if contributed:
                    self.by_edge.setdefault(edge, set()).add(key)
                    self.dependents.setdefault((q1, u1), set()).add(key)
                    mask |= contributed
        return mask
