"""Materialized views: registered queries kept continuously correct.

A :class:`ViewRegistry` is bound to one target (a graph, a property-graph
store, or a triple store) and keeps a set of named views answering from
materialized state instead of re-evaluating.  Two maintenance strategies:

- ``incremental-delta`` — endpoint-pair views (:meth:`register_pairs`)
  are backed by :class:`~repro.ivm.delta.IncrementalPairs`, which
  propagates each mutation record as an edge-delta through the product
  automaton's frontier and only falls back to full reevaluation past its
  thresholds.

- ``footprint-recompute`` — everything whose answer does not decompose
  into deltas (exact path counts are #P/SpanL-hard to maintain
  incrementally; frontend results carry ordering, limits and seeds)
  re-evaluates when a mutation record intersects the query's footprint,
  and merely *re-stamps* its version when the records since its last
  evaluation are provably disjoint.  That re-stamp is the same soundness
  argument :class:`~repro.cache.QueryCache` makes — but a view holds its
  one answer pinned rather than competing in an LRU.

Frontends reach views through the ``view=`` keyword of ``run_pathql`` /
``run_sparql`` / ``run_cypher``, which lands in the :meth:`serve_pathql` /
:meth:`serve_sparql` / :meth:`serve_cypher` hooks here: the query
auto-registers on first use (keyed by its canonical form) and every later
run serves from the view.  A registry only ever answers for its own
target — serving against anything else raises
:class:`~repro.errors.ViewError`, as does re-registering a name with a
different query.  Served results are always fresh copies; callers may
mutate them freely.
"""

from __future__ import annotations

from repro.cache import label_footprint
from repro.errors import ViewError
from repro.ivm.delta import IncrementalPairs

_NEVER = object()  # "view has not been computed yet" sentinel


def _as_graph(target):
    """The raw graph under ``target`` (stores wrap one)."""
    if hasattr(target, "has_edge"):
        return target
    graph = getattr(target, "graph", None)
    if graph is not None and hasattr(graph, "has_edge"):
        return graph
    raise ViewError(
        f"{type(target).__name__} is not a graph and does not wrap one; "
        "pair/count views need a graph target")


def _same_target(registered, served) -> bool:
    """Identity check between a registry's target and a frontend's.

    A store and the graph it wraps are the same data, so either spelling
    is accepted; two distinct graphs never are.
    """
    return (registered is served
            or getattr(registered, "graph", None) is served
            or registered is getattr(served, "graph", None))


class MaterializedView:
    """One registered query with a continuously maintained answer.

    Handles are returned by the ``register_*`` methods of
    :class:`ViewRegistry` and stay valid for the registry's lifetime.
    ``result(ctx=None)`` synchronizes against the target's mutation log
    and returns a fresh value; ``stats()`` exposes the maintenance
    counters the metamorphic tests assert non-vacuity with.
    """

    def __init__(self, registry: "ViewRegistry", name: str, kind: str,
                 key: tuple) -> None:
        self.registry = registry
        self.name = name
        self.kind = kind
        self.key = key
        self.served = 0

    @property
    def target(self):
        return self.registry.target

    @property
    def strategy(self) -> str:
        raise NotImplementedError

    @property
    def version(self) -> int:
        raise NotImplementedError

    def result(self, ctx=None):
        raise NotImplementedError

    def sync(self, ctx=None) -> None:
        raise NotImplementedError

    def stats(self) -> dict:
        raise NotImplementedError

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.name!r} kind={self.kind} "
                f"strategy={self.strategy}>")


class _PairsView(MaterializedView):
    """Endpoint-pair view maintained by the incremental delta engine."""

    strategy = "incremental-delta"

    def __init__(self, registry, name, key, engine: IncrementalPairs) -> None:
        super().__init__(registry, name, "pairs", key)
        self.engine = engine

    @property
    def version(self) -> int:
        return self.engine.version

    def sync(self, ctx=None) -> None:
        self.engine.sync(ctx)

    def result(self, ctx=None):
        self.served += 1
        return self.engine.pairs(ctx)

    def stats(self) -> dict:
        counters = dict(self.engine.stats)
        counters.update(kind=self.kind, strategy=self.strategy,
                        served=self.served)
        return counters


class _RecomputeView(MaterializedView):
    """Footprint-gated recompute view (counts and frontend results).

    ``to_stored`` turns a computed result into its pinned form, or
    ``None`` for results that must not be pinned (budget-degraded
    answers reflect this run, not the graph — they are served through
    and the view stays stale, recomputing on the next request);
    ``from_stored`` builds a fresh caller-owned copy.
    """

    strategy = "footprint-recompute"

    def __init__(self, registry, name, kind, key, compute, footprint,
                 to_stored=lambda result: result,
                 from_stored=lambda stored: stored) -> None:
        super().__init__(registry, name, kind, key)
        self.footprint = footprint
        self._compute = compute
        self._to_stored = to_stored
        self._from_stored = from_stored
        self._stored = _NEVER
        self._version = -1
        self._stats = {"full_recomputes": 0, "restamps": 0, "truncations": 0}

    @property
    def version(self) -> int:
        return self._version

    def sync(self, ctx=None) -> None:
        self._serve(ctx)

    def result(self, ctx=None, **call_kwargs):
        self.served += 1
        return self._serve(ctx, **call_kwargs)

    def _serve(self, ctx=None, **call_kwargs):
        log = self.target.mutation_log
        if self._stored is not _NEVER and self._version == log.version:
            return self._from_stored(self._stored)
        if self._stored is not _NEVER:
            records = log.records_since(self._version)
            if records is None:
                self._stats["truncations"] += 1
            elif not any(self.footprint.intersects(record)
                         for record in records):
                self._version = log.version
                self._stats["restamps"] += 1
                return self._from_stored(self._stored)
        version = log.version
        result = self._compute(ctx, call_kwargs)
        self._stats["full_recomputes"] += 1
        stored = self._to_stored(result)
        if stored is None:  # degraded: serve through, stay stale
            return result
        self._stored = stored
        self._version = version
        return self._from_stored(stored)

    def stats(self) -> dict:
        counters = dict(self._stats)
        counters.update(kind=self.kind, strategy=self.strategy,
                        served=self.served)
        return counters


class ViewRegistry:
    """Named materialized views over one graph/store target."""

    def __init__(self, target) -> None:
        self.target = target
        self._views: dict[str, MaterializedView] = {}
        self._by_key: dict[tuple, MaterializedView] = {}

    # -- registration ------------------------------------------------------

    def _admit(self, name: str, view: MaterializedView) -> MaterializedView:
        existing = self._views.get(name)
        if existing is not None:
            if existing.key == view.key:
                return existing
            raise ViewError(
                f"view {name!r} is already registered with a different "
                "query; unregister it first or pick another name")
        self._views[name] = view
        self._by_key.setdefault(view.key, view)
        return view

    def register_pairs(self, name: str, regex, start_nodes=None,
                       end_nodes=None, *, use_label_index: bool = True,
                       engine: str = "auto",
                       delta_threshold: int | None = None) -> MaterializedView:
        """An ``endpoint_pairs`` view, maintained by delta propagation."""
        graph = _as_graph(self.target)
        core = IncrementalPairs(graph, regex, start_nodes, end_nodes,
                                use_label_index=use_label_index,
                                engine=engine,
                                delta_threshold=delta_threshold)
        key = ("pairs", core.regex.to_text(),
               None if start_nodes is None else frozenset(start_nodes),
               None if end_nodes is None else frozenset(end_nodes))
        return self._admit(name, _PairsView(self, name, key, core))

    def register_count(self, name: str, regex, k: int, start_nodes=None,
                       end_nodes=None, *, use_label_index: bool = True,
                       engine: str = "auto") -> MaterializedView:
        """A ``count_paths_exact`` view.

        Exact path counting is SpanL-hard to maintain under deltas, so
        this view recomputes when touched — but still re-stamps across
        footprint-disjoint mutations, which is where almost all of the
        win is on mixed workloads.
        """
        from repro.core.rpq import count_paths_exact, parse_regex

        parsed = parse_regex(regex) if isinstance(regex, str) else regex
        starts = None if start_nodes is None else list(start_nodes)
        ends = None if end_nodes is None else list(end_nodes)
        graph = _as_graph(self.target)

        def compute(ctx, _call_kwargs):
            return count_paths_exact(graph, parsed, k, starts, ends,
                                     use_label_index=use_label_index,
                                     engine=engine, ctx=ctx)

        key = ("count", parsed.to_text(), k,
               None if starts is None else frozenset(starts),
               None if ends is None else frozenset(ends))
        return self._admit(name, _RecomputeView(
            self, name, "count", key, compute, label_footprint(parsed)))

    def register_pathql(self, name: str, text: str) -> MaterializedView:
        from repro.cache import pathql_footprint
        from repro.query.pathql import parse_pathql, _canonical_key

        query = parse_pathql(text)
        return self._admit(name, self._pathql_view(
            name, text, _canonical_key(query), pathql_footprint(query)))

    def register_sparql(self, name: str, text: str) -> MaterializedView:
        from repro.cache import sparql_footprint
        from repro.query.sparql import parse_sparql

        query = parse_sparql(text)
        return self._admit(name, self._sparql_view(
            name, text, ("sparql", text), sparql_footprint(query)))

    def register_cypher(self, name: str, text: str) -> MaterializedView:
        from repro.cache import cypher_footprint
        from repro.query.cypherish import parse_cypher

        query = parse_cypher(text)
        return self._admit(name, self._cypher_view(
            name, text, ("cypher", text), cypher_footprint(query)))

    # -- view constructors for the three frontends -------------------------

    def _pathql_view(self, name, text, key, footprint) -> _RecomputeView:
        def compute(ctx, call_kwargs):
            from repro.query.pathql import run_pathql
            return run_pathql(self.target, text, ctx=ctx, **call_kwargs)

        def to_stored(result):
            if result.quality != "exact":
                return None
            return (result.mode, tuple(result.paths), result.count,
                    result.quality)

        def from_stored(stored):
            from repro.query.pathql import PathQueryResult
            mode, paths, count, quality = stored
            return PathQueryResult(mode, list(paths), count, quality=quality)

        return _RecomputeView(self, name, "pathql", key, compute, footprint,
                              to_stored, from_stored)

    def _sparql_view(self, name, text, key, footprint) -> _RecomputeView:
        def compute(ctx, call_kwargs):
            from repro.query.sparql import run_sparql
            return run_sparql(self.target, text, ctx=ctx, **call_kwargs)

        def to_stored(result):
            return (result.variables, tuple(result.rows))

        def from_stored(stored):
            from repro.query.sparql import SelectResult
            variables, rows = stored
            return SelectResult(variables, list(rows))

        return _RecomputeView(self, name, "sparql", key, compute, footprint,
                              to_stored, from_stored)

    def _cypher_view(self, name, text, key, footprint) -> _RecomputeView:
        def compute(ctx, call_kwargs):
            from repro.query.cypherish import run_cypher
            return run_cypher(self.target, text, ctx=ctx, **call_kwargs)

        def to_stored(result):
            return (result.columns, tuple(result.rows))

        def from_stored(stored):
            from repro.query.cypherish import CypherResult
            columns, rows = stored
            return CypherResult(columns, list(rows))

        return _RecomputeView(self, name, "cypher", key, compute, footprint,
                              to_stored, from_stored)

    # -- frontend serve hooks ----------------------------------------------

    def _check_target(self, served) -> None:
        if not _same_target(self.target, served):
            raise ViewError(
                "view registry is bound to a different target than the "
                "query was run against; one registry serves one graph")

    def _serve(self, served_target, key, build, **call_kwargs):
        self._check_target(served_target)
        view = self._by_key.get(key)
        if view is None:
            view = build()
        return view.result(**call_kwargs)

    def serve_pathql(self, graph, text: str, *, ctx=None, tracer=None,
                     pool=None, engine: str = "auto"):
        from repro.cache import pathql_footprint
        from repro.query.pathql import parse_pathql, _canonical_key

        query = parse_pathql(text)
        key = _canonical_key(query)

        def build():
            name = f"pathql#{len(self._views)}"
            return self._admit(name, self._pathql_view(
                name, text, key, pathql_footprint(query)))

        return self._serve(graph, key, build, ctx=ctx, tracer=tracer,
                           pool=pool, engine=engine)

    def serve_sparql(self, store, text: str, *, ctx=None, tracer=None,
                     engine: str = "auto"):
        from repro.cache import sparql_footprint
        from repro.query.sparql import parse_sparql

        key = ("sparql", text)

        def build():
            name = f"sparql#{len(self._views)}"
            return self._admit(name, self._sparql_view(
                name, text, key, sparql_footprint(parse_sparql(text))))

        return self._serve(store, key, build, ctx=ctx, tracer=tracer,
                           engine=engine)

    def serve_cypher(self, store, text: str, *, ctx=None, tracer=None,
                     engine: str = "auto"):
        from repro.cache import cypher_footprint
        from repro.query.cypherish import parse_cypher

        key = ("cypher", text)

        def build():
            name = f"cypher#{len(self._views)}"
            return self._admit(name, self._cypher_view(
                name, text, key, cypher_footprint(parse_cypher(text))))

        return self._serve(store, key, build, ctx=ctx, tracer=tracer,
                           engine=engine)

    # -- introspection -----------------------------------------------------

    def get(self, name: str) -> MaterializedView:
        try:
            return self._views[name]
        except KeyError:
            raise ViewError(f"no view named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._views)

    def __contains__(self, name: object) -> bool:
        return name in self._views

    def __len__(self) -> int:
        return len(self._views)

    def result(self, name: str, ctx=None):
        return self.get(name).result(ctx)

    def sync_all(self, ctx=None) -> None:
        for view in self._views.values():
            view.sync(ctx)

    def stats(self) -> dict:
        return {name: view.stats() for name, view in self._views.items()}
