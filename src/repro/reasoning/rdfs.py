"""RDFS entailment as rules: the ontology layer of Section 2.3.

Implements the core RDFS entailment patterns (the ones with visible effect
on instance data) over the rule engine:

- rdfs5  subPropertyOf transitivity
- rdfs7  property inheritance: p1 subPropertyOf p2, (s p1 o) => (s p2 o)
- rdfs9  type inheritance through subClassOf
- rdfs11 subClassOf transitivity
- rdfs2  domain:  p domain C, (s p o) => s rdf:type C
- rdfs3  range:   p range C,  (s p o) => o rdf:type C

This is what makes an RDF graph with an ontology a *knowledge graph* in the
paper's sense: new facts are produced from old ones.
"""

from __future__ import annotations

from repro.models.rdf import RDF_TYPE
from repro.reasoning.rules import Rule, RuleAtom, RuleEngine, Var
from repro.storage.triple_store import TripleStore

RDFS_SUBCLASS = "rdfs:subClassOf"
RDFS_SUBPROPERTY = "rdfs:subPropertyOf"
RDFS_DOMAIN = "rdfs:domain"
RDFS_RANGE = "rdfs:range"


def rdfs_rules() -> list[Rule]:
    """The RDFS entailment rules listed above."""
    s, p, o = Var("s"), Var("p"), Var("o")
    p1, p2, p3 = Var("p1"), Var("p2"), Var("p3")
    c1, c2, c3 = Var("c1"), Var("c2"), Var("c3")
    return [
        # rdfs11: subclass transitivity
        Rule(RuleAtom(c1, RDFS_SUBCLASS, c3),
             [RuleAtom(c1, RDFS_SUBCLASS, c2),
              RuleAtom(c2, RDFS_SUBCLASS, c3)]),
        # rdfs9: instance type inheritance
        Rule(RuleAtom(s, RDF_TYPE, c2),
             [RuleAtom(s, RDF_TYPE, c1),
              RuleAtom(c1, RDFS_SUBCLASS, c2)]),
        # rdfs5: subproperty transitivity
        Rule(RuleAtom(p1, RDFS_SUBPROPERTY, p3),
             [RuleAtom(p1, RDFS_SUBPROPERTY, p2),
              RuleAtom(p2, RDFS_SUBPROPERTY, p3)]),
        # rdfs7: property inheritance
        Rule(RuleAtom(s, p2, o),
             [RuleAtom(s, p1, o),
              RuleAtom(p1, RDFS_SUBPROPERTY, p2)]),
        # rdfs2: domain
        Rule(RuleAtom(s, RDF_TYPE, c1),
             [RuleAtom(p, RDFS_DOMAIN, c1),
              RuleAtom(s, p, o)]),
        # rdfs3: range
        Rule(RuleAtom(o, RDF_TYPE, c1),
             [RuleAtom(p, RDFS_RANGE, c1),
              RuleAtom(s, p, o)]),
    ]


def rdfs_closure(store: TripleStore) -> int:
    """Materialize the RDFS closure in place; returns the number of new triples."""
    return RuleEngine(rdfs_rules()).materialize(store)
