"""Producing knowledge by deduction (Section 2.3).

The paper: knowledge graphs "produce new knowledge ... deducing, e.g. by
means of logical reasoners".  This package provides the two standard
flavours over the RDF model:

- :mod:`repro.reasoning.rules` — a Datalog-style rule engine over triple
  patterns with semi-naive forward chaining (fixpoint materialization).
- :mod:`repro.reasoning.rdfs` — the RDFS entailment rules (subclass,
  subproperty, domain, range) expressed in that engine, i.e. the ontology
  layer the paper calls "the main concepts ... ontologies to integrate
  knowledge".
"""

from repro.reasoning.rules import Rule, RuleAtom, RuleEngine, Var
from repro.reasoning.rdfs import (
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASS,
    RDFS_SUBPROPERTY,
    rdfs_closure,
    rdfs_rules,
)

__all__ = [
    "Var", "RuleAtom", "Rule", "RuleEngine",
    "rdfs_rules", "rdfs_closure",
    "RDFS_SUBCLASS", "RDFS_SUBPROPERTY", "RDFS_DOMAIN", "RDFS_RANGE",
]
