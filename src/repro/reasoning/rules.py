"""A Datalog-style rule engine over triples, with semi-naive evaluation.

Rules have the shape ``head :- body1, body2, ...`` where head and body
atoms are triple patterns mixing constants and variables::

    Rule(RuleAtom(Var("x"), "rdf:type", Var("c2")),
         [RuleAtom(Var("x"), "rdf:type", Var("c1")),
          RuleAtom(Var("c1"), "rdfs:subClassOf", Var("c2"))])

:class:`RuleEngine` materializes the least fixpoint into a
:class:`repro.storage.TripleStore`.  Evaluation is semi-naive: each round
only joins against the delta derived in the previous round, the classic
optimization that keeps forward chaining from re-deriving everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.errors import LogicError
from repro.models.rdf import Triple
from repro.storage.triple_store import TripleStore


@dataclass(frozen=True)
class Var:
    """A rule variable (distinct from constants by type, not by syntax)."""

    name: str


@dataclass(frozen=True)
class RuleAtom:
    """A triple pattern over constants and variables."""

    subject: str | Var
    predicate: str | Var
    object: str | Var

    def variables(self) -> set[str]:
        return {t.name for t in (self.subject, self.predicate, self.object)
                if isinstance(t, Var)}

    def ground(self, binding: dict[str, str]) -> Triple:
        return Triple(_resolve(self.subject, binding),
                      _resolve(self.predicate, binding),
                      _resolve(self.object, binding))

    def match(self, triple: Triple, binding: dict[str, str]) -> dict[str, str] | None:
        """Extend ``binding`` to match ``triple``, or None."""
        extended = dict(binding)
        for term, value in ((self.subject, triple.subject),
                            (self.predicate, triple.predicate),
                            (self.object, triple.object)):
            if isinstance(term, Var):
                bound = extended.get(term.name)
                if bound is None:
                    extended[term.name] = value
                elif bound != value:
                    return None
            elif term != value:
                return None
        return extended


def _resolve(term: str | Var, binding: dict[str, str]) -> str:
    if isinstance(term, Var):
        try:
            return binding[term.name]
        except KeyError:
            raise LogicError(f"unbound rule variable ?{term.name}") from None
    return term


@dataclass(frozen=True)
class Rule:
    """``head :- body``.  Every head variable must occur in the body (safety)."""

    head: RuleAtom
    body: tuple[RuleAtom, ...]

    def __init__(self, head: RuleAtom, body: Iterable[RuleAtom]) -> None:
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))
        if not self.body:
            raise LogicError("rules need a non-empty body (facts go in the store)")
        body_vars = set().union(*(atom.variables() for atom in self.body))
        unsafe = self.head.variables() - body_vars
        if unsafe:
            raise LogicError(f"unsafe rule: head variables {sorted(unsafe)} "
                             "not bound by the body")


class RuleEngine:
    """Semi-naive forward chaining to a fixpoint."""

    def __init__(self, rules: Iterable[Rule]) -> None:
        self.rules = list(rules)

    def materialize(self, store: TripleStore, *,
                    max_rounds: int | None = None) -> int:
        """Add all derivable triples to ``store``; returns how many were new.

        ``max_rounds`` bounds the iteration (None = run to fixpoint; the
        fixpoint always exists because rules only add triples over the
        finite vocabulary of the store plus rule constants).
        """
        total_new = 0
        delta = list(store.triples())
        rounds = 0
        while delta:
            rounds += 1
            if max_rounds is not None and rounds > max_rounds:
                break
            # Compute the round's consequences first, then insert, so the
            # store is never mutated while its indexes are being iterated.
            facts: set[Triple] = set()
            for rule in self.rules:
                for binding in self._bindings_with_delta(rule, store, delta):
                    facts.add(rule.head.ground(binding))
            derived = [fact for fact in facts if store.add(*fact)]
            total_new += len(derived)
            delta = derived
        return total_new

    def _bindings_with_delta(self, rule: Rule, store: TripleStore,
                             delta: list[Triple]):
        """Join the body, requiring at least one atom to match the delta.

        Semi-naive: for each position i, atom i ranges over the delta and
        the remaining atoms over the full store.
        """
        delta_set = set(delta)
        seen: set[tuple] = set()
        for pivot in range(len(rule.body)):
            for binding in self._join(rule.body, 0, {}, store, pivot, delta_set):
                key = tuple(sorted(binding.items()))
                if key not in seen:
                    seen.add(key)
                    yield binding

    def _join(self, body: tuple[RuleAtom, ...], index: int,
              binding: dict[str, str], store: TripleStore,
              pivot: int, delta: set[Triple]):
        if index == len(body):
            yield binding
            return
        atom = body[index]
        subject = _bound_or_none(atom.subject, binding)
        predicate = _bound_or_none(atom.predicate, binding)
        obj = _bound_or_none(atom.object, binding)
        candidates = list(store.match(subject, predicate, obj))
        for triple in candidates:
            if index == pivot and triple not in delta:
                continue
            extended = atom.match(triple, binding)
            if extended is not None:
                yield from self._join(body, index + 1, extended, store,
                                      pivot, delta)


def _bound_or_none(term: str | Var, binding: dict[str, str]) -> str | None:
    if isinstance(term, Var):
        return binding.get(term.name)
    return term
