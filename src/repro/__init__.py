"""repro — querying in the age of graph databases and knowledge graphs.

A from-scratch Python reproduction of the systems described in the SIGMOD
2021 tutorial by Arenas, Gutierrez and Sequeda:

- the graph data models of Section 3 (:mod:`repro.models`);
- the regular path queries of Section 4 with exact/approximate counting,
  uniform generation and polynomial-delay enumeration
  (:mod:`repro.core.rpq`);
- knowledge-aware centrality, Section 4.2 (:mod:`repro.core.centrality`);
- declarative vs procedural node extraction, Section 4.3
  (:mod:`repro.core.logic`, :mod:`repro.core.gnn`);
- graph analytics (:mod:`repro.analytics`), graph-database storage
  (:mod:`repro.storage`), the relational baseline (:mod:`repro.relational`)
  and declarative query languages (:mod:`repro.query`).

Quickstart::

    from repro import figure2_labeled, parse_regex, enumerate_paths

    graph = figure2_labeled()
    regex = parse_regex("?person/contact/?infected")
    for path in enumerate_paths(graph, regex, 1):
        print(path)
"""

from repro.models import (
    BOTTOM,
    LabeledGraph,
    MultiGraph,
    PropertyGraph,
    RDFGraph,
    Triple,
    VectorGraph,
    VectorSchema,
    figure2_labeled,
    figure2_property,
    figure2_vector,
)
from repro.core.rpq import (
    ApproxPathCounter,
    Path,
    UniformPathSampler,
    count_paths_bruteforce,
    count_paths_exact,
    endpoint_pairs,
    enumerate_paths,
    enumerate_paths_up_to,
    evaluate_bruteforce,
    nodes_matching,
    parse_regex,
    parse_test,
    paths_matching,
)
from repro.core.centrality import (
    approximate_regex_betweenness,
    betweenness_centrality,
    regex_betweenness,
)
from repro.core.logic import evaluate_modal, regex_to_fo, regex_to_fo2
from repro.core.gnn import compile_modal_formula, wl_node_colors, wl_test
from repro.storage import PropertyGraphStore, TripleStore
from repro.query import run_cypher, run_sparql

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # models
    "MultiGraph", "LabeledGraph", "RDFGraph", "Triple", "PropertyGraph",
    "VectorGraph", "VectorSchema", "BOTTOM",
    "figure2_labeled", "figure2_property", "figure2_vector",
    # rpq
    "Path", "parse_regex", "parse_test", "evaluate_bruteforce",
    "paths_matching", "endpoint_pairs", "nodes_matching",
    "count_paths_exact", "count_paths_bruteforce",
    "enumerate_paths", "enumerate_paths_up_to",
    "UniformPathSampler", "ApproxPathCounter",
    # centrality
    "betweenness_centrality", "regex_betweenness",
    "approximate_regex_betweenness",
    # logic / gnn
    "evaluate_modal", "regex_to_fo", "regex_to_fo2",
    "compile_modal_formula", "wl_node_colors", "wl_test",
    # storage / query
    "TripleStore", "PropertyGraphStore", "run_sparql", "run_cypher",
]
