"""A mini-Cypher engine over :class:`repro.storage.PropertyGraphStore`.

Supported grammar (a practical core of openCypher)::

    query   := MATCH pattern (',' pattern)* [WHERE expr] RETURN [DISTINCT]
               item (',' item)* [ORDER BY key [DESC]] [SKIP n] [LIMIT n]
    pattern := node (rel node)*
    node    := '(' [var] [':' label] [props] ')'
    rel     := '-[' [var] [':' label] ['*' [min] '..' [max]] ']->'   (right)
             | '<-[' ... ']-'                                        (left)
             | '-[' ... ']-'                                         (either)
    props   := '{' key ':' value (',' key ':' value)* '}'
    expr    := disjunction of conjunctions of [NOT] comparisons
    item    := value-expr [AS alias];  value-expr := var | var '.' prop

Evaluation is backtracking pattern matching over the store's label and
adjacency indexes, with variable-length relationships expanded breadth
first between their bounds (binding the relationship variable to the edge
list).  Comparisons are numeric when both sides look numeric, otherwise
lexicographic, matching the string-valued property model.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import QueryEvaluationError, QuerySyntaxError
from repro.storage.property_store import PropertyGraphStore

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<keyword>(?i:MATCH|WHERE|RETURN|DISTINCT|ORDER|BY|LIMIT|SKIP|AS|AND|OR|NOT|DESC|ASC)\b)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<op><=|>=|<>|<-|->|\.\.|[()\[\]{}:,.\-*=<>])
""", re.VERBOSE)


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match:
            raise QuerySyntaxError(f"cannot read {text[position:position + 10]!r}",
                                   position)
        if match.lastgroup != "ws":
            value = match.group()
            kind = match.lastgroup
            if kind == "keyword":
                value = value.upper()
            tokens.append(_Token(kind, value, position))
        position = match.end()
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodePattern:
    var: str | None
    label: str | None
    properties: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class RelPattern:
    var: str | None
    label: str | None
    direction: str  # 'out', 'in', 'both'
    min_hops: int = 1
    max_hops: int = 1

    @property
    def variable_length(self) -> bool:
        return (self.min_hops, self.max_hops) != (1, 1)


@dataclass(frozen=True)
class PathPattern:
    nodes: tuple[NodePattern, ...]
    rels: tuple[RelPattern, ...]


@dataclass(frozen=True)
class ValueExpr:
    """``var`` (a node/edge id) or ``var.prop`` (a property lookup)."""

    var: str
    prop: str | None = None
    constant: str | None = None

    @classmethod
    def const(cls, value: str) -> "ValueExpr":
        return cls("", None, value)


@dataclass(frozen=True)
class Condition:
    left: ValueExpr
    op: str
    right: ValueExpr
    negated: bool = False


@dataclass(frozen=True)
class BoolExpr:
    """Disjunction of conjunctions of conditions (no nested parentheses)."""

    clauses: tuple[tuple[Condition, ...], ...]


@dataclass(frozen=True)
class ReturnItem:
    expr: ValueExpr
    alias: str


@dataclass(frozen=True)
class CypherQuery:
    patterns: tuple[PathPattern, ...]
    where: BoolExpr | None
    items: tuple[ReturnItem, ...]
    distinct: bool
    order_by: str | None
    descending: bool
    skip: int
    limit: int | None


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.pos = 0

    def _peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of query")
        self.pos += 1
        return token

    def _accept(self, kind: str, value: str | None = None) -> _Token | None:
        token = self._peek()
        if token and token.kind == kind and (value is None or token.value == value):
            self.pos += 1
            return token
        return None

    def _expect(self, kind: str, value: str | None = None) -> _Token:
        token = self._accept(kind, value)
        if token is None:
            found = self._peek()
            shown = found.value if found else "end of query"
            where = found.position if found else None
            raise QuerySyntaxError(f"expected {value or kind}, found {shown!r}", where)
        return token

    def parse(self) -> CypherQuery:
        self._expect("keyword", "MATCH")
        patterns = [self._parse_path()]
        while self._accept("op", ","):
            patterns.append(self._parse_path())
        where = None
        if self._accept("keyword", "WHERE"):
            where = self._parse_bool()
        self._expect("keyword", "RETURN")
        distinct = bool(self._accept("keyword", "DISTINCT"))
        items = [self._parse_item()]
        while self._accept("op", ","):
            items.append(self._parse_item())
        order_by = None
        descending = False
        if self._accept("keyword", "ORDER"):
            self._expect("keyword", "BY")
            order_by = self._parse_order_key(items)
            if self._accept("keyword", "DESC"):
                descending = True
            else:
                self._accept("keyword", "ASC")
        skip = 0
        if self._accept("keyword", "SKIP"):
            skip = int(self._expect("number").value)
        limit = None
        if self._accept("keyword", "LIMIT"):
            limit = int(self._expect("number").value)
        if self._peek() is not None:
            raise QuerySyntaxError(f"trailing input {self._peek().value!r}",
                                   self._peek().position)
        return CypherQuery(tuple(patterns), where, tuple(items), distinct,
                           order_by, descending, skip, limit)

    # -- patterns -------------------------------------------------------------

    def _parse_path(self) -> PathPattern:
        nodes = [self._parse_node()]
        rels: list[RelPattern] = []
        while True:
            rel = self._try_parse_rel()
            if rel is None:
                return PathPattern(tuple(nodes), tuple(rels))
            rels.append(rel)
            nodes.append(self._parse_node())

    def _parse_node(self) -> NodePattern:
        self._expect("op", "(")
        var = None
        label = None
        token = self._peek()
        if token and token.kind == "name":
            var = self._next().value
        if self._accept("op", ":"):
            label = self._expect("name").value
        properties: list[tuple[str, str]] = []
        if self._accept("op", "{"):
            while True:
                key = self._expect("name").value
                self._expect("op", ":")
                properties.append((key, self._parse_value()))
                if not self._accept("op", ","):
                    break
            self._expect("op", "}")
        self._expect("op", ")")
        return NodePattern(var, label, tuple(properties))

    def _try_parse_rel(self) -> RelPattern | None:
        token = self._peek()
        if token is None or token.kind != "op" or token.value not in ("-", "<-"):
            return None
        incoming = token.value == "<-"
        self._next()
        var = None
        label = None
        min_hops = max_hops = 1
        if self._accept("op", "["):
            name = self._accept("name")
            if name:
                var = name.value
            if self._accept("op", ":"):
                label = self._expect("name").value
            if self._accept("op", "*"):
                min_hops, max_hops = 1, _DEFAULT_MAX_HOPS
                low = self._accept("number")
                if low:
                    min_hops = int(low.value)
                    max_hops = min_hops
                if self._accept("op", ".."):
                    max_hops = _DEFAULT_MAX_HOPS
                    high = self._accept("number")
                    if high:
                        max_hops = int(high.value)
            self._expect("op", "]")
        if incoming:
            self._expect("op", "-")
            direction = "in"
        elif self._accept("op", "->"):
            direction = "out"
        else:
            self._expect("op", "-")
            direction = "both"
        if min_hops > max_hops:
            raise QuerySyntaxError("variable-length bounds are inverted")
        return RelPattern(var, label, direction, min_hops, max_hops)

    def _parse_value(self) -> str:
        token = self._next()
        if token.kind == "string":
            return _unquote(token.value)
        if token.kind == "number":
            return token.value
        raise QuerySyntaxError(f"expected a value, found {token.value!r}",
                               token.position)

    # -- expressions ------------------------------------------------------------

    def _parse_bool(self) -> BoolExpr:
        clauses = [self._parse_conjunction()]
        while self._accept("keyword", "OR"):
            clauses.append(self._parse_conjunction())
        return BoolExpr(tuple(clauses))

    def _parse_conjunction(self) -> tuple[Condition, ...]:
        conditions = [self._parse_condition()]
        while self._accept("keyword", "AND"):
            conditions.append(self._parse_condition())
        return tuple(conditions)

    def _parse_condition(self) -> Condition:
        negated = bool(self._accept("keyword", "NOT"))
        left = self._parse_value_expr()
        token = self._next()
        if token.kind != "op" or token.value not in ("=", "<>", "<", ">", "<=", ">="):
            raise QuerySyntaxError(f"expected a comparison, found {token.value!r}",
                                   token.position)
        right = self._parse_value_expr()
        return Condition(left, token.value, right, negated)

    def _parse_value_expr(self) -> ValueExpr:
        token = self._next()
        if token.kind == "name":
            if self._accept("op", "."):
                prop = self._expect("name").value
                return ValueExpr(token.value, prop)
            return ValueExpr(token.value)
        if token.kind == "string":
            return ValueExpr.const(_unquote(token.value))
        if token.kind == "number":
            return ValueExpr.const(token.value)
        raise QuerySyntaxError(f"expected a value expression, found "
                               f"{token.value!r}", token.position)

    def _parse_item(self) -> ReturnItem:
        expr = self._parse_value_expr()
        if self._accept("keyword", "AS"):
            alias = self._expect("name").value
        elif expr.prop is not None:
            alias = f"{expr.var}.{expr.prop}"
        else:
            alias = expr.var
        return ReturnItem(expr, alias)

    def _parse_order_key(self, items: list[ReturnItem]) -> str:
        expr = self._parse_value_expr()
        if expr.prop is not None:
            return f"{expr.var}.{expr.prop}"
        return expr.var


_DEFAULT_MAX_HOPS = 8


def _unquote(token: str) -> str:
    body = token[1:-1]
    return body.replace('\\"', '"').replace("\\'", "'").replace("\\\\", "\\")


def parse_cypher(text: str) -> CypherQuery:
    """Parse a mini-Cypher query."""
    return _Parser(text).parse()


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


@dataclass
class CypherResult:
    """Query answer: column aliases plus rows."""

    columns: tuple[str, ...]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def bindings(self):
        for row in self.rows:
            yield dict(zip(self.columns, row))


def run_cypher(store: PropertyGraphStore, text: str, *,
               ctx=None, tracer=None, cache=None, view=None,
               engine: str = "auto") -> CypherResult:
    """Parse and evaluate a query against a property-graph store.

    With an execution :class:`~repro.exec.Context` the backtracking matcher
    checkpoints once per candidate node binding (site ``cypher.match``) and
    once per relationship expansion (site ``cypher.expand``); budget
    exhaustion raises :class:`~repro.errors.BudgetExceeded` — a truncated
    match set would silently drop rows, so no partial answer is offered.

    With a :class:`~repro.obs.Tracer` the run records ``parse`` and
    ``evaluate`` spans (strategy, pattern counts, rows returned);
    ``tracer=None`` takes the exact pre-tracing code path.

    With a :class:`~repro.cache.QueryCache` (``cache=``), results are
    memoized under the parsed query (a frozen AST, so formatting variants
    share an entry) against the store's *live* property graph — the store
    delegates its version to the graph, so any intersecting graph mutation
    invalidates the entry.  The footprint covers pattern labels (or the
    whole node/edge set for unlabeled patterns) plus every property name
    read by property maps, WHERE, or RETURN.

    ``engine`` selects how *variable-length* relationships are expanded.
    The scalar expansion enumerates walks (each distinct edge sequence is
    one match); the vector expansion tracks per-depth *node sets* instead,
    which collapses walk multiplicities — sound exactly for ``RETURN
    DISTINCT`` patterns that do not bind the relationship variable, so
    anything else (including a forced ``engine="vector"``) is demoted to
    scalar with the demotion recorded in the stats notes.

    With a :class:`~repro.ivm.ViewRegistry` (``view=``), the query is
    served from a continuously maintained materialized view bound to this
    store (:class:`~repro.errors.ViewError` for any other target);
    ``cache=`` is ignored for view-served queries — the view is the memo.
    """
    if view is not None:
        return view.serve_cypher(store, text, ctx=ctx, tracer=tracer,
                                 engine=engine)
    if tracer is None:
        return _run_cypher(store, text, ctx, cache=cache, engine=engine)
    with tracer.span("parse", frontend="cypher"):
        query = parse_cypher(text)
    with tracer.span("evaluate", ctx=ctx,
                     strategy="backtracking-match") as span:
        span.attrs["patterns"] = len(query.patterns)
        result = _run_cypher(store, text, ctx, query=query, cache=cache,
                             engine=engine)
        span.attrs["rows"] = len(result.rows)
        return result


def _run_cypher(store: PropertyGraphStore, text: str, ctx=None, *,
                query: CypherQuery | None = None, cache=None,
                engine: str = "auto") -> CypherResult:
    if query is None:
        query = parse_cypher(text)
    if cache is not None:
        from repro.cache import MISS, cypher_footprint

        key = ("cypher", query)
        hit = cache.lookup(store, key)
        if hit is not MISS:
            columns, rows = hit
            return CypherResult(columns, list(rows))
        result = _run_cypher(store, text, ctx, query=query, engine=engine)
        cache.store(store, key, cypher_footprint(query),
                    (result.columns, tuple(result.rows)))
        return result
    from repro.core.rpq.vectorized.engine import resolve_engine

    resolved, reason = resolve_engine(engine, store.graph)
    if resolved == "vector" and not query.distinct:
        # Walk multiplicities are part of a non-DISTINCT answer; the
        # set-semantics expansion would silently collapse them.
        resolved = "scalar"
        reason = ("vector demoted: non-DISTINCT query returns walk "
                  "multiplicities (set-semantics expansion would drop rows)")
    if ctx is not None:
        ctx.stats.notes["engine"] = resolved
        ctx.stats.notes["engine_reason"] = reason
    bindings = [{}]
    for pattern in query.patterns:
        bindings = _match_path(store, pattern, bindings, ctx, engine=resolved)
    if query.where is not None:
        bindings = [b for b in bindings if _bool_holds(store, query.where, b)]

    columns = tuple(item.alias for item in query.items)
    rows = [tuple(_item_value(store, item.expr, binding) for item in query.items)
            for binding in bindings]
    if query.distinct:
        seen = set()
        unique = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        rows = unique
    if query.order_by is not None:
        if query.order_by not in columns:
            raise QueryEvaluationError(
                f"ORDER BY key {query.order_by!r} is not returned")
        index = columns.index(query.order_by)
        rows.sort(key=lambda row: _comparable(row[index]),
                  reverse=query.descending)
    else:
        rows.sort(key=lambda row: tuple(str(v) for v in row))
    if query.skip:
        rows = rows[query.skip:]
    if query.limit is not None:
        rows = rows[: query.limit]
    return CypherResult(columns, rows)


def _match_path(store: PropertyGraphStore, pattern: PathPattern,
                bindings: list[dict], ctx=None, *,
                engine: str = "scalar") -> list[dict]:
    results: list[dict] = []
    for binding in bindings:
        results.extend(_match_from(store, pattern, 0, binding, ctx,
                                   engine=engine))
    return results


def _match_from(store: PropertyGraphStore, pattern: PathPattern,
                position: int, binding: dict, ctx=None, *,
                engine: str = "scalar") -> list[dict]:
    node_pattern = pattern.nodes[position]
    candidates = _node_candidates(store, node_pattern, binding)
    solutions: list[dict] = []
    for node in candidates:
        if ctx is not None:
            ctx.checkpoint("cypher.match")
        extended = _bind_node(node_pattern, node, binding, store)
        if extended is None:
            continue
        solutions.extend(_match_tail(store, pattern, position, node, extended,
                                     ctx, engine=engine))
    return solutions


def _match_tail(store: PropertyGraphStore, pattern: PathPattern,
                position: int, node, binding: dict, ctx=None, *,
                engine: str = "scalar") -> list[dict]:
    if position == len(pattern.rels):
        return [binding]
    rel = pattern.rels[position]
    solutions: list[dict] = []
    for next_node, with_rel in _expand_rel(store, rel, node, binding, ctx,
                                           engine=engine):
        next_pattern = pattern.nodes[position + 1]
        target_check = _bind_node(next_pattern, next_node, with_rel, store)
        if target_check is None:
            continue
        solutions.extend(_match_tail(store, pattern, position + 1,
                                     next_node, target_check, ctx,
                                     engine=engine))
    return solutions


def _node_candidates(store: PropertyGraphStore, pattern: NodePattern,
                     binding: dict):
    if pattern.var and pattern.var in binding:
        return [binding[pattern.var]]
    graph = store.graph
    if pattern.properties:
        prop, value = pattern.properties[0]
        candidates = store.nodes_with_property(prop, value)
        if pattern.label is not None:
            candidates &= store.nodes_with_label(pattern.label)
        return sorted(candidates, key=str)
    if pattern.label is not None:
        return sorted(store.nodes_with_label(pattern.label), key=str)
    return sorted(graph.nodes(), key=str)


def _bind_node(pattern: NodePattern, node, binding: dict,
               store: PropertyGraphStore) -> dict | None:
    """Bind a node pattern, checking consistency, label and properties."""
    if pattern.var and pattern.var in binding and binding[pattern.var] != node:
        return None
    if not _node_matches(store, pattern, node):
        return None
    extended = dict(binding)
    if pattern.var:
        extended[pattern.var] = node
    return extended


def _node_matches(store: PropertyGraphStore, pattern: NodePattern, node) -> bool:
    graph = store.graph
    if pattern.label is not None and graph.node_label(node) != pattern.label:
        return False
    for prop, value in pattern.properties:
        if graph.node_property(node, prop) != value:
            return False
    return True


def _expand_rel(store: PropertyGraphStore, rel: RelPattern, node, binding: dict,
                ctx=None, *, engine: str = "scalar"):
    """Yield (target node, binding-with-rel-var) for one relationship pattern."""
    if not rel.variable_length:
        for edge, neighbor in store.expand(node, rel.label, direction=rel.direction):
            if ctx is not None:
                ctx.checkpoint("cypher.expand")
            if rel.var and rel.var in binding and binding[rel.var] != edge:
                continue
            extended = dict(binding)
            if rel.var:
                extended[rel.var] = edge
            yield neighbor, extended
        return
    if engine == "vector" and rel.var is None:
        yield from _expand_rel_dedup(store, rel, node, binding, ctx)
        return
    # Variable-length: BFS between the bounds, binding the var to edge lists.
    frontier = [(node, ())]
    for depth in range(1, rel.max_hops + 1):
        next_frontier = []
        for current, edges in frontier:
            if ctx is not None:
                ctx.checkpoint("cypher.expand")
                ctx.note_frontier(len(frontier), "cypher.expand")
            for edge, neighbor in store.expand(current, rel.label,
                                               direction=rel.direction):
                next_frontier.append((neighbor, edges + (edge,)))
        frontier = next_frontier
        if depth >= rel.min_hops:
            for target, edges in frontier:
                extended = dict(binding)
                if rel.var:
                    extended[rel.var] = edges
                yield target, extended
        if not frontier:
            return


def _expand_rel_dedup(store: PropertyGraphStore, rel: RelPattern, node,
                      binding: dict, ctx=None):
    """Variable-length expansion over per-depth *node sets* (vector engine).

    ``frontier`` holds the nodes reachable by some walk of exactly the
    current depth — bounded by the node count, where the walk enumeration
    is bounded by the walk count.  Per-depth sets (rather than a
    visited-once BFS) matter for correctness: a node whose shortest walk
    is below ``min_hops`` may still be reachable by a longer, eligible
    walk through a cycle.  Each eligible target is emitted once, in
    sorted order at its first eligible depth; the caller guaranteed
    DISTINCT semantics, so the collapsed multiplicities are unobservable.
    Checkpoints land per depth (site ``cypher.expand``), charged with the
    frontier size.
    """
    frontier = {node}
    emitted = set()
    for depth in range(1, rel.max_hops + 1):
        if ctx is not None:
            ctx.checkpoint("cypher.expand", steps=max(1, len(frontier)))
            ctx.note_frontier(len(frontier), "cypher.expand")
        next_frontier = set()
        for current in frontier:
            for _, neighbor in store.expand(current, rel.label,
                                            direction=rel.direction):
                next_frontier.add(neighbor)
        frontier = next_frontier
        if depth >= rel.min_hops:
            for target in sorted(frontier - emitted, key=str):
                emitted.add(target)
                yield target, dict(binding)
        if not frontier:
            return


def _item_value(store: PropertyGraphStore, expr: ValueExpr, binding: dict):
    if expr.constant is not None:
        return expr.constant
    if expr.var not in binding:
        raise QueryEvaluationError(f"unbound variable {expr.var!r} in RETURN/WHERE")
    value = binding[expr.var]
    if expr.prop is None:
        return value
    graph = store.graph
    if graph.has_node(value):
        return graph.node_property(value, expr.prop)
    if graph.has_edge(value):
        return graph.edge_property(value, expr.prop)
    raise QueryEvaluationError(
        f"{expr.var!r} is bound to {value!r}, which has no properties")


def _bool_holds(store: PropertyGraphStore, expr: BoolExpr, binding: dict) -> bool:
    for clause in expr.clauses:
        if all(_condition_holds(store, condition, binding) for condition in clause):
            return True
    return False


def _condition_holds(store: PropertyGraphStore, condition: Condition,
                     binding: dict) -> bool:
    left = _item_value(store, condition.left, binding)
    right = _item_value(store, condition.right, binding)
    result = _compare_values(left, right, condition.op)
    return (not result) if condition.negated else result


def _compare_values(left, right, op: str) -> bool:
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if left is None or right is None:
        return False
    left_key, right_key = _comparable(left), _comparable(right)
    if op == "<":
        return left_key < right_key
    if op == ">":
        return left_key > right_key
    if op == "<=":
        return left_key <= right_key
    return left_key >= right_key


def _comparable(value):
    if value is None:
        return (2, 0.0, "")
    try:
        return (0, float(value), "")
    except (TypeError, ValueError):
        return (1, 0.0, str(value))


def store_for_graph(graph) -> PropertyGraphStore:
    """Build the indexed :class:`PropertyGraphStore` this engine queries.

    Cypher's data model *is* the property graph, so no conversion is
    offered: the input must be a :class:`~repro.models.PropertyGraph` or a
    :class:`~repro.storage.GraphBackend` carrying the property read
    surface (``node_properties`` — e.g. the disk-backed CSR reader over a
    property store's segments); anything else raises
    :class:`~repro.errors.ConversionError`.  Shared by the CLI and the
    batch engine so both reject the same inputs with the same error.
    """
    from repro.errors import ConversionError
    from repro.models import PropertyGraph
    from repro.storage.backend import is_graph_backend

    if not isinstance(graph, PropertyGraph) and not (
            is_graph_backend(graph) and hasattr(graph, "node_properties")):
        raise ConversionError(
            f"cypher needs a property graph, got {type(graph).__name__}")
    return PropertyGraphStore(graph)
