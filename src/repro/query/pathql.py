"""PathQL: a tiny declarative language for the paper's path extraction modes.

Section 4.1 presents three complementary ways to consume the (possibly
huge) answer set of a regular path query: enumerate with small delay,
count (exactly or within epsilon), and sample uniformly.  PathQL exposes
exactly those as query modes over any graph model::

    PATHS MATCHING ?person/rides/?bus/rides^-/?infected LENGTH 2 LIMIT 10
    PATHS MATCHING (r + s)*/r LENGTH 5 COUNT
    PATHS MATCHING (r + s)*/r LENGTH 5 COUNT APPROX 0.1 SEED 7
    PATHS MATCHING (r + s)*/r LENGTH 4 SAMPLE 20 SEED 1
    PATHS MATCHING contact* FROM n4 TO n2 SHORTEST LIMIT 5

Clauses:

- ``MATCHING <regex>`` — the paper's grammar (1), parsed by
  :func:`repro.core.rpq.parse_regex`; everything up to the next keyword.
- ``FROM <node>`` / ``TO <node>`` — endpoint restrictions.
- ``LENGTH k`` (exact) or ``MAXLENGTH k`` (enumerate 0..k) or ``SHORTEST``
  (the shortest conforming length between FROM and TO).
- mode: ``LIMIT n`` (enumerate; default), ``COUNT`` (exact),
  ``COUNT APPROX <eps>`` (FPRAS), ``SAMPLE n`` (uniform generation).
- ``SEED s`` — determinism for the randomized modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.rpq import (
    ApproxPathCounter,
    Path,
    UniformPathSampler,
    count_paths_exact,
    enumerate_paths,
    enumerate_paths_up_to,
    parse_regex,
)
from repro.core.rpq.ast import Regex
from repro.core.rpq.evaluate import shortest_conforming_length
from repro.core.rpq.nfa import compile_regex
from repro.errors import BudgetExceeded, QueryEvaluationError, QuerySyntaxError
from repro.exec.budget import DegradationEvent
from repro.exec.governor import count_paths_governed

_KEYWORDS = {"FROM", "TO", "LENGTH", "MAXLENGTH", "SHORTEST", "COUNT",
             "APPROX", "SAMPLE", "LIMIT", "SEED"}


@dataclass
class PathQuery:
    """Parsed form of a PathQL statement."""

    regex: Regex
    source: str | None = None
    target: str | None = None
    length: int | None = None
    max_length: int | None = None
    shortest: bool = False
    mode: str = "enumerate"  # 'enumerate' | 'count' | 'count-approx' | 'sample'
    limit: int | None = None
    samples: int = 0
    epsilon: float = 0.1
    seed: int | None = None


@dataclass
class PathQueryResult:
    """Answer of a PathQL statement: paths and/or a count.

    ``quality`` records what the execution governor delivered relative to
    what the query asked for: ``"exact"`` (the full-fidelity answer —
    including an explicitly requested ``COUNT APPROX``), ``"approx"`` (an
    exact count degraded to an FPRAS estimate), ``"lower-bound"`` (a count
    degraded to a partial enumeration total), or ``"partial"`` (an
    enumeration cut off by the budget).  ``degradations`` lists the
    :class:`~repro.exec.DegradationEvent` steps that led there; empty for
    ungoverned or within-budget runs.
    """

    mode: str
    paths: list[Path] = field(default_factory=list)
    count: float | None = None
    quality: str = "exact"
    degradations: tuple = ()

    def __len__(self) -> int:
        return len(self.paths)

    @property
    def is_degraded(self) -> bool:
        return bool(self.degradations)


def parse_pathql(text: str) -> PathQuery:
    """Parse a PathQL statement."""
    tokens = _tokenize(text)
    if len(tokens) < 3 or tokens[0].upper() != "PATHS" or tokens[1].upper() != "MATCHING":
        raise QuerySyntaxError("a PathQL query starts with 'PATHS MATCHING <regex>'")
    position = 2
    regex_parts = []
    while position < len(tokens) and tokens[position] not in _KEYWORDS:
        regex_parts.append(tokens[position])
        position += 1
    if not regex_parts:
        raise QuerySyntaxError("MATCHING needs a regular expression")
    query = PathQuery(regex=parse_regex(" ".join(regex_parts)))

    def take_value(keyword: str) -> str:
        nonlocal position
        position += 1
        if position >= len(tokens):
            raise QuerySyntaxError(f"{keyword} needs a value")
        value = tokens[position]
        position += 1
        return value

    while position < len(tokens):
        keyword = tokens[position]
        if keyword == "FROM":
            query.source = take_value("FROM")
        elif keyword == "TO":
            query.target = take_value("TO")
        elif keyword == "LENGTH":
            query.length = _int(take_value("LENGTH"), "LENGTH")
        elif keyword == "MAXLENGTH":
            query.max_length = _int(take_value("MAXLENGTH"), "MAXLENGTH")
        elif keyword == "SHORTEST":
            query.shortest = True
            position += 1
        elif keyword == "COUNT":
            query.mode = "count"
            position += 1
            if position < len(tokens) and tokens[position] == "APPROX":
                query.mode = "count-approx"
                query.epsilon = _float(take_value("APPROX"), "APPROX")
        elif keyword == "SAMPLE":
            query.mode = "sample"
            query.samples = _int(take_value("SAMPLE"), "SAMPLE")
        elif keyword == "LIMIT":
            query.limit = _int(take_value("LIMIT"), "LIMIT")
        elif keyword == "SEED":
            query.seed = _int(take_value("SEED"), "SEED")
        else:
            raise QuerySyntaxError(f"unexpected token {keyword!r}")
    _validate(query)
    return query


def run_pathql(graph, text: str, *, ctx=None, tracer=None,
               pool=None, cache=None, view=None,
               engine: str = "auto") -> PathQueryResult:
    """Parse and execute a PathQL statement against any graph model.

    With an execution :class:`~repro.exec.Context` every evaluation loop
    checkpoints against the context's budget.  ``COUNT`` queries then run
    through the degradation ladder (exact, then FPRAS, then a partial-
    enumeration lower bound) instead of failing on budget exhaustion, and
    enumeration queries return the paths emitted so far tagged
    ``quality="partial"``.  ``COUNT APPROX`` and ``SAMPLE`` have no cheaper
    fallback, so they propagate :class:`~repro.errors.BudgetExceeded`.

    With a :class:`~repro.obs.Tracer` the run is recorded as ``parse``,
    ``compile`` (with compile-cache hit/miss deltas) and ``evaluate`` spans
    — the latter nesting the governor's ``degrade:<rung>`` spans for
    governed ``COUNT`` queries; ``tracer=None`` takes the exact pre-tracing
    code path.

    With a :class:`~repro.exec.parallel.WorkerPool` bound to this graph
    (``pool=``), ``COUNT`` queries shard their exact count across the
    pool's workers; enumeration and sampling stay serial — their emission
    order and seeded randomness are part of the answer.

    With a :class:`~repro.cache.QueryCache` (``cache=``), full-fidelity
    results (``quality == "exact"``, which includes seeded ``COUNT APPROX``
    and ``SAMPLE`` answers — their randomness is keyed by the query's SEED)
    are memoized under the query's canonical form and the regex's label
    footprint.  A hit re-runs nothing: no parse of the regex semantics, no
    governor rungs, no budget checkpoints.  Degraded/partial results are
    never cached — they reflect this run's budget, not the graph.

    ``engine`` selects the evaluation engine for ``COUNT`` queries (the
    backward-layer sweep vectorizes); enumeration, sampling and the FPRAS
    are scalar by construction — their emission order and seeded
    randomness are part of the answer — so the flag is a no-op there.

    With a :class:`~repro.ivm.ViewRegistry` (``view=``), the query is
    served from a continuously maintained materialized view instead: it
    auto-registers on first use and later runs answer from the view's
    state, re-evaluating only when an intersecting mutation landed.  The
    registry must be bound to this graph
    (:class:`~repro.errors.ViewError` otherwise); ``cache=`` is ignored
    for view-served queries — the view is the memo.
    """
    if view is not None:
        return view.serve_pathql(graph, text, ctx=ctx, tracer=tracer,
                                 pool=pool, engine=engine)
    if tracer is None:
        return _run_pathql(graph, text, ctx, pool=pool, cache=cache,
                           engine=engine)
    with tracer.span("parse", frontend="pathql"):
        query = parse_pathql(text)
    with tracer.span("compile", cache=True):
        compile_regex(query.regex)
    with tracer.span("evaluate", ctx=ctx, mode=query.mode) as span:
        result = _run_pathql(graph, text, ctx, query=query, tracer=tracer,
                             pool=pool, cache=cache, engine=engine)
        span.attrs["quality"] = result.quality
        if result.count is not None:
            span.attrs["count"] = result.count
        span.attrs["paths"] = len(result.paths)
        return result


def _canonical_key(query: PathQuery) -> tuple:
    """The canonical query form: every semantic field, with the regex in
    its textual normal form, so syntactic variants key identically."""
    return ("pathql", query.regex.to_text(), query.source, query.target,
            query.length, query.max_length, query.shortest, query.mode,
            query.limit, query.samples, query.epsilon, query.seed)


def _run_pathql(graph, text: str, ctx=None, *, query: PathQuery | None = None,
                tracer=None, pool=None, cache=None,
                engine: str = "auto") -> PathQueryResult:
    if query is None:
        query = parse_pathql(text)
    if cache is not None:
        from repro.cache import MISS, pathql_footprint

        key = _canonical_key(query)
        hit = cache.lookup(graph, key)
        if hit is not MISS:
            mode, paths, count, quality = hit
            return PathQueryResult(mode, list(paths), count, quality=quality)
        result = _run_pathql(graph, text, ctx, query=query, tracer=tracer,
                             pool=pool, engine=engine)
        if result.quality == "exact":
            cache.store(graph, key, pathql_footprint(query),
                        (result.mode, tuple(result.paths), result.count,
                         result.quality))
        return result
    starts = [query.source] if query.source is not None else None
    ends = [query.target] if query.target is not None else None

    length = query.length
    if query.shortest:
        if query.source is None or query.target is None:
            raise QueryEvaluationError("SHORTEST needs both FROM and TO")
        length = shortest_conforming_length(graph, query.regex,
                                            query.source, query.target,
                                            ctx=ctx)
        if length is None:
            return PathQueryResult(query.mode, [], 0)

    if query.mode == "count":
        if ctx is not None:
            governed = count_paths_governed(graph, query.regex, length, ctx,
                                            epsilon=query.epsilon,
                                            rng=query.seed,
                                            start_nodes=starts, end_nodes=ends,
                                            engine=engine,
                                            tracer=tracer, pool=pool)
            return PathQueryResult("count", [], governed.value,
                                   quality=governed.quality,
                                   degradations=tuple(governed.degradations))
        count = count_paths_exact(graph, query.regex, length,
                                  start_nodes=starts, end_nodes=ends,
                                  engine=engine, pool=pool)
        return PathQueryResult("count", [], count)
    if query.mode == "count-approx":
        counter = ApproxPathCounter(graph, query.regex, length,
                                    epsilon=query.epsilon, rng=query.seed,
                                    start_nodes=starts, end_nodes=ends,
                                    ctx=ctx)
        return PathQueryResult("count-approx", [], counter.estimate())
    if query.mode == "sample":
        sampler = UniformPathSampler(graph, query.regex, length,
                                     start_nodes=starts, end_nodes=ends,
                                     ctx=ctx)
        if sampler.count == 0:
            return PathQueryResult("sample", [], 0)
        paths = sampler.sample_many(query.samples, rng=query.seed)
        return PathQueryResult("sample", paths, sampler.count)

    # Enumeration (the default mode).
    if length is not None:
        iterator = enumerate_paths(graph, query.regex, length,
                                   start_nodes=starts, end_nodes=ends, ctx=ctx)
    else:
        iterator = enumerate_paths_up_to(graph, query.regex, query.max_length,
                                         start_nodes=starts, end_nodes=ends,
                                         ctx=ctx)
    paths = []
    try:
        for path in iterator:
            paths.append(path)
            if query.limit is not None and len(paths) >= query.limit:
                break
    except BudgetExceeded as exceeded:
        if ctx is None:
            raise
        event = DegradationEvent("exact", "partial", exceeded.resource,
                                 exceeded.site)
        ctx.record_degradation(event)
        return PathQueryResult("enumerate", paths, len(paths),
                               quality="partial", degradations=(event,))
    return PathQueryResult("enumerate", paths, len(paths))


def _validate(query: PathQuery) -> None:
    if query.length is not None and query.max_length is not None:
        raise QuerySyntaxError("LENGTH and MAXLENGTH are mutually exclusive")
    if query.shortest and (query.length is not None or query.max_length is not None):
        raise QuerySyntaxError("SHORTEST replaces LENGTH/MAXLENGTH")
    needs_length = query.mode in ("count", "count-approx", "sample")
    has_length = query.length is not None or query.shortest
    if needs_length and not has_length:
        raise QuerySyntaxError(f"{query.mode} needs LENGTH k or SHORTEST")
    if query.mode == "enumerate" and not has_length and query.max_length is None:
        raise QuerySyntaxError("enumeration needs LENGTH, MAXLENGTH or SHORTEST")
    if query.mode == "sample" and query.samples < 1:
        raise QuerySyntaxError("SAMPLE needs a positive count")


def _tokenize(text: str) -> list[str]:
    """Whitespace tokens, but double-quoted spans stay glued to their token."""
    tokens: list[str] = []
    current: list[str] = []
    in_string = False
    for ch in text:
        if ch == '"':
            in_string = not in_string
            current.append(ch)
        elif ch.isspace() and not in_string:
            if current:
                tokens.append("".join(current))
                current = []
        else:
            current.append(ch)
    if in_string:
        raise QuerySyntaxError("unterminated string in PathQL query")
    if current:
        tokens.append("".join(current))
    return tokens


def _int(value: str, keyword: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise QuerySyntaxError(f"{keyword} needs an integer, got {value!r}") from None


def _float(value: str, keyword: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise QuerySyntaxError(f"{keyword} needs a number, got {value!r}") from None
