"""A mini-SPARQL engine over :class:`repro.storage.TripleStore`.

Supported grammar (a practical core of SPARQL 1.1)::

    query    := SELECT [DISTINCT] (var+ | '*') WHERE '{' group '}' modifiers
    group    := (triple '.' | FILTER '(' expr ')' | OPTIONAL '{' group '}')*
    triple   := term path term
    path     := step ('/' step)*           -- sequence
    step     := alt ('|' alt)*  is folded inside: see _parse_path
    atom     := '<'iri'>' | '^' atom | '(' path ')' ; postfix '*' '+'
    term     := ?var | '<'iri'>' | '"literal"'
    expr     := comparison (('&&' | '||') comparison)*
    comparison := term op term,  op in = != < > <= >=
    modifiers := [ORDER BY [DESC] var] [LIMIT n] [OFFSET n]

Property paths are evaluated by translating the path operators into
traversals over the store's indexes (star/plus via BFS closure); basic
graph patterns are joined by backtracking with greedy selectivity
ordering (cheapest pattern under current bindings first).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import QueryEvaluationError, QuerySyntaxError
from repro.storage.triple_store import TripleStore

# ---------------------------------------------------------------------------
# Tokens
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<keyword>(?i:SELECT|DISTINCT|WHERE|FILTER|OPTIONAL|UNION|ORDER|BY|LIMIT|OFFSET|ASC|DESC)\b)
  | (?P<var>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<iri><[^<>\s]*>)
  | (?P<literal>"(?:[^"\\]|\\.)*")
  | (?P<number>\d+)
  | (?P<op><=|>=|!=|&&|\|\||[{}().|/*+^=<>])
""", re.VERBOSE)


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match:
            raise QuerySyntaxError(f"cannot read {text[position:position + 10]!r}",
                                   position)
        kind = match.lastgroup
        if kind != "ws":
            value = match.group()
            if kind == "keyword":
                value = value.upper()
            tokens.append(_Token(kind, value, position))
        position = match.end()
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Iri:
    value: str


@dataclass(frozen=True)
class Literal:
    value: str


Term = Var | Iri | Literal


@dataclass(frozen=True)
class PIri:
    iri: str


@dataclass(frozen=True)
class PVar:
    """A variable in predicate position (a simple predicate, not a path)."""

    name: str


@dataclass(frozen=True)
class PInverse:
    inner: "PathExpr"


@dataclass(frozen=True)
class PSequence:
    left: "PathExpr"
    right: "PathExpr"


@dataclass(frozen=True)
class PAlternative:
    left: "PathExpr"
    right: "PathExpr"


@dataclass(frozen=True)
class PStar:
    inner: "PathExpr"


@dataclass(frozen=True)
class PPlus:
    inner: "PathExpr"


PathExpr = PIri | PVar | PInverse | PSequence | PAlternative | PStar | PPlus


@dataclass(frozen=True)
class TriplePattern:
    subject: Term
    path: PathExpr
    object: Term


@dataclass(frozen=True)
class Comparison:
    left: Term
    op: str
    right: Term


@dataclass(frozen=True)
class FilterExpr:
    comparisons: tuple[Comparison, ...]
    connectives: tuple[str, ...]  # between consecutive comparisons


@dataclass(frozen=True)
class OptionalGroup:
    patterns: tuple[TriplePattern, ...]
    filters: tuple[FilterExpr, ...]


@dataclass(frozen=True)
class SelectQuery:
    variables: tuple[str, ...] | None  # None = SELECT *
    distinct: bool
    patterns: tuple[TriplePattern, ...]
    filters: tuple[FilterExpr, ...]
    optionals: tuple[OptionalGroup, ...]
    order_by: str | None
    descending: bool
    limit: int | None
    offset: int
    # Alternative branches from `{ g1 } UNION { g2 }`: each entry is a
    # (patterns, filters, optionals) triple; when non-empty, `patterns`/
    # `filters`/`optionals` above hold the FIRST branch.
    union_branches: tuple = ()


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.pos = 0

    def _peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of query")
        self.pos += 1
        return token

    def _accept(self, kind: str, value: str | None = None) -> _Token | None:
        token = self._peek()
        if token and token.kind == kind and (value is None or token.value == value):
            self.pos += 1
            return token
        return None

    def _expect(self, kind: str, value: str | None = None) -> _Token:
        token = self._accept(kind, value)
        if token is None:
            found = self._peek()
            where = found.position if found else None
            shown = found.value if found else "end of query"
            raise QuerySyntaxError(
                f"expected {value or kind}, found {shown!r}", where)
        return token

    def parse(self) -> SelectQuery:
        self._expect("keyword", "SELECT")
        distinct = bool(self._accept("keyword", "DISTINCT"))
        variables: tuple[str, ...] | None
        if self._accept("op", "*"):
            variables = None
        else:
            names = []
            while (token := self._accept("var")) is not None:
                names.append(token.value[1:])
            if not names:
                raise QuerySyntaxError("SELECT needs variables or '*'")
            variables = tuple(names)
        self._expect("keyword", "WHERE")
        self._expect("op", "{")
        union_branches: list = []
        if self._peek() and self._peek().kind == "op" and self._peek().value == "{":
            # Braced alternation: { g1 } UNION { g2 } UNION ...
            while True:
                self._expect("op", "{")
                union_branches.append(self._parse_group(allow_optional=True))
                self._expect("op", "}")
                if not self._accept("keyword", "UNION"):
                    break
            patterns, filters, optionals = union_branches[0]
        else:
            patterns, filters, optionals = self._parse_group(allow_optional=True)
        self._expect("op", "}")
        order_by = None
        descending = False
        if self._accept("keyword", "ORDER"):
            self._expect("keyword", "BY")
            if self._accept("keyword", "DESC"):
                descending = True
            else:
                self._accept("keyword", "ASC")
            order_by = self._expect("var").value[1:]
        limit = None
        offset = 0
        if self._accept("keyword", "LIMIT"):
            limit = int(self._expect("number").value)
        if self._accept("keyword", "OFFSET"):
            offset = int(self._expect("number").value)
        if self._peek() is not None:
            raise QuerySyntaxError(f"trailing input {self._peek().value!r}",
                                   self._peek().position)
        return SelectQuery(variables, distinct, tuple(patterns), tuple(filters),
                           tuple(optionals), order_by, descending, limit, offset,
                           tuple((tuple(p), tuple(f), tuple(o))
                                 for p, f, o in union_branches))

    def _parse_group(self, allow_optional: bool):
        patterns: list[TriplePattern] = []
        filters: list[FilterExpr] = []
        optionals: list[OptionalGroup] = []
        while True:
            token = self._peek()
            if token is None or (token.kind == "op" and token.value == "}"):
                return patterns, filters, optionals
            if token.kind == "keyword" and token.value == "FILTER":
                self._next()
                self._expect("op", "(")
                filters.append(self._parse_filter())
                self._expect("op", ")")
                self._accept("op", ".")
                continue
            if token.kind == "keyword" and token.value == "OPTIONAL":
                if not allow_optional:
                    raise QuerySyntaxError("nested OPTIONAL is not supported",
                                           token.position)
                self._next()
                self._expect("op", "{")
                inner_patterns, inner_filters, _ = self._parse_group(allow_optional=False)
                self._expect("op", "}")
                optionals.append(OptionalGroup(tuple(inner_patterns),
                                               tuple(inner_filters)))
                self._accept("op", ".")
                continue
            patterns.append(self._parse_triple())
            self._accept("op", ".")

    def _parse_triple(self) -> TriplePattern:
        subject = self._parse_term()
        variable = self._accept("var")
        if variable is not None:
            path: PathExpr = PVar(variable.value[1:])
        else:
            path = self._parse_path()
        obj = self._parse_term()
        return TriplePattern(subject, path, obj)

    def _parse_term(self) -> Term:
        token = self._next()
        if token.kind == "var":
            return Var(token.value[1:])
        if token.kind == "iri":
            return Iri(token.value[1:-1])
        if token.kind == "literal":
            return Literal(_unescape(token.value))
        if token.kind == "number":
            return Literal(token.value)
        raise QuerySyntaxError(f"expected a term, found {token.value!r}",
                               token.position)

    def _parse_path(self) -> PathExpr:
        return self._parse_path_alt()

    def _parse_path_alt(self) -> PathExpr:
        left = self._parse_path_seq()
        while self._accept("op", "|"):
            left = PAlternative(left, self._parse_path_seq())
        return left

    def _parse_path_seq(self) -> PathExpr:
        left = self._parse_path_postfix()
        while self._accept("op", "/"):
            left = PSequence(left, self._parse_path_postfix())
        return left

    def _parse_path_postfix(self) -> PathExpr:
        atom = self._parse_path_atom()
        while True:
            if self._accept("op", "*"):
                atom = PStar(atom)
            elif self._accept("op", "+"):
                atom = PPlus(atom)
            else:
                return atom

    def _parse_path_atom(self) -> PathExpr:
        if self._accept("op", "^"):
            return PInverse(self._parse_path_atom())
        if self._accept("op", "("):
            inner = self._parse_path_alt()
            self._expect("op", ")")
            return inner
        token = self._expect("iri")
        return PIri(token.value[1:-1])

    def _parse_filter(self) -> FilterExpr:
        comparisons = [self._parse_comparison()]
        connectives: list[str] = []
        while True:
            token = self._peek()
            if token and token.kind == "op" and token.value in ("&&", "||"):
                self._next()
                connectives.append(token.value)
                comparisons.append(self._parse_comparison())
            else:
                return FilterExpr(tuple(comparisons), tuple(connectives))

    def _parse_comparison(self) -> Comparison:
        left = self._parse_term()
        token = self._next()
        if token.kind != "op" or token.value not in ("=", "!=", "<", ">", "<=", ">="):
            raise QuerySyntaxError(f"expected a comparison operator, found "
                                   f"{token.value!r}", token.position)
        right = self._parse_term()
        return Comparison(left, token.value, right)


def _unescape(literal_token: str) -> str:
    body = literal_token[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


def parse_sparql(text: str) -> SelectQuery:
    """Parse a mini-SPARQL SELECT query."""
    return _Parser(text).parse()


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


@dataclass
class SelectResult:
    """Query answer: a header plus rows (None marks an unbound OPTIONAL var)."""

    variables: tuple[str, ...]
    rows: list[tuple]

    def bindings(self):
        """Iterate solutions as dicts, omitting unbound variables."""
        for row in self.rows:
            yield {var: value for var, value in zip(self.variables, row)
                   if value is not None}

    def __len__(self) -> int:
        return len(self.rows)


def run_sparql(store: TripleStore, text: str, *, ctx=None,
               tracer=None, cache=None, view=None,
               engine: str = "auto") -> SelectResult:
    """Parse and evaluate a query against a triple store.

    With an execution :class:`~repro.exec.Context` the backtracking join
    checkpoints once per produced binding extension (site ``sparql.join``)
    and property-path closures once per BFS expansion (site
    ``sparql.closure``); budget exhaustion raises
    :class:`~repro.errors.BudgetExceeded` — set semantics admit no partial
    answer that would not silently drop solutions.

    With a :class:`~repro.obs.Tracer` the run records ``parse`` and
    ``evaluate`` spans (strategy, branch/pattern counts, rows returned);
    ``tracer=None`` takes the exact pre-tracing code path.

    With a :class:`~repro.cache.QueryCache` (``cache=``), results are
    memoized against the *store* (which keeps its own mutation log) under
    the parsed query — a frozen AST, so formatting variants of the same
    query share one entry — with the query's label footprint: rdf:type
    patterns depend on node labels, IRI predicates on edge labels, variable
    predicates on everything.  A hit evaluates nothing and spends no budget.

    ``engine`` selects how closures (``*``/``+`` paths) with an unbound
    subject are evaluated: ``"scalar"`` runs the per-start BFS, ``"vector"``
    materializes the inner relation once and closes it by boolean matrix
    squaring, and ``"auto"`` (the default) picks by resource count.  The
    answer multiset is engine-independent; only the evaluation strategy
    (and its checkpoint granularity) changes.

    With a :class:`~repro.ivm.ViewRegistry` (``view=``), the query is
    served from a continuously maintained materialized view bound to this
    store (:class:`~repro.errors.ViewError` for any other target);
    ``cache=`` is ignored for view-served queries — the view is the memo.
    """
    if view is not None:
        return view.serve_sparql(store, text, ctx=ctx, tracer=tracer,
                                 engine=engine)
    if tracer is None:
        return _run_sparql(store, text, ctx, cache=cache, engine=engine)
    with tracer.span("parse", frontend="sparql"):
        query = parse_sparql(text)
    with tracer.span("evaluate", ctx=ctx,
                     strategy="bgp-backtracking-join") as span:
        branches = (query.union_branches if query.union_branches
                    else ((query.patterns, query.filters, query.optionals),))
        span.attrs["branches"] = len(branches)
        span.attrs["patterns"] = sum(len(p) for p, _, _ in branches)
        result = _run_sparql(store, text, ctx, query=query, cache=cache,
                             engine=engine)
        span.attrs["rows"] = len(result.rows)
        return result


def _run_sparql(store: TripleStore, text: str, ctx=None, *,
                query: SelectQuery | None = None, cache=None,
                engine: str = "auto") -> SelectResult:
    if query is None:
        query = parse_sparql(text)
    if cache is not None:
        from repro.cache import MISS, sparql_footprint

        key = ("sparql", query)
        hit = cache.lookup(store, key)
        if hit is not MISS:
            variables, rows = hit
            return SelectResult(variables, list(rows))
        result = _run_sparql(store, text, ctx, query=query, engine=engine)
        cache.store(store, key, sparql_footprint(query),
                    (result.variables, tuple(result.rows)))
        return result
    from repro.core.rpq.vectorized.engine import resolve_engine

    resolved, reason = resolve_engine(engine,
                                      n_nodes=len(store.resources()))
    if ctx is not None:
        ctx.stats.notes["engine"] = resolved
        ctx.stats.notes["engine_reason"] = reason
    if query.union_branches:
        branches = query.union_branches
    else:
        branches = ((query.patterns, query.filters, query.optionals),)
    solutions = []
    for patterns, filters, optionals in branches:
        branch_solutions = _solve_bgp(store, list(patterns), {}, ctx,
                                      engine=resolved)
        branch_solutions = [s for s in branch_solutions
                            if all(_filter_holds(f, s) for f in filters)]
        for optional in optionals:
            branch_solutions = _apply_optional(store, branch_solutions,
                                               optional, ctx, engine=resolved)
        solutions.extend(branch_solutions)

    if query.variables is None:
        names: list[str] = []
        for patterns, _, _ in branches:
            for pattern in patterns:
                terms = [pattern.subject, pattern.object]
                if isinstance(pattern.path, PVar):
                    names_candidate = pattern.path.name
                    if names_candidate not in names:
                        names.append(names_candidate)
                for term in terms:
                    if isinstance(term, Var) and term.name not in names:
                        names.append(term.name)
        variables = tuple(names)
    else:
        variables = query.variables

    rows = [tuple(solution.get(v) for v in variables) for solution in solutions]
    if query.distinct:
        seen = set()
        unique = []
        for row in rows:
            if row not in seen:
                seen.add(row)
                unique.append(row)
        rows = unique
    if query.order_by is not None:
        index = variables.index(query.order_by) if query.order_by in variables else None
        if index is None:
            raise QueryEvaluationError(
                f"ORDER BY variable ?{query.order_by} is not selected")
        rows.sort(key=lambda row: (row[index] is None, str(row[index])),
                  reverse=query.descending)
    else:
        rows.sort(key=lambda row: tuple(str(v) for v in row))
    if query.offset:
        rows = rows[query.offset:]
    if query.limit is not None:
        rows = rows[: query.limit]
    return SelectResult(variables, rows)


def _solve_bgp(store: TripleStore, patterns: list[TriplePattern],
               binding: dict, ctx=None, *, engine: str = "scalar") -> list[dict]:
    """Backtracking join with greedy selectivity ordering."""
    if not patterns:
        return [dict(binding)]
    index, best = min(enumerate(patterns),
                      key=lambda item: _estimate(store, item[1], binding))
    rest = patterns[:index] + patterns[index + 1:]
    solutions: list[dict] = []
    for extension in _match_pattern(store, best, binding, ctx, engine=engine):
        if ctx is not None:
            ctx.checkpoint("sparql.join")
        solutions.extend(_solve_bgp(store, rest, extension, ctx,
                                    engine=engine))
    return solutions


def _estimate(store: TripleStore, pattern: TriplePattern, binding: dict) -> int:
    subject = _resolve(pattern.subject, binding)
    obj = _resolve(pattern.object, binding)
    if isinstance(pattern.path, PIri):
        return store.count(subject, pattern.path.iri, obj)
    if isinstance(pattern.path, PVar):
        return store.count(subject, binding.get(pattern.path.name), obj)
    # Complex paths: prefer patterns with bound endpoints.
    bound = (subject is not None) + (obj is not None)
    return 10_000 // (1 + bound * 100)


def _resolve(term: Term, binding: dict) -> str | None:
    if isinstance(term, Var):
        return binding.get(term.name)
    return term.value


def _match_pattern(store: TripleStore, pattern: TriplePattern, binding: dict,
                   ctx=None, *, engine: str = "scalar"):
    subject = _resolve(pattern.subject, binding)
    obj = _resolve(pattern.object, binding)
    if isinstance(pattern.path, PVar):
        predicate = binding.get(pattern.path.name)
        for triple in store.match(subject, predicate, obj):
            extension = dict(binding)
            if isinstance(pattern.subject, Var):
                extension[pattern.subject.name] = triple.subject
            extension[pattern.path.name] = triple.predicate
            if isinstance(pattern.object, Var):
                extension[pattern.object.name] = triple.object
            yield extension
        return
    for s, o in _eval_path(store, pattern.path, subject, obj, ctx,
                           engine=engine):
        extension = dict(binding)
        if isinstance(pattern.subject, Var):
            extension[pattern.subject.name] = s
        if isinstance(pattern.object, Var):
            extension[pattern.object.name] = o
        yield extension


def _eval_path(store: TripleStore, path: PathExpr,
               subject: str | None, obj: str | None, ctx=None, *,
               engine: str = "scalar"):
    """Yield (s, o) pairs related by the path, honoring bound endpoints."""
    if isinstance(path, PIri):
        for triple in store.match(subject, path.iri, obj):
            yield triple.subject, triple.object
        return
    if isinstance(path, PInverse):
        for o, s in _eval_path(store, path.inner, obj, subject, ctx,
                               engine=engine):
            yield s, o
        return
    if isinstance(path, PSequence):
        if subject is not None or obj is None:
            for s, middle in _eval_path(store, path.left, subject, None, ctx,
                                        engine=engine):
                for _, o in _eval_path(store, path.right, middle, obj, ctx,
                                       engine=engine):
                    yield s, o
        else:
            for middle, o in _eval_path(store, path.right, None, obj, ctx,
                                        engine=engine):
                for s, _ in _eval_path(store, path.left, subject, middle, ctx,
                                       engine=engine):
                    yield s, o
        return
    if isinstance(path, PAlternative):
        seen = set()
        for pair in _eval_path(store, path.left, subject, obj, ctx,
                               engine=engine):
            if pair not in seen:
                seen.add(pair)
                yield pair
        for pair in _eval_path(store, path.right, subject, obj, ctx,
                               engine=engine):
            if pair not in seen:
                seen.add(pair)
                yield pair
        return
    if isinstance(path, (PStar, PPlus)):
        minimum = 0 if isinstance(path, PStar) else 1
        yield from _eval_closure(store, path.inner, subject, obj, minimum,
                                 ctx, engine=engine)
        return
    raise QueryEvaluationError(f"unknown path node: {type(path).__name__}")


def _eval_closure(store: TripleStore, inner: PathExpr,
                  subject: str | None, obj: str | None, minimum: int,
                  ctx=None, *, engine: str = "scalar"):
    """Reflexive/transitive closure with existential (set) semantics.

    SPARQL 1.1 evaluates ZeroOrMorePath over *node pairs*, not paths —
    precisely the design decision [8] traces to counting explosions.

    With ``engine="vector"`` and an *unbound* subject — the whole-relation
    case where the per-start BFS degenerates to |resources| traversals —
    the inner relation is materialized once and closed by boolean matrix
    squaring instead (:func:`_closure_matrix`).  A bound subject keeps the
    single-source BFS: one traversal is already the cheap case.
    """
    if subject is None and engine == "vector":
        yield from _closure_matrix(store, inner, obj, minimum, ctx)
        return
    def reachable_from(start: str):
        seen = {start: 0}
        frontier = [start]
        depth = 0
        while frontier:
            depth += 1
            next_frontier = []
            for node in frontier:
                if ctx is not None:
                    ctx.checkpoint("sparql.closure")
                    ctx.note_frontier(len(frontier), "sparql.closure")
                for _, target in _eval_path(store, inner, node, None, ctx,
                                            engine=engine):
                    if target not in seen:
                        seen[target] = depth
                        next_frontier.append(target)
                    elif target == start and seen[start] == 0:
                        # The start was seeded at depth 0; re-reaching it
                        # proves a >= 1-step cycle, which OneOrMorePath
                        # must report as (start, start).
                        seen[start] = depth
            frontier = next_frontier
        return seen

    if subject is not None:
        for node, depth in reachable_from(subject).items():
            if depth >= minimum and (obj is None or node == obj):
                yield subject, node
        return
    starts = store.resources() if obj is None else store.resources()
    emitted = set()
    for start in sorted(starts):
        for node, depth in reachable_from(start).items():
            if depth >= minimum and (obj is None or node == obj):
                if (start, node) not in emitted:
                    emitted.add((start, node))
                    yield start, node


def _closure_matrix(store: TripleStore, inner: PathExpr,
                    obj: str | None, minimum: int, ctx=None):
    """Whole-relation closure by boolean matrix squaring (vector engine).

    Materializes the inner relation once as a boolean adjacency matrix over
    the store's resources and iterates ``T <- T | T.T`` to the fixpoint —
    O(log diameter) squarings instead of |resources| BFS traversals.  The
    emitted *pair set* is identical to the scalar BFS (existential
    semantics make depths irrelevant beyond the ``minimum`` bound, and the
    closure matrix knows ``start`` reaches itself in >= 1 steps exactly
    when it lies on a cycle); only emission order differs, which the
    final sort in ``_run_sparql`` normalizes away.  Checkpoints land at
    per-block granularity: one ``sparql.closure`` checkpoint per squaring,
    charged with the matrix dimension.
    """
    from repro.core.rpq.vectorized.engine import numpy_or_none

    np = numpy_or_none()
    resources = sorted(store.resources())
    n = len(resources)
    if n == 0:
        return
    index = {resource: i for i, resource in enumerate(resources)}
    adjacency = np.zeros((n, n), dtype=bool)
    for s, o in _eval_path(store, inner, None, None, ctx, engine="vector"):
        source, target = index.get(s), index.get(o)
        if source is not None and target is not None:
            adjacency[source, target] = True
    closure = adjacency  # pairs related by >= 1 inner steps
    while True:
        if ctx is not None:
            ctx.checkpoint("sparql.closure", steps=max(1, n))
            ctx.note_frontier(int(closure.sum()), "sparql.closure")
        grown = closure | (
            (closure.astype(np.float32) @ closure.astype(np.float32)) > 0.0)
        if bool((grown == closure).all()):
            break
        closure = grown
    for i, start in enumerate(resources):
        if minimum == 0 or closure[i, i]:
            # Depth 0 (PStar) or a cycle through start (PPlus): the scalar
            # BFS yields the seeded start first, so mirror that here.
            if obj is None or start == obj:
                yield start, start
        for j in np.flatnonzero(closure[i]).tolist():
            if j == i:
                continue
            node = resources[j]
            if obj is None or node == obj:
                yield start, node


def _filter_holds(filter_expr: FilterExpr, binding: dict) -> bool:
    values = [_compare(c, binding) for c in filter_expr.comparisons]
    result = values[0]
    for connective, value in zip(filter_expr.connectives, values[1:]):
        if connective == "&&":
            result = result and value
        else:
            result = result or value
    return result


def _compare(comparison: Comparison, binding: dict) -> bool:
    left = _resolve(comparison.left, binding)
    right = _resolve(comparison.right, binding)
    if left is None or right is None:
        return False
    if comparison.op == "=":
        return left == right
    if comparison.op == "!=":
        return left != right
    left_key, right_key = _comparable(left), _comparable(right)
    if comparison.op == "<":
        return left_key < right_key
    if comparison.op == ">":
        return left_key > right_key
    if comparison.op == "<=":
        return left_key <= right_key
    return left_key >= right_key


def _comparable(value: str):
    """Numeric comparison when both sides look numeric, else lexicographic."""
    try:
        return (0, float(value), "")
    except ValueError:
        return (1, 0.0, value)


def _apply_optional(store: TripleStore, solutions: list[dict],
                    optional: OptionalGroup, ctx=None, *,
                    engine: str = "scalar") -> list[dict]:
    extended: list[dict] = []
    for solution in solutions:
        matches = _solve_bgp(store, list(optional.patterns), solution, ctx,
                             engine=engine)
        matches = [m for m in matches
                   if all(_filter_holds(f, m) for f in optional.filters)]
        if matches:
            extended.extend(matches)
        else:
            extended.append(solution)
    return extended


def store_for_graph(graph) -> TripleStore:
    """Build the indexed :class:`TripleStore` this engine queries from any
    RDF-convertible graph model.

    Property graphs are flattened to labeled graphs first (property values
    become label annotations the conversion defines), labeled graphs become
    RDF triples with node labels as ``rdf:type``, and RDF graphs load
    directly.  One conversion point shared by the CLI and the batch engine,
    so "the same graph file" means the same triples everywhere.
    """
    from repro.errors import ConversionError
    from repro.models import (
        LabeledGraph,
        PropertyGraph,
        RDFGraph,
        labeled_to_rdf,
        property_to_labeled,
    )

    from repro.storage.backend import is_graph_backend

    if isinstance(graph, PropertyGraph):
        graph = property_to_labeled(graph)
    if isinstance(graph, LabeledGraph):
        graph = labeled_to_rdf(graph)
    if not isinstance(graph, RDFGraph):
        if is_graph_backend(graph):
            # A GraphBackend (e.g. the disk-backed CSR reader) exposes the
            # same read surface the conversion consumes — triples form by
            # iterating it, decoding segments as they are touched.
            graph = labeled_to_rdf(graph)
        else:
            raise ConversionError(
                f"sparql needs a labeled, property or RDF graph, "
                f"got {type(graph).__name__}")
    return TripleStore.from_graph(graph)
