"""Declarative graph query languages (Sections 2.1 and 3 of the paper).

Two hand-built engines, each with a lexer, a recursive-descent parser, a
selectivity-ordered join evaluator and a small algebra:

- :mod:`repro.query.sparql` — a mini-SPARQL for RDF/triple stores: basic
  graph patterns, SPARQL 1.1-style property paths (the feature whose
  counting semantics motivated [8]), FILTER, OPTIONAL, DISTINCT,
  ORDER BY / LIMIT.
- :mod:`repro.query.cypherish` — a mini-Cypher for property graphs: MATCH
  patterns with labels, inline property maps and variable-length
  relationships, WHERE, RETURN with aliases, DISTINCT, ORDER BY / LIMIT.

Both evaluate over the indexed stores of :mod:`repro.storage`.
"""

from repro.query.sparql import SelectResult, run_sparql
from repro.query.cypherish import CypherResult, run_cypher
from repro.query.pathql import PathQueryResult, parse_pathql, run_pathql

__all__ = ["run_sparql", "SelectResult", "run_cypher", "CypherResult",
           "run_pathql", "parse_pathql", "PathQueryResult"]
