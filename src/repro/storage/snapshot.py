"""Checksummed, atomically-renamed graph snapshots.

A snapshot is one JSON document wrapping the :mod:`repro.models.io`
serialization of the graph (stored as the exact string :func:`~repro.models.io.dumps`
produced, so the CRC32 is computed over canonical bytes, not a re-encoding)
plus the ``graph_version`` it was taken at — the version the recovered
:class:`~repro.cache.versioning.MutationLog` fast-forwards to before WAL
replay resumes.

**Crash safety.**  A snapshot is written to ``<name>.tmp`` in the same
directory, flushed and fsynced, then atomically renamed into place and the
directory fsynced.  A crash at any point leaves either the old state (tmp
junk is ignored and swept by the next checkpoint) or the complete new
snapshot — never a half-written file under the real name.  Validation on
load (format tag, CRC, decode) means even a bit-flipped snapshot is
*skipped*, falling back to the next-newest valid one, rather than trusted.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass, field

from repro.errors import GraphDecodeError, ReproError, SnapshotError
from repro.models.io import dumps, loads
from repro.storage.wal import fsync_directory

SNAPSHOT_FORMAT = "repro.storage.snapshot"
SNAPSHOT_VERSION = 1

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d+)\.json$")


def snapshot_name(version: int) -> str:
    return f"snapshot-{version}.json"


def list_snapshots(directory: str) -> list[tuple[int, str]]:
    """``(graph_version, path)`` for every snapshot file, newest first."""
    found = []
    for name in os.listdir(directory):
        match = _SNAPSHOT_RE.match(name)
        if match:
            found.append((int(match.group(1)),
                          os.path.join(directory, name)))
    found.sort(reverse=True)
    return found


def write_snapshot(directory: str, graph, version: int) -> str:
    """Atomically persist ``graph`` at ``version``; returns the final path."""
    graph_text = dumps(graph)
    document = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "graph_version": version,
        "crc32": zlib.crc32(graph_text.encode("utf-8")),
        "graph": graph_text,
    }
    final_path = os.path.join(directory, snapshot_name(version))
    tmp_path = final_path + ".tmp"
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.rename(tmp_path, final_path)
        fsync_directory(directory)
    except OSError as error:
        raise SnapshotError(
            f"cannot write snapshot {final_path}: {error}") from error
    return final_path


@dataclass
class SnapshotLoad:
    """The newest valid snapshot, plus every newer one that failed checks.

    ``graph is None`` means no candidate validated at all (a WAL-only or
    fresh store, or every snapshot corrupt) — ``rejected`` still carries
    the per-file reason each candidate was refused, so recovery reports
    the real diagnostics (CRC mismatch vs unreadable vs decode failure)
    instead of a generic stub.
    """

    graph: object | None
    version: int
    path: str | None
    rejected: list[tuple[str, str]] = field(default_factory=list)


def load_latest_snapshot(directory: str) -> SnapshotLoad:
    """Newest snapshot that passes format, CRC and decode validation.

    Invalid candidates are skipped (recorded in ``rejected``) — corruption
    in the latest snapshot degrades recovery to the previous one plus a
    longer WAL replay, never to a crash.  When no snapshot is usable the
    returned :class:`SnapshotLoad` has ``graph=None`` and ``rejected``
    listing why every candidate was refused.
    """
    rejected: list[tuple[str, str]] = []
    for version, path in list_snapshots(directory):
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            rejected.append((path, f"unreadable: {error}"))
            continue
        reason = _validate(document, version)
        if reason is not None:
            rejected.append((path, reason))
            continue
        try:
            graph = loads(document["graph"])
        except (GraphDecodeError, ReproError) as error:
            rejected.append((path, f"graph decode failed: {error}"))
            continue
        return SnapshotLoad(graph=graph, version=version, path=path,
                            rejected=rejected)
    return SnapshotLoad(graph=None, version=0, path=None, rejected=rejected)


def _validate(document, version_from_name: int) -> str | None:
    if not isinstance(document, dict):
        return "not a JSON object"
    if document.get("format") != SNAPSHOT_FORMAT:
        return f"wrong format tag: {document.get('format')!r}"
    if document.get("version") != SNAPSHOT_VERSION:
        return f"unsupported snapshot version: {document.get('version')!r}"
    if document.get("graph_version") != version_from_name:
        return (f"version mismatch: file says {document.get('graph_version')!r}, "
                f"name says {version_from_name}")
    graph_text = document.get("graph")
    if not isinstance(graph_text, str):
        return "graph body missing or not a string"
    if zlib.crc32(graph_text.encode("utf-8")) != document.get("crc32"):
        return "graph checksum mismatch"
    return None


def prune_snapshots(directory: str, keep: int = 2) -> list[str]:
    """Delete all but the ``keep`` newest snapshots; sweep stale tmp files.

    Returns the removed paths.  Best-effort: an unremovable file is left
    for the next checkpoint rather than failing the current one.
    """
    removed = []
    for _, path in list_snapshots(directory)[keep:]:
        try:
            os.remove(path)
            removed.append(path)
        except OSError:  # pragma: no cover - permission oddities
            pass
    for name in os.listdir(directory):
        if name.endswith(".json.tmp"):
            try:
                os.remove(os.path.join(directory, name))
                removed.append(os.path.join(directory, name))
            except OSError:  # pragma: no cover
                pass
    return removed
