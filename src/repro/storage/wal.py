"""The write-ahead log: length-prefixed, CRC32-checksummed mutation records.

The on-disk entry type is the PR-5 mutation record made *replayable*: each
entry carries the monotonic post-mutation ``graph.version`` stamp plus the
operation name and its arguments, so recovery can regenerate both the graph
and its :class:`~repro.cache.versioning.MutationLog` timeline by replaying
the ops in order (each op re-appends exactly the label-granular records it
appended the first time).

**Framing.**  A segment file starts with the 8-byte magic ``b"RWAL1\\n\\r\\n"``
followed by records::

    <u32 payload-length> <u32 crc32(payload)> <payload bytes>

with the payload the canonical JSON array ``[version, op, args]`` (UTF-8,
no whitespace, sorted keys).  Little-endian fixed-width framing means a
scan needs no record separator, and the CRC covers the payload so any torn
or bit-flipped tail is detected at the first bad record.

**Torn tails are normal, not fatal.**  :func:`read_wal` stops at the first
frame it cannot validate — a short header, an implausible length, a short
payload, a checksum mismatch, an undecodable payload — and reports how
many bytes *were* valid; recovery truncates there and carries on.  Only
structural damage (a bad file magic) raises.

**Durability policy.**  :class:`WalWriter` appends through an injectable
:class:`~repro.exec.faults.StorageIO` plane and syncs per its fsync policy:
``always`` (fsync after every append — an acknowledged write survives
power loss), ``batch`` (fsync every ``batch_size`` appends and at every
explicit :meth:`WalWriter.flush`/checkpoint — bounded loss window), or
``never`` (the OS decides — process crashes lose nothing, power cuts may
lose everything since the last checkpoint).  Transient ``OSError`` from
the IO plane is retried with exponential backoff; exhaustion surfaces as
:class:`~repro.errors.WalWriteError` and the writer rewinds the file to
the last record boundary so a failed append can never leave a torn frame
in the *middle* of the log.

**Segments.**  One WAL is a directory of segment files
``wal-<seq>-from-<version>.log``: ``seq`` orders them, ``from-<version>``
records the snapshot version at whose checkpoint the segment was started
(entries inside have strictly greater versions).  The ``from`` stamp is
advisory — replay filters by each entry's own version — but lets
checkpoint pruning drop fully-superseded segments without scanning them.
"""

from __future__ import annotations

import json
import os
import re
import struct
import time
import zlib
from dataclasses import dataclass, field as dataclasses_field

from repro.errors import WalCorruptionError, WalWriteError
from repro.exec.faults import StorageIO

MAGIC = b"RWAL1\n\r\n"
_HEADER = struct.Struct("<II")

#: Fsync policies accepted by :class:`WalWriter`.
FSYNC_POLICIES = ("always", "batch", "never")

#: Appends between fsyncs under the ``batch`` policy.
DEFAULT_BATCH_SIZE = 64

#: Retry budget and first-retry backoff for transient IO errors.
DEFAULT_IO_RETRIES = 4
DEFAULT_IO_BACKOFF = 0.002

#: Any framed length beyond this is treated as tail corruption, not a
#: record — a torn header can otherwise ask the reader to allocate gigabytes.
MAX_RECORD_BYTES = 1 << 26

_SEGMENT_RE = re.compile(r"^wal-(\d{8})-from-(\d+)\.log$")


def segment_name(seq: int, from_version: int) -> str:
    return f"wal-{seq:08d}-from-{from_version}.log"


def list_segments(directory: str) -> list[tuple[int, int, str]]:
    """Sorted ``(seq, from_version, path)`` for every segment in ``directory``."""
    found = []
    for name in os.listdir(directory):
        match = _SEGMENT_RE.match(name)
        if match:
            found.append((int(match.group(1)), int(match.group(2)),
                          os.path.join(directory, name)))
    found.sort()
    return found


def encode_entry(version: int, op: str, args: list) -> bytes:
    """One framed record: header + canonical-JSON payload."""
    payload = json.dumps([version, op, args], sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass(frozen=True)
class WalEntry:
    """One decoded WAL record: the version stamp and the replayable op."""

    version: int
    op: str
    args: list


@dataclass
class WalScan:
    """Result of scanning one segment file.

    ``valid_bytes`` is the boundary after the last validated record;
    ``truncated`` is ``None`` for a clean scan, else a human-readable
    reason why the scan stopped early (the tail past ``valid_bytes`` is
    torn or corrupt).  ``offsets[i]`` is the byte offset of ``entries[i]``'s
    frame header — recovery uses it to truncate a segment at a record that
    is CRC-valid yet unreplayable, so the rejection point is repaired on
    disk instead of re-stopping every future recovery.
    """

    entries: list[WalEntry]
    valid_bytes: int
    total_bytes: int
    truncated: str | None = None
    offsets: list[int] = dataclasses_field(default_factory=list)


def read_wal(path: str) -> WalScan:
    """Scan a segment, validating every frame; never raises on a torn tail.

    A missing file scans as empty.  A present file whose magic is wrong
    raises :class:`WalCorruptionError` — that is not a torn tail but a file
    that was never (or is no longer) a WAL segment.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return WalScan(entries=[], valid_bytes=0, total_bytes=0)
    if len(data) < len(MAGIC):
        if MAGIC.startswith(data):
            # A creation crash tore the magic itself: nothing was ever
            # acknowledged through this segment, so it is empty, not sick.
            # valid_bytes is 0 (not len(data)) so repair rewinds the file
            # to empty and a future writer re-lays the magic whole.
            return WalScan(entries=[], valid_bytes=0,
                           total_bytes=len(data),
                           truncated="torn file magic" if data else None)
        raise WalCorruptionError(f"{path}: not a WAL segment (bad magic)")
    if data[:len(MAGIC)] != MAGIC:
        raise WalCorruptionError(f"{path}: not a WAL segment (bad magic)")

    entries: list[WalEntry] = []
    offsets: list[int] = []
    offset = len(MAGIC)
    truncated = None
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            truncated = "torn record header"
            break
        length, checksum = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            truncated = f"implausible record length {length}"
            break
        start = offset + _HEADER.size
        end = start + length
        if end > len(data):
            truncated = "torn record payload"
            break
        payload = data[start:end]
        if zlib.crc32(payload) != checksum:
            truncated = "record checksum mismatch"
            break
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            truncated = "undecodable record payload"
            break
        if (not isinstance(decoded, list) or len(decoded) != 3
                or not isinstance(decoded[0], int)
                or not isinstance(decoded[1], str)
                or not isinstance(decoded[2], list)):
            truncated = "malformed record shape"
            break
        entries.append(WalEntry(decoded[0], decoded[1], decoded[2]))
        offsets.append(offset)
        offset = end
    return WalScan(entries=entries, valid_bytes=offset,
                   total_bytes=len(data), truncated=truncated,
                   offsets=offsets)


def repair(path: str, scan: WalScan) -> int:
    """Physically truncate a torn tail so future appends extend a valid log.

    Returns the number of bytes discarded.  A no-op for clean scans.
    """
    lost = scan.total_bytes - scan.valid_bytes
    if lost > 0:
        with open(path, "r+b") as handle:
            handle.truncate(scan.valid_bytes)
            handle.flush()
            os.fsync(handle.fileno())
    return lost


def fsync_directory(directory: str) -> None:
    """Make a rename/creation in ``directory`` durable (best effort)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - directories unsyncable here
        pass
    finally:
        os.close(fd)


class WalWriter:
    """Appends framed records to one segment file under an fsync policy.

    All data-plane operations go through ``io`` (a
    :class:`~repro.exec.faults.StorageIO`), which is where the crash-fault
    harness hooks in.  Transient ``OSError`` is retried up to ``retries``
    times with exponential backoff starting at ``backoff`` seconds; a
    write that keeps failing is rolled back to the previous record
    boundary and surfaced as :class:`WalWriteError`.
    """

    def __init__(self, path: str, *, fsync: str = "batch",
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 io: StorageIO | None = None,
                 retries: int = DEFAULT_IO_RETRIES,
                 backoff: float = DEFAULT_IO_BACKOFF) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{FSYNC_POLICIES}")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.path = path
        self.fsync_policy = fsync
        self.batch_size = batch_size
        self._io = io if io is not None else StorageIO()
        self.retries = retries
        self.backoff = backoff
        self._fd = os.open(path, os.O_CREAT | os.O_RDWR | os.O_APPEND, 0o644)
        self._closed = False
        self._pending = 0
        self.appended = 0
        self.fsyncs = 0
        self.io_retries = 0
        self._offset = os.fstat(self._fd).st_size
        if self._offset == 0:
            self._write_frame(MAGIC)
            self._fsync_retrying()

    # -- retry plumbing ----------------------------------------------------

    def _retrying(self, operation, what: str):
        attempt = 0
        while True:
            try:
                return operation()
            except OSError as error:
                attempt += 1
                self.io_retries += 1
                if attempt > self.retries:
                    raise WalWriteError(f"{what}: {error}", attempt) from error
                if self.backoff:
                    time.sleep(self.backoff * (2 ** (attempt - 1)))

    def _write_frame(self, data: bytes) -> None:
        """Append ``data``, rewinding to the record boundary on failure."""
        def attempt():
            try:
                self._io.write(self._fd, data)
            except OSError:
                # A partial write followed by a full retry would corrupt
                # the *middle* of the log; rewind so corruption can only
                # ever be a tail.  Roll the rollback itself into the retry
                # loop: if it raises too, the next attempt repeats it.
                self._io.truncate(self._fd, self._offset)
                raise
        self._retrying(attempt, f"append to {self.path}")
        self._offset += len(data)

    def _fsync_retrying(self) -> None:
        self._retrying(lambda: self._io.fsync(self._fd),
                       f"fsync of {self.path}")
        self.fsyncs += 1
        self._pending = 0

    # -- public API --------------------------------------------------------

    def append(self, version: int, op: str, args: list) -> None:
        """Durably (per policy) append one record; raises on give-up."""
        if self._closed:
            raise WalWriteError(f"writer for {self.path} is closed", 0)
        self._write_frame(encode_entry(version, op, args))
        self.appended += 1
        self._pending += 1
        if self.fsync_policy == "always" or (
                self.fsync_policy == "batch"
                and self._pending >= self.batch_size):
            self._fsync_retrying()

    def flush(self) -> None:
        """Force an fsync regardless of policy (checkpoint durability point)."""
        if not self._closed:
            self._fsync_retrying()

    def close(self, flush: bool = True) -> None:
        if self._closed:
            return
        try:
            if flush:
                self._fsync_retrying()
        finally:
            self._closed = True
            os.close(self._fd)

    @property
    def offset(self) -> int:
        """Bytes successfully appended so far (including the file magic)."""
        return self._offset

    def stats(self) -> dict:
        return {
            "path": self.path,
            "fsync_policy": self.fsync_policy,
            "appended": self.appended,
            "fsyncs": self.fsyncs,
            "io_retries": self.io_retries,
            "offset": self._offset,
        }
