"""An indexed property-graph store (the Neo4j-style storage substrate).

Wraps a :class:`repro.models.PropertyGraph` with the secondary indexes a
graph database maintains: node/edge label indexes, a (property, value)
index for nodes, and per-label adjacency lists so a Cypher-style hop
``(a)-[:contact]->(b)`` is a dictionary lookup.  This is the storage layer
under the mini-Cypher engine of :mod:`repro.query.cypherish`.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.models.property import PropertyGraph


class PropertyGraphStore:
    """Index layer over a property graph (the graph itself stays the model)."""

    def __init__(self, graph: PropertyGraph) -> None:
        self.graph = graph
        self._nodes_by_label: dict = {}
        self._edges_by_label: dict = {}
        self._nodes_by_property: dict = {}
        self._out_by_label: dict = {}
        self._in_by_label: dict = {}
        self._rebuild()

    def _rebuild(self) -> None:
        graph = self.graph
        self._nodes_by_label.clear()
        self._edges_by_label.clear()
        self._nodes_by_property.clear()
        self._out_by_label.clear()
        self._in_by_label.clear()
        for node in graph.nodes():
            self._nodes_by_label.setdefault(graph.node_label(node), set()).add(node)
            for prop, value in graph.node_properties(node).items():
                self._nodes_by_property.setdefault((prop, value), set()).add(node)
        for edge in graph.edges():
            label = graph.edge_label(edge)
            source, target = graph.endpoints(edge)
            self._edges_by_label.setdefault(label, set()).add(edge)
            self._out_by_label.setdefault((source, label), []).append(edge)
            self._in_by_label.setdefault((target, label), []).append(edge)

    # -- index lookups ---------------------------------------------------------

    def nodes_with_label(self, label) -> set:
        return set(self._nodes_by_label.get(label, ()))

    def edges_with_label(self, label) -> set:
        return set(self._edges_by_label.get(label, ()))

    def nodes_with_property(self, prop, value) -> set:
        return set(self._nodes_by_property.get((prop, value), ()))

    def out_edges_labeled(self, node, label) -> list:
        """Outgoing edges of ``node`` with the given label (O(1) index hit)."""
        return list(self._out_by_label.get((node, label), ()))

    def in_edges_labeled(self, node, label) -> list:
        return list(self._in_by_label.get((node, label), ()))

    def expand(self, node, label=None, *, direction: str = "out",
               ) -> Iterator[tuple]:
        """Yield (edge, neighbor) pairs from ``node``.

        ``label=None`` expands over every edge label.  This is the
        traversal primitive whose cost the paper contrasts with join-based
        relational expansion.
        """
        graph = self.graph
        if direction in ("out", "both"):
            edges = (graph.out_edges(node) if label is None
                     else self.out_edges_labeled(node, label))
            for edge in edges:
                yield edge, graph.target(edge)
        if direction in ("in", "both"):
            edges = (graph.in_edges(node) if label is None
                     else self.in_edges_labeled(node, label))
            for edge in edges:
                yield edge, graph.source(edge)

    def node_count_for_label(self, label) -> int:
        return len(self._nodes_by_label.get(label, ()))

    def labels(self) -> set:
        return set(self._nodes_by_label)

    def edge_labels(self) -> set:
        return set(self._edges_by_label)
