"""An indexed property-graph store (the Neo4j-style storage substrate).

Wraps a :class:`repro.models.PropertyGraph` with the secondary indexes a
graph database maintains.  Label and per-label adjacency lookups delegate to
the *live* indexes the labeled-graph model now maintains incrementally (so
they never go stale under mutation); the store itself keeps only the
(property, value) index the model does not have.  This is the storage layer
under the mini-Cypher engine of :mod:`repro.query.cypherish`.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.models.property import PropertyGraph


class PropertyGraphStore:
    """Index layer over a property graph (the graph itself stays the model).

    The store wraps the *live* graph, so versioning delegates straight to
    it: query results cached against a store are invalidated by mutations
    of the underlying :class:`PropertyGraph`.  The (property, value) index —
    the one piece of state the store owns — is rebuilt lazily whenever the
    graph's version has moved since it was last built, so it can no longer
    serve stale nodes after a mutation.
    """

    def __init__(self, graph: PropertyGraph) -> None:
        self.graph = graph
        self._nodes_by_property: dict = {}
        self._indexed_version = -1
        self._rebuild()

    @property
    def version(self) -> int:
        return self.graph.version

    @property
    def mutation_log(self):
        return self.graph.mutation_log

    def _rebuild(self) -> None:
        graph = self.graph
        self._nodes_by_property.clear()
        self._indexed_version = graph.version
        for node in graph.nodes():
            for prop, value in graph.node_properties(node).items():
                self._nodes_by_property.setdefault((prop, value), set()).add(node)

    # -- index lookups ---------------------------------------------------------

    def nodes_with_label(self, label) -> set:
        return set(self.graph.nodes_with_label(label))

    def edges_with_label(self, label) -> set:
        return set(self.graph.edges_with_label(label))

    def nodes_with_property(self, prop, value) -> set:
        if self._indexed_version != self.graph.version:
            self._rebuild()
        return set(self._nodes_by_property.get((prop, value), ()))

    def out_edges_labeled(self, node, label) -> list:
        """Outgoing edges of ``node`` with the given label (O(1) index hit)."""
        return self.graph.out_edges_with_label(node, label)

    def in_edges_labeled(self, node, label) -> list:
        return self.graph.in_edges_with_label(node, label)

    def expand(self, node, label=None, *, direction: str = "out",
               ) -> Iterator[tuple]:
        """Yield (edge, neighbor) pairs from ``node``.

        ``label=None`` expands over every edge label.  This is the
        traversal primitive whose cost the paper contrasts with join-based
        relational expansion.
        """
        graph = self.graph
        if direction in ("out", "both"):
            edges = (graph.iter_out_edges(node) if label is None
                     else graph.iter_out_edges_with_label(node, label))
            for edge in edges:
                yield edge, graph.target(edge)
        if direction in ("in", "both"):
            edges = (graph.iter_in_edges(node) if label is None
                     else graph.iter_in_edges_with_label(node, label))
            for edge in edges:
                yield edge, graph.source(edge)

    def node_count_for_label(self, label) -> int:
        return sum(1 for _ in self.graph.nodes_with_label(label))

    def labels(self) -> set:
        return self.graph.node_label_set()

    def edge_labels(self) -> set:
        return self.graph.edge_label_set()
