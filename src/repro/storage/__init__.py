"""Graph database storage substrate (Section 2.2).

The paper asks "why then do we need graph databases?" and answers: because
adjacency should be a data-structure lookup, not a join.  This package
provides the two store shapes that answer embodies:

- :class:`TripleStore` — an RDF store with the classic SPO/POS/OSP index
  permutations, giving index-backed pattern matching for every binding
  shape of (s, p, o).
- :class:`PropertyGraphStore` — a property-graph store with label and
  property-value indexes plus per-label adjacency, the Neo4j-style layout.

The relational counterexample (the graph as a two-attribute edge table,
paths by iterated joins) lives in :mod:`repro.relational`.
"""

from repro.storage.triple_store import TripleStore
from repro.storage.property_store import PropertyGraphStore

__all__ = ["TripleStore", "PropertyGraphStore"]
