"""Graph database storage substrate (Section 2.2).

The paper asks "why then do we need graph databases?" and answers: because
adjacency should be a data-structure lookup, not a join.  This package
provides the two store shapes that answer embodies:

- :class:`TripleStore` — an RDF store with the classic SPO/POS/OSP index
  permutations, giving index-backed pattern matching for every binding
  shape of (s, p, o).
- :class:`PropertyGraphStore` — a property-graph store with label and
  property-value indexes plus per-label adjacency, the Neo4j-style layout.

The relational counterexample (the graph as a two-attribute edge table,
paths by iterated joins) lives in :mod:`repro.relational`.

The *durable* substrate (DESIGN.md §4h) lives alongside: a checksummed
write-ahead log (:mod:`repro.storage.wal`), atomic snapshots
(:mod:`repro.storage.snapshot`) and the :class:`DurableGraph` adapter that
recovers a crash-interrupted store to a consistent prefix of its
acknowledged mutations.

The *disk-read* substrate (DESIGN.md §4i) completes the pair: checkpoints
also emit mmap-able CSR segments (:mod:`repro.storage.diskread`) that a
cold start can query through :class:`MmapCsrBackend` without
materializing the graph, behind the :class:`GraphBackend` protocol
(:mod:`repro.storage.backend`) that all evaluation layers bind to.
"""

from repro.storage.backend import (
    GraphBackend,
    backend_note,
    is_graph_backend,
    label_candidates,
    missing_backend_attrs,
)
from repro.storage.diskread import (
    MmapCsrBackend,
    MmapCsrPropertyBackend,
    list_segment_files,
    open_latest_segments,
    open_segments,
    prune_segment_files,
    segments_name,
    write_segments,
)
from repro.storage.triple_store import TripleStore
from repro.storage.property_store import PropertyGraphStore
from repro.storage.durable import (
    MODELS,
    REPLAYABLE_OPS,
    DurableGraph,
    RecoveryReport,
)
from repro.storage.snapshot import (
    SnapshotLoad,
    list_snapshots,
    load_latest_snapshot,
    prune_snapshots,
    write_snapshot,
)
from repro.storage.wal import (
    FSYNC_POLICIES,
    WalEntry,
    WalScan,
    WalWriter,
    encode_entry,
    list_segments,
    read_wal,
    repair,
    segment_name,
)

__all__ = [
    "GraphBackend",
    "backend_note",
    "is_graph_backend",
    "label_candidates",
    "missing_backend_attrs",
    "MmapCsrBackend",
    "MmapCsrPropertyBackend",
    "write_segments",
    "open_segments",
    "open_latest_segments",
    "list_segment_files",
    "prune_segment_files",
    "segments_name",
    "TripleStore",
    "PropertyGraphStore",
    "DurableGraph",
    "RecoveryReport",
    "MODELS",
    "REPLAYABLE_OPS",
    "SnapshotLoad",
    "write_snapshot",
    "load_latest_snapshot",
    "list_snapshots",
    "prune_snapshots",
    "FSYNC_POLICIES",
    "WalEntry",
    "WalScan",
    "WalWriter",
    "encode_entry",
    "read_wal",
    "repair",
    "list_segments",
    "segment_name",
]
