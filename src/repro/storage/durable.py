"""`DurableGraph`: a crash-safe adapter over the mutable graph models.

The paper's storage/query split, made real: queries keep running against a
plain in-memory :class:`~repro.models.labeled.LabeledGraph` /
:class:`~repro.models.property.PropertyGraph` (every index, cache and
engine built in PR 1–6 works unchanged), while every mutation is made
durable through the write-ahead log before it is acknowledged.

**Write path.**  A mutation applies to the in-memory graph first (the
model's own validation runs and its :class:`~repro.cache.versioning.MutationLog`
assigns the post-mutation version), then the ``[version, op, args]`` entry
is appended to the WAL under the configured fsync policy, and only then
does the call return.  A crash at any point loses at most the unflushed
tail: either the entry never hit the log (the op was never acknowledged)
or it is fully framed and checksummed.  No-op mutations (the models elide
writes that change nothing) never reach the log, so replay stays perfectly
aligned with the version timeline.

**Recovery** (:meth:`DurableGraph.open`) loads the newest *valid* snapshot
(checksums can demote a corrupt one to its predecessor), fast-forwards the
fresh graph's mutation log to the snapshot version — so the recovered
``graph.version`` lines up with the cache/versioning horizon: every
pre-crash cache stamp is conservatively stale, every post-recovery stamp
validates normally — then replays the WAL tail in segment order, skipping
entries at or below the current version (snapshot overlap, duplicate
versions) and stopping at the first record it cannot accept — torn or
corrupt framing, but equally a CRC-valid entry that is unreplayable
(unknown op, version-stamp mismatch, apply failure).  Either way the
stop point is *repaired on disk*: the owning segment is truncated at the
rejected record (its bytes preserved in a ``.quarantined`` file) and all
later segments are quarantined (renamed, never silently replayed),
because entries past a hole no longer connect to the recovered state.
Repairing before the fresh writer attaches is what keeps writes
acknowledged *after* a recovered-with-loss open durable: the next
recovery replays straight through to them instead of re-stopping at the
old rejection point.

**Checkpoints** write a snapshot (temp file + atomic rename), rotate the
WAL to a fresh segment stamped with the snapshot version, and prune
snapshots/segments that no recovery path can need (the two newest
snapshots are kept, so even a corrupt latest snapshot recovers losslessly
from the previous one plus the retained log).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.errors import ReproError, StorageError, WalWriteError
from repro.exec.faults import StorageIO
from repro.models.labeled import LabeledGraph
from repro.models.property import PropertyGraph
from repro.storage import diskread
from repro.storage import snapshot as snap
from repro.storage import wal

META_NAME = "store.json"
META_FORMAT = "repro.storage.store"
META_VERSION = 1

#: Model tags a durable store can hold.
MODELS = {"labeled": LabeledGraph, "property": PropertyGraph}

#: The full replayable mutation vocabulary.  A CRC-valid entry naming any
#: other op is treated as corruption, never dispatched by name — the WAL
#: must not become an RPC surface into arbitrary graph methods.
REPLAYABLE_OPS = frozenset((
    "add_node", "add_edge", "remove_node", "remove_edge",
    "set_node_label", "set_edge_label",
    "set_node_property", "set_edge_property",
))

#: Ops that need the property model (sigma writes).
_PROPERTY_OPS = frozenset(("set_node_property", "set_edge_property"))

DEFAULT_KEEP_SNAPSHOTS = 2


@dataclass
class RecoveryReport:
    """What :meth:`DurableGraph.open` found and did.

    ``clean`` distinguishes an ordinary restart from a crash repair: it is
    ``False`` whenever recovery had to truncate a torn tail, quarantine
    unreachable segments, or skip a corrupt snapshot — all survivable, all
    worth surfacing (the CLI ``recover`` command turns it into a distinct
    exit code).
    """

    model: str
    snapshot_version: int = 0
    snapshot_path: str | None = None
    snapshots_rejected: list = field(default_factory=list)
    segments_scanned: int = 0
    entries_replayed: int = 0
    entries_skipped: int = 0
    truncated_bytes: int = 0
    truncated_reason: str | None = None
    quarantined: list = field(default_factory=list)
    final_version: int = 0

    @property
    def clean(self) -> bool:
        return (self.truncated_reason is None and self.truncated_bytes == 0
                and not self.quarantined and not self.snapshots_rejected)

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "snapshot_version": self.snapshot_version,
            "snapshot_path": self.snapshot_path,
            "snapshots_rejected": [list(item) for item in
                                   self.snapshots_rejected],
            "segments_scanned": self.segments_scanned,
            "entries_replayed": self.entries_replayed,
            "entries_skipped": self.entries_skipped,
            "truncated_bytes": self.truncated_bytes,
            "truncated_reason": self.truncated_reason,
            "quarantined": list(self.quarantined),
            "final_version": self.final_version,
            "clean": self.clean,
        }


def _canonical_args(args: list) -> list:
    """Refuse arguments that do not round-trip through JSON unchanged.

    The WAL stores JSON, so a tuple node id or a dict with integer keys
    would silently come back *different* on replay — the recovered graph
    would diverge from the acknowledged one.  Failing the write up front
    (before anything is applied or logged) keeps the durable contract
    honest: what you were acknowledged is exactly what recovery rebuilds.
    """
    try:
        text = json.dumps(args, separators=(",", ":"))
        decoded = json.loads(text)
    except (TypeError, ValueError) as error:
        raise StorageError(
            f"mutation arguments are not JSON-serializable: {error}"
        ) from error
    if decoded != args:
        raise StorageError(
            f"mutation arguments are not JSON-faithful "
            f"(tuples or non-string dict keys?): {args!r}")
    return args


class DurableGraph:
    """A graph whose acknowledged mutations survive ``kill -9``.

    Construct via :meth:`open` (which *is* recovery — a fresh directory
    recovers to an empty graph).  Reads delegate to the live in-memory
    graph (also reachable as :attr:`graph` for query engines, caches and
    worker pools); the mutation methods mirror the model's signatures and
    write ahead to the log before acknowledging.
    """

    def __init__(self, *_, **__):
        raise TypeError("use DurableGraph.open(directory, ...)")

    @classmethod
    def open(cls, directory: str, *, model: str | None = None,
             fsync: str = "batch", batch_size: int = wal.DEFAULT_BATCH_SIZE,
             snapshot_every: int | None = None,
             keep_snapshots: int = DEFAULT_KEEP_SNAPSHOTS,
             io: StorageIO | None = None,
             retries: int = wal.DEFAULT_IO_RETRIES,
             backoff: float = wal.DEFAULT_IO_BACKOFF,
             read_only: bool = False) -> "DurableGraph":
        """Open (and recover) the store rooted at ``directory``.

        ``model`` is fixed at store creation (recorded in ``store.json``);
        passing a conflicting tag later is an error, passing ``None``
        adopts whatever the store holds (``"property"`` for new stores).
        ``read_only=True`` recovers in memory without repairing, rotating
        or writing anything on disk — the CLI query path.
        """
        self = object.__new__(cls)
        if fsync not in wal.FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{wal.FSYNC_POLICIES}")
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError("snapshot_every must be positive")
        if read_only:
            if not os.path.isdir(directory):
                raise StorageError(f"no durable store at {directory}")
        else:
            os.makedirs(directory, exist_ok=True)
        self._directory = directory
        self._read_only = read_only
        self._closed = False
        self._failed = False
        self._fsync = fsync
        self._batch_size = batch_size
        self._snapshot_every = snapshot_every
        self._keep_snapshots = keep_snapshots
        self._io = io if io is not None else StorageIO()
        self._retries = retries
        self._backoff = backoff
        self._ops_since_checkpoint = 0
        self._writer = None

        stored_model = self._read_meta()
        if stored_model is not None and model is not None \
                and stored_model != model:
            raise StorageError(
                f"store at {directory} holds model {stored_model!r}, "
                f"not {model!r}")
        self._model = stored_model or model or "property"
        if self._model not in MODELS:
            raise StorageError(f"unknown model tag {self._model!r}")
        if stored_model is None and not read_only:
            self._write_meta()

        self._recover()
        if not read_only:
            last_seq = max((seq for seq, _, _ in
                            wal.list_segments(directory)), default=0)
            self._writer = wal.WalWriter(
                os.path.join(directory,
                             wal.segment_name(last_seq + 1,
                                              self._graph.version)),
                fsync=fsync, batch_size=batch_size, io=self._io,
                retries=retries, backoff=backoff)
        return self

    # -- recovery ----------------------------------------------------------

    def _read_meta(self) -> str | None:
        path = os.path.join(self._directory, META_NAME)
        try:
            with open(path, encoding="utf-8") as handle:
                meta = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as error:
            raise StorageError(f"unreadable store metadata {path}: "
                               f"{error}") from error
        if not isinstance(meta, dict) or meta.get("format") != META_FORMAT:
            raise StorageError(f"{path} is not a durable-store metadata file")
        return meta.get("model")

    def _write_meta(self) -> None:
        path = os.path.join(self._directory, META_NAME)
        tmp = path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump({"format": META_FORMAT, "version": META_VERSION,
                           "model": self._model}, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.rename(tmp, path)
        except OSError as error:
            raise StorageError(
                f"cannot write store metadata {path}: {error}") from error
        wal.fsync_directory(self._directory)

    def _fresh_base(self, loaded: snap.SnapshotLoad | None):
        """The replay starting point: snapshot graph (fast-forwarded) or empty."""
        if loaded is None or loaded.graph is None:
            return MODELS[self._model]()
        graph = loaded.graph
        expected = MODELS[self._model]
        if type(graph) is not expected:
            raise StorageError(
                f"snapshot {loaded.path} decodes to "
                f"{type(graph).__name__}, store model is {self._model!r}")
        graph.mutation_log.fast_forward(loaded.version)
        return graph

    def _recover(self) -> None:
        report = RecoveryReport(model=self._model)
        loaded = snap.load_latest_snapshot(self._directory)
        report.snapshots_rejected = loaded.rejected
        if loaded.graph is not None:
            report.snapshot_version = loaded.version
            report.snapshot_path = loaded.path
        graph = self._fresh_base(loaded)

        segments = wal.list_segments(self._directory)
        entries: list[wal.WalEntry] = []
        origins: list[tuple[int, int]] = []  # per entry: (segment, offset)
        scans: list[wal.WalScan] = []
        stop_reason = None
        stop_segment_index = len(segments)
        for index, (_, _, path) in enumerate(segments):
            report.segments_scanned += 1
            scan = wal.read_wal(path)
            scans.append(scan)
            entries.extend(scan.entries)
            origins.extend((index, offset) for offset in scan.offsets)
            if scan.truncated is not None:
                stop_reason = scan.truncated
                stop_segment_index = index
                report.truncated_bytes += scan.total_bytes - scan.valid_bytes
                if not self._read_only:
                    wal.repair(path, scan)
                break

        replayed, skipped, replay_stop, stop_entry = self._replay(
            graph, entries, loaded)
        report.entries_replayed = replayed
        report.entries_skipped = skipped

        if replay_stop is not None:
            # Replay rejected a CRC-valid entry: repair the stop point on
            # disk, exactly as for a torn frame.  The owning segment is
            # truncated at the rejected record's frame (the discarded
            # bytes preserved in a quarantine file, never silently
            # replayed) *before* the fresh writer attaches — otherwise
            # every future recovery would re-stop here and silently drop
            # writes acknowledged after this open.
            stop_reason = replay_stop
            seg_index, start_offset = origins[stop_entry]
            stop_segment_index = seg_index
            scan = scans[seg_index]
            seg_path = segments[seg_index][2]
            report.truncated_bytes += scan.valid_bytes - start_offset
            if not self._read_only:
                report.quarantined.append(self._quarantine_tail(
                    seg_path, start_offset, scan.valid_bytes))
                wal.repair(seg_path, wal.WalScan(
                    entries=[], valid_bytes=start_offset,
                    total_bytes=scan.valid_bytes))
        report.truncated_reason = stop_reason

        if stop_reason is not None:
            for _, _, path in segments[stop_segment_index + 1:]:
                report.quarantined.append(
                    path if self._read_only else self._quarantine(path))

        self._graph = graph
        report.final_version = graph.version
        self.recovery = report

    def _replay(self, graph, entries: list[wal.WalEntry],
                loaded: snap.SnapshotLoad):
        """Apply WAL entries onto ``graph``.

        Returns ``(replayed, skipped, stop_reason, stop_index)`` where
        ``stop_index`` locates the rejected entry in ``entries`` (``None``
        for a clean replay) so the caller can repair the segment it came
        from.  Entries at or below the current version are skipped
        (snapshot overlap and duplicate-version records are both normal
        after a crash between checkpoint steps).  An entry that cannot be
        applied, or whose version stamp disagrees with the version the
        graph actually reached, stops replay — the remainder is
        unreachable history, handled by the caller.  A version mismatch
        discovered *after* applying rolls back by replaying the
        known-good prefix onto a fresh base, so the recovered graph never
        includes the mismatched op.
        """
        replayed = 0
        skipped = 0
        good: list[wal.WalEntry] = []
        for index, entry in enumerate(entries):
            if entry.version <= graph.version:
                skipped += 1
                continue
            if entry.op not in REPLAYABLE_OPS:
                return replayed, skipped, f"unknown op {entry.op!r}", index
            if entry.op in _PROPERTY_OPS and self._model != "property":
                return (replayed, skipped,
                        f"op {entry.op!r} invalid for model {self._model!r}",
                        index)
            try:
                getattr(graph, entry.op)(*entry.args)
            except (ReproError, TypeError) as error:
                return (replayed, skipped,
                        f"replay of {entry.op} failed: {error}", index)
            if graph.version != entry.version:
                rebuilt = self._fresh_base(
                    snap.load_latest_snapshot(self._directory)
                    if loaded.graph is not None else None)
                for prior in good:
                    getattr(rebuilt, prior.op)(*prior.args)
                graph.__dict__.update(rebuilt.__dict__)
                return (replayed, skipped,
                        f"version stamp mismatch at {entry.op} "
                        f"(expected {entry.version}, got {graph.version})",
                        index)
            good.append(entry)
            replayed += 1
        return replayed, skipped, None, None

    def _quarantine_target(self, path: str) -> str:
        target = path + ".quarantined"
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = f"{path}.quarantined{suffix}"
        return target

    def _quarantine(self, path: str) -> str:
        target = self._quarantine_target(path)
        os.rename(path, target)
        return target

    def _quarantine_tail(self, path: str, start: int, end: int) -> str:
        """Preserve bytes ``[start, end)`` of a segment before truncation.

        The quarantine file holds the rejected record and everything after
        it in the segment — frames only, no magic, so it can never be
        mistaken for (or listed as) a live segment.
        """
        target = self._quarantine_target(path)
        with open(path, "rb") as source:
            source.seek(start)
            tail = source.read(max(0, end - start))
        with open(target, "wb") as handle:
            handle.write(tail)
            handle.flush()
            os.fsync(handle.fileno())
        wal.fsync_directory(self._directory)
        return target

    # -- the durable write path --------------------------------------------

    def _check_usable(self) -> None:
        if self._closed:
            raise StorageError("store is closed")
        if self._failed:
            raise StorageError(
                "store failed after an unrecoverable WAL write error; "
                "reopen to recover the acknowledged state")

    def _mutate(self, op: str, args: list) -> None:
        if self._read_only:
            raise StorageError("store was opened read-only")
        self._check_usable()
        _canonical_args(args)
        pre_version = self._graph.version
        getattr(self._graph, op)(*args)
        if self._graph.version == pre_version:
            return  # elided no-op: nothing happened, nothing to make durable
        try:
            self._writer.append(self._graph.version, op, args)
        except WalWriteError:
            # The in-memory graph is now ahead of the log.  Accepting more
            # writes would log them with version stamps that skip the lost
            # one, guaranteeing a replay stop on recovery — poison the
            # store instead, so the failure surfaces here, not as silent
            # data loss at the next open.
            self._failed = True
            raise
        self._ops_since_checkpoint += 1
        if self._snapshot_every is not None \
                and self._ops_since_checkpoint >= self._snapshot_every:
            self.checkpoint()

    def add_node(self, node, label=None, properties=None):
        if self._model == "property":
            self._mutate("add_node", [node, label, properties])
        else:
            if properties:
                raise StorageError(
                    "labeled stores have no properties; use a property store")
            self._mutate("add_node", [node, label])
        return node

    def add_edge(self, edge, source, target, label=None, properties=None):
        if self._model == "property":
            self._mutate("add_edge", [edge, source, target, label, properties])
        else:
            if properties:
                raise StorageError(
                    "labeled stores have no properties; use a property store")
            self._mutate("add_edge", [edge, source, target, label])
        return edge

    def remove_node(self, node):
        self._mutate("remove_node", [node])

    def remove_edge(self, edge):
        self._mutate("remove_edge", [edge])

    def set_node_label(self, node, label):
        self._mutate("set_node_label", [node, label])

    def set_edge_label(self, edge, label):
        self._mutate("set_edge_label", [edge, label])

    def set_node_property(self, node, prop, value):
        if self._model != "property":
            raise StorageError("labeled stores have no properties")
        self._mutate("set_node_property", [node, prop, value])

    def set_edge_property(self, edge, prop, value):
        if self._model != "property":
            raise StorageError("labeled stores have no properties")
        self._mutate("set_edge_property", [edge, prop, value])

    def ingest(self, graph) -> int:
        """Bulk-load another graph's content as durable mutations.

        Returns the number of mutations applied.  Deterministic order
        (sorted ids) so two ingests of equal graphs produce identical
        logs.  Id collisions surface as the model's own errors.
        """
        count = 0
        has_props = hasattr(graph, "node_properties")
        for node in sorted(graph.nodes(), key=str):
            label = graph.node_label(node) if hasattr(graph, "node_label") \
                else None
            props = graph.node_properties(node) if has_props else None
            self.add_node(node, label,
                          props if self._model == "property" else None)
            count += 1
        for edge in sorted(graph.edges(), key=str):
            source, target = graph.endpoints(edge)
            label = graph.edge_label(edge) if hasattr(graph, "edge_label") \
                else None
            props = graph.edge_properties(edge) if has_props else None
            self.add_edge(edge, source, target, label,
                          props if self._model == "property" else None)
            count += 1
        return count

    # -- checkpointing and lifecycle ---------------------------------------

    def checkpoint(self) -> str:
        """Snapshot the current state and rotate/prune the log.

        Order matters for crash safety: (1) fsync the WAL so the snapshot
        never claims writes the log does not hold, (2) write the snapshot
        via temp-file + atomic rename, (3) rotate to a fresh segment, (4)
        prune superseded snapshots and segments.  A crash between any two
        steps leaves a recoverable store — at worst with redundant files
        the next checkpoint sweeps.
        """
        if self._read_only:
            raise StorageError("store was opened read-only")
        self._check_usable()
        try:
            self._writer.flush()
        except WalWriteError:
            self._failed = True  # durability of acked writes now unknown
            raise
        version = self._graph.version
        path = snap.write_snapshot(self._directory, self._graph, version)
        # The disk-read half of the checkpoint: CSR segments a cold start
        # can mmap and query without replaying this store into memory.
        # Written after the snapshot so a crash in between still leaves a
        # recoverable (snapshot-only) checkpoint.
        diskread.write_segments(self._directory, self._graph, version,
                                model=self._model)
        self._writer.close()
        last_seq = max((seq for seq, _, _ in
                        wal.list_segments(self._directory)), default=0)
        self._writer = wal.WalWriter(
            os.path.join(self._directory,
                         wal.segment_name(last_seq + 1, version)),
            fsync=self._fsync, batch_size=self._batch_size, io=self._io,
            retries=self._retries, backoff=self._backoff)
        self._prune()
        self._ops_since_checkpoint = 0
        return path

    def _prune(self) -> None:
        snap.prune_snapshots(self._directory, keep=self._keep_snapshots)
        diskread.prune_segment_files(self._directory,
                                     keep=self._keep_snapshots)
        retained = snap.list_snapshots(self._directory)
        if not retained:
            return
        oldest_kept = retained[-1][0]
        segments = wal.list_segments(self._directory)
        # Segment i only holds versions below segment i+1's from-stamp;
        # once that stamp is covered by the oldest snapshot any recovery
        # can start from, segment i is unreachable history.
        for (_, _, path), (_, next_from, _) in zip(segments, segments[1:]):
            if next_from <= oldest_kept:
                try:
                    os.remove(path)
                except OSError:  # pragma: no cover - permission oddities
                    pass

    def flush(self) -> None:
        """Fsync the WAL now, regardless of policy."""
        if self._read_only or self._closed:
            return
        self._check_usable()
        try:
            self._writer.flush()
        except WalWriteError:
            self._failed = True
            raise

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._writer is not None:
            # A failed store must not fsync on the way out: the flush
            # would likely raise again (masking the original error in
            # ``__exit__``), and nothing after the poison point was
            # acknowledged anyway.
            self._writer.close(flush=not self._failed)

    def abort(self) -> None:
        """Drop the store without flushing anything — a simulated crash.

        The disk keeps exactly what the fsync policy had already made
        durable; the crash-fault harness uses this (after an injected
        :class:`~repro.exec.faults.WriteCrash`) to release file
        descriptors without giving the writer a chance to sync.
        """
        if self._closed:
            return
        self._closed = True
        if self._writer is not None:
            self._writer.close(flush=False)

    def __enter__(self) -> "DurableGraph":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection ------------------------------------------------------

    @property
    def graph(self):
        """The live in-memory graph: hand this to query engines and caches."""
        return self._graph

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def model(self) -> str:
        return self._model

    @property
    def version(self) -> int:
        return self._graph.version

    def stats(self) -> dict:
        info = {
            "directory": self._directory,
            "model": self._model,
            "version": self._graph.version,
            "nodes": self._graph.node_count(),
            "edges": self._graph.edge_count(),
            "read_only": self._read_only,
            "failed": self._failed,
            "snapshots": [version for version, _ in
                          snap.list_snapshots(self._directory)],
            "segments": len(wal.list_segments(self._directory)),
        }
        if self._writer is not None:
            info["wal"] = self._writer.stats()
        return info

    def __getattr__(self, name: str):
        # Read-path delegation: anything not defined here (nodes, edges,
        # label indexes, mutation_log, ...) resolves against the live
        # graph, so a DurableGraph can stand in wherever a graph is read.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.__dict__["_graph"], name)

    def __repr__(self) -> str:
        return (f"<DurableGraph {self._model} dir={self._directory!r} "
                f"version={self._graph.version}>")
