"""An indexed in-memory triple store (the RDF storage substrate).

Maintains the three cyclic index permutations SPO, POS and OSP as nested
dictionaries, so every triple-pattern shape — any subset of {s, p, o}
bound — is answered by index lookup rather than a scan.  This is the
storage layer under the mini-SPARQL engine of :mod:`repro.query.sparql`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.cache.versioning import MutationLog
from repro.models.rdf import RDFGraph, Triple, _triple_record_fields


class TripleStore:
    """Set-of-triples storage with SPO/POS/OSP indexes.

    Like the model classes, the store keeps a
    :class:`~repro.cache.versioning.MutationLog` of its own: it is built by
    copying triples out of an :class:`RDFGraph` (it holds no reference back),
    so SPARQL results cached against a store are versioned against the
    store's mutations, not the source graph's.
    """

    def __init__(self, triples: Iterable[Triple | tuple[str, str, str]] = ()) -> None:
        self._spo: dict[str, dict[str, set[str]]] = {}
        self._pos: dict[str, dict[str, set[str]]] = {}
        self._osp: dict[str, dict[str, set[str]]] = {}
        self._size = 0
        self.mutation_log = MutationLog()
        for triple in triples:
            self.add(*triple)

    @property
    def version(self) -> int:
        """Monotonically increasing mutation counter for this store."""
        return self.mutation_log.version

    @classmethod
    def from_graph(cls, graph: RDFGraph) -> "TripleStore":
        return cls(graph.triples())

    def to_graph(self) -> RDFGraph:
        return RDFGraph(self.triples())

    # -- updates -------------------------------------------------------------

    def add(self, subject: str, predicate: str, obj: str) -> bool:
        """Insert a triple; returns False if it was already present."""
        subjects = self._spo.setdefault(subject, {})
        objects = subjects.setdefault(predicate, set())
        if obj in objects:
            return False
        objects.add(obj)
        self._pos.setdefault(predicate, {}).setdefault(obj, set()).add(subject)
        self._osp.setdefault(obj, {}).setdefault(subject, set()).add(predicate)
        self._size += 1
        self.mutation_log.record("add_triple",
                                 payload=(subject, predicate, obj),
                                 **_triple_record_fields(predicate, obj))
        return True

    def remove(self, subject: str, predicate: str, obj: str) -> bool:
        """Delete a triple; returns False if it was not present."""
        try:
            self._spo[subject][predicate].remove(obj)
        except KeyError:
            return False
        self._pos[predicate][obj].discard(subject)
        self._osp[obj][subject].discard(predicate)
        self._size -= 1
        self._prune(self._spo, subject, predicate)
        self._prune(self._pos, predicate, obj)
        self._prune(self._osp, obj, subject)
        self.mutation_log.record("remove_triple",
                                 payload=(subject, predicate, obj),
                                 **_triple_record_fields(predicate, obj))
        return True

    @staticmethod
    def _prune(index: dict, first: str, second: str) -> None:
        if not index[first][second]:
            del index[first][second]
        if not index[first]:
            del index[first]

    # -- lookups ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: object) -> bool:
        if not (isinstance(triple, tuple) and len(triple) == 3):
            return False
        s, p, o = triple
        return o in self._spo.get(s, {}).get(p, ())

    def triples(self) -> Iterator[Triple]:
        for s, by_predicate in self._spo.items():
            for p, objects in by_predicate.items():
                for o in objects:
                    yield Triple(s, p, o)

    def match(self, subject: str | None = None, predicate: str | None = None,
              obj: str | None = None) -> Iterator[Triple]:
        """All triples matching the pattern; ``None`` is a wildcard.

        Every binding shape is served by the best index permutation.
        """
        if subject is not None:
            by_predicate = self._spo.get(subject, {})
            predicates = [predicate] if predicate is not None else list(by_predicate)
            for p in predicates:
                objects = by_predicate.get(p, ())
                if obj is not None:
                    if obj in objects:
                        yield Triple(subject, p, obj)
                else:
                    for o in objects:
                        yield Triple(subject, p, o)
            return
        if predicate is not None:
            by_object = self._pos.get(predicate, {})
            objects = [obj] if obj is not None else list(by_object)
            for o in objects:
                for s in by_object.get(o, ()):
                    yield Triple(s, predicate, o)
            return
        if obj is not None:
            by_subject = self._osp.get(obj, {})
            for s, predicates in by_subject.items():
                for p in predicates:
                    yield Triple(s, p, obj)
            return
        yield from self.triples()

    def count(self, subject: str | None = None, predicate: str | None = None,
              obj: str | None = None) -> int:
        """Cardinality of a pattern (used by the BGP join planner)."""
        return sum(1 for _ in self.match(subject, predicate, obj))

    def subjects(self) -> set[str]:
        return set(self._spo)

    def predicates(self) -> set[str]:
        return set(self._pos)

    def objects(self) -> set[str]:
        return set(self._osp)

    def resources(self) -> set[str]:
        return self.subjects() | self.objects()
