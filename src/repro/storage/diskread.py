"""Disk-backed CSR reads: offset-indexed adjacency segments served via mmap.

PR 7 built the write half of the storage engine (WAL + snapshots); this is
the read half, in the MillenniumDB mold of a persistent RPQ-native store
with *compact adjacency*: a cold start should answer
:func:`~repro.core.rpq.endpoint_pairs` / ``count_paths_exact`` without
materializing the whole graph through :func:`repro.models.io.loads`.

**File layout.**  ``csr-<version>.seg`` is written at every
:meth:`~repro.storage.DurableGraph.checkpoint` next to
``snapshot-<version>.json``.  It starts with the 8-byte magic
``b"RCSR1\\n\\r\\n"`` followed by CRC-framed blocks in the WAL's framing::

    <u32 payload-length> <u32 crc32(payload)> <payload bytes>

The first frame is the **header**: canonical JSON naming the model, the
graph version, node/edge totals, and an offset table — byte offset and
framed length of the node table, of one edge segment *per edge label*, and
(for property stores) of the node/edge property rows.  Offsets are
relative to the end of the header frame, so the header never has to know
its own encoded size.

Per-label edge segments are little CSR slabs mirroring
:class:`~repro.core.rpq.vectorized.arrays.GraphArrays`: a ``<u32 k>
<u32 ids-length>`` prologue, the ``k`` edge ids as canonical JSON, then
two dense ``int32`` little-endian arrays — source and target *node
indexes* into the node table.  Node ids, labels and properties are stored
as JSON (a durable store only ever holds JSON-faithful values — the WAL
enforces that on every write), endpoints as fixed-width integers, which is
what lets the vector engine map them straight out of the file.

**Laziness.**  :class:`MmapCsrBackend` opens the file read-only via
``mmap`` and decodes the header and node table eagerly — everything else
on demand, one label segment at a time.  A label-restricted RPQ therefore
touches exactly the segments in its label footprint: the per-label
adjacency the product construction probes, the per-label edge positions
the vector kernel masks, and the ``label_edge_count`` the ``auto`` engine
heuristic reads straight from the header (no decode at all).  Wildcard
tests and whole-graph iteration decode every segment, as they must.
``stats()`` / ``decoded_labels()`` expose exactly what was decoded, so
tests can *prove* the bounded-materialization claim instead of assuming
it.

A frame that fails its CRC raises :class:`~repro.errors.SegmentError` at
decode time — at open for the header/node table (where
:func:`open_latest_segments` falls back to an older file, mirroring
snapshot recovery), at first touch for a lazily-read segment.
"""

from __future__ import annotations

import json
import mmap
import os
import re
import struct
import sys
import zlib
from array import array

from repro.cache.versioning import MutationLog
from repro.errors import SegmentError, UnknownEdgeError, UnknownNodeError
from repro.storage.wal import fsync_directory
from repro.util import canonical_sort_key

MAGIC = b"RCSR1\n\r\n"
CSR_FORMAT = "repro.storage.csr"
CSR_VERSION = 1

_FRAME = struct.Struct("<II")
_SEGMENT_PROLOGUE = struct.Struct("<II")

#: Any framed length beyond this is corruption, not a frame (WAL idiom).
MAX_FRAME_BYTES = 1 << 28

#: Node/edge counts must index into int32 arrays.
_INT32_MAX = 2 ** 31 - 1

_FILE_RE = re.compile(r"^csr-(\d+)\.seg$")


def segments_name(version: int) -> str:
    return f"csr-{version}.seg"


def list_segment_files(directory: str) -> list[tuple[int, str]]:
    """``(graph_version, path)`` for every segment file, newest first."""
    found = []
    for name in os.listdir(directory):
        match = _FILE_RE.match(name)
        if match:
            found.append((int(match.group(1)),
                          os.path.join(directory, name)))
    found.sort(reverse=True)
    return found


def prune_segment_files(directory: str, keep: int = 2) -> list[str]:
    """Delete all but the ``keep`` newest segment files; sweep tmp junk.

    Best-effort, like :func:`~repro.storage.snapshot.prune_snapshots`: an
    unremovable file waits for the next checkpoint.
    """
    removed = []
    doomed = [path for _, path in list_segment_files(directory)[keep:]]
    doomed.extend(os.path.join(directory, name)
                  for name in os.listdir(directory)
                  if name.endswith(".seg.tmp"))
    for path in doomed:
        try:
            os.remove(path)
            removed.append(path)
        except OSError:  # pragma: no cover - permission oddities
            pass
    return removed


def _canonical_json(value) -> bytes:
    return json.dumps(value, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _pack_int32(values: list[int]) -> bytes:
    packed = array("i", values)
    if sys.byteorder == "big":  # pragma: no cover - LE everywhere we run
        packed.byteswap()
    return packed.tobytes()


def _unpack_int32(data: bytes) -> array:
    unpacked = array("i")
    unpacked.frombytes(data)
    if sys.byteorder == "big":  # pragma: no cover
        unpacked.byteswap()
    return unpacked


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def write_segments(directory: str, graph, version: int,
                   *, model: str | None = None) -> str:
    """Atomically write ``csr-<version>.seg`` for ``graph``; returns the path.

    Deterministic: nodes, labels and per-label edge ids are ordered by
    :func:`~repro.util.canonical_sort_key`, so equal graphs produce
    byte-identical segment files regardless of insertion order (the same
    contract :func:`~repro.models.io.dumps` gives snapshots).
    """
    if model is None:
        model = "property" if hasattr(graph, "node_properties") else "labeled"
    nodes = sorted(graph.nodes(), key=canonical_sort_key)
    if len(nodes) > _INT32_MAX:
        raise SegmentError(f"graph too large for int32 CSR: "
                           f"{len(nodes)} nodes")
    index = {node: position for position, node in enumerate(nodes)}

    by_label: dict = {}
    for edge in graph.edges():
        by_label.setdefault(graph.edge_label(edge), []).append(edge)
    labels = sorted(by_label, key=canonical_sort_key)

    frames: list[bytes] = []
    descriptors: list[dict] = []
    offset = 0

    def emit(payload: bytes) -> tuple[int, int]:
        nonlocal offset
        framed = _frame(payload)
        frames.append(framed)
        start = offset
        offset += len(framed)
        return start, len(framed)

    node_table = [[node, graph.node_label(node)] for node in nodes]
    node_offset, node_length = emit(_canonical_json(node_table))

    ordered_edges: list = []
    edge_count = 0
    for label in labels:
        bucket = sorted(by_label[label], key=canonical_sort_key)
        ordered_edges.extend(bucket)
        ids_payload = _canonical_json(bucket)
        src = []
        dst = []
        for edge in bucket:
            source, target = graph.endpoints(edge)
            src.append(index[source])
            dst.append(index[target])
        payload = (_SEGMENT_PROLOGUE.pack(len(bucket), len(ids_payload))
                   + ids_payload + _pack_int32(src) + _pack_int32(dst))
        seg_offset, seg_length = emit(payload)
        descriptors.append({"label": label, "edges": len(bucket),
                            "offset": seg_offset, "length": seg_length})
        edge_count += len(bucket)
    if edge_count > _INT32_MAX:
        raise SegmentError(f"graph too large for int32 CSR: "
                           f"{edge_count} edges")

    header: dict = {
        "format": CSR_FORMAT,
        "version": CSR_VERSION,
        "model": model,
        "graph_version": version,
        "nodes": len(nodes),
        "edges": edge_count,
        "node_table": {"offset": node_offset, "length": node_length},
        "labels": descriptors,
        "node_props": None,
        "edge_props": None,
    }
    if model == "property":
        node_props = [graph.node_properties(node) for node in nodes]
        props_offset, props_length = emit(_canonical_json(node_props))
        header["node_props"] = {"offset": props_offset,
                                "length": props_length}
        edge_props = [graph.edge_properties(edge) for edge in ordered_edges]
        props_offset, props_length = emit(_canonical_json(edge_props))
        header["edge_props"] = {"offset": props_offset,
                                "length": props_length}

    final_path = os.path.join(directory, segments_name(version))
    tmp_path = final_path + ".tmp"
    try:
        with open(tmp_path, "wb") as handle:
            handle.write(MAGIC)
            handle.write(_frame(_canonical_json(header)))
            for framed in frames:
                handle.write(framed)
            handle.flush()
            os.fsync(handle.fileno())
        os.rename(tmp_path, final_path)
        fsync_directory(directory)
    except OSError as error:
        raise SegmentError(
            f"cannot write CSR segments {final_path}: {error}") from error
    return final_path


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


class _LabelSegment:
    """One decoded per-label slab: edge ids + dense endpoint indexes."""

    __slots__ = ("edge_ids", "src", "dst", "start")

    def __init__(self, edge_ids, src, dst, start: int) -> None:
        self.edge_ids = edge_ids
        self.src = src
        self.dst = dst
        self.start = start  # global edge-position base of this segment


class _LazyAdjacency:
    """A read-only ``(node, label) -> edge-bucket`` view over the backend.

    Satisfies exactly what :func:`repro.core.rpq.product._edge_fetchers`
    needs from :meth:`~repro.models.labeled.LabeledGraph.label_adjacency_index`:
    one ``.get(key, default)`` probe per node per transition.  The first
    probe of a label decodes its segment and builds its buckets; labels a
    query never names are never touched.
    """

    __slots__ = ("_backend", "_direction")

    def __init__(self, backend: "MmapCsrBackend", direction: int) -> None:
        self._backend = backend
        self._direction = direction

    def get(self, key, default=None):
        label = key[1]
        backend = self._backend
        if label in backend._label_meta:
            backend._ensure_adjacency(label)
        buckets = (backend._in_buckets if self._direction
                   else backend._out_buckets)
        return buckets.get(key, default)

    def __getitem__(self, key):
        found = self.get(key)
        if found is None:
            raise KeyError(key)
        return found


class MmapCsrBackend:
    """Read-only graph views over one mmapped ``csr-<version>.seg`` file.

    Duck-types the read surface of the labeled in-memory models (the
    ``GraphBackend`` protocol of :mod:`repro.storage.backend` and then
    some), so the RPQ core, the three frontends and the stores can query
    it unchanged.  Mutation methods do not exist — this is the cold-start
    query path; writes go through :class:`~repro.storage.DurableGraph`.

    Decoding is lazy per label segment and strictly monotone: nothing is
    ever re-read, nothing is decoded twice, and :meth:`stats` /
    :meth:`decoded_labels` report exactly what a workload touched.
    """

    def __init__(self, path: str) -> None:
        self._path = path
        try:
            with open(path, "rb") as handle:
                self._mm = mmap.mmap(handle.fileno(), 0,
                                     access=mmap.ACCESS_READ)
        except (OSError, ValueError) as error:
            raise SegmentError(
                f"cannot open CSR segments {path}: {error}") from error
        if self._mm[:len(MAGIC)] != MAGIC:
            raise SegmentError(f"{path} is not a CSR segment file "
                               f"(bad magic)")
        header_payload, end = self._read_frame(len(MAGIC), "header")
        try:
            header = json.loads(header_payload)
        except ValueError as error:
            raise SegmentError(
                f"{path}: header is not valid JSON: {error}") from error
        self._header = self._validate_header(header)
        self._data_start = end
        self._model = header["model"]
        self._n = header["nodes"]
        self._m = header["edges"]

        # Per-label descriptors, in file order; ``start`` is the global
        # edge-position base (segments concatenate to the edge universe).
        self._label_meta: dict = {}
        start = 0
        for descriptor in header["labels"]:
            label = _hashable_label(descriptor["label"], path)
            self._label_meta[label] = {
                "offset": descriptor["offset"],
                "length": descriptor["length"],
                "edges": descriptor["edges"],
                "start": start,
            }
            start += descriptor["edges"]
        if start != self._m:
            raise SegmentError(
                f"{path}: header edge total {self._m} != sum of label "
                f"segments {start}")

        # Node table: decoded eagerly — id <-> dense index and node labels
        # are needed by every query shape.
        table_meta = header["node_table"]
        payload, _ = self._read_frame(
            self._data_start + table_meta["offset"], "node table")
        try:
            table = json.loads(payload)
        except ValueError as error:
            raise SegmentError(
                f"{path}: node table is not valid JSON: {error}") from error
        if not isinstance(table, list) or len(table) != self._n:
            raise SegmentError(f"{path}: node table holds "
                               f"{len(table) if isinstance(table, list) else '?'}"
                               f" rows, header says {self._n}")
        self._nodes: list = []
        self._node_index: dict = {}
        self._node_labels: dict = {}
        self._nodes_by_label: dict = {}
        for row in table:
            if not isinstance(row, list) or len(row) != 2:
                raise SegmentError(f"{path}: malformed node-table row "
                                   f"{row!r}")
            node, label = row
            node = _hashable_label(node, path)
            label = _hashable_label(label, path)
            self._node_index[node] = len(self._nodes)
            self._nodes.append(node)
            self._node_labels[node] = label
            self._nodes_by_label.setdefault(label, []).append(node)
        if len(self._node_labels) != self._n:
            raise SegmentError(f"{path}: duplicate node ids in node table")

        self._segments: dict = {}          # label -> _LabelSegment
        self._edge_info: dict = {}         # edge -> (source, target, label)
        self._indexed: set = set()         # labels with adjacency buckets
        self._out_buckets: dict = {}       # (node, label) -> {edge: None}
        self._in_buckets: dict = {}
        self._out_incidence: dict | None = None  # node -> [edges] (full)
        self._in_incidence: dict | None = None
        self._lazy_out = _LazyAdjacency(self, 0)
        self._lazy_in = _LazyAdjacency(self, 1)
        self._node_props: list | None = None
        self._edge_props: dict | None = None
        self._segment_decodes = 0
        self._props_decodes = 0

        # A static mutation log fast-forwarded to the checkpoint version:
        # caches and the arrays LRU stamp entries against the same version
        # timeline the durable store uses, and (the graph being immutable)
        # every stored entry validates forever.
        self.mutation_log = MutationLog()
        self.mutation_log.fast_forward(header["graph_version"])

    # -- framing -----------------------------------------------------------

    def _read_frame(self, offset: int, what: str) -> tuple[bytes, int]:
        mm = self._mm
        if offset + _FRAME.size > len(mm):
            raise SegmentError(f"{self._path}: truncated {what} frame "
                               f"header at offset {offset}")
        length, crc = _FRAME.unpack_from(mm, offset)
        if length > MAX_FRAME_BYTES:
            raise SegmentError(f"{self._path}: implausible {what} frame "
                               f"length {length}")
        start = offset + _FRAME.size
        end = start + length
        if end > len(mm):
            raise SegmentError(f"{self._path}: truncated {what} frame "
                               f"payload at offset {offset}")
        payload = mm[start:end]
        if zlib.crc32(payload) != crc:
            raise SegmentError(f"{self._path}: {what} frame checksum "
                               f"mismatch at offset {offset}")
        return payload, end

    def _validate_header(self, header) -> dict:
        if not isinstance(header, dict):
            raise SegmentError(f"{self._path}: header is not a JSON object")
        if header.get("format") != CSR_FORMAT:
            raise SegmentError(f"{self._path}: wrong format tag "
                               f"{header.get('format')!r}")
        if header.get("version") != CSR_VERSION:
            raise SegmentError(f"{self._path}: unsupported CSR version "
                               f"{header.get('version')!r}")
        for key, kind in (("model", str), ("graph_version", int),
                          ("nodes", int), ("edges", int),
                          ("node_table", dict), ("labels", list)):
            if not isinstance(header.get(key), kind):
                raise SegmentError(f"{self._path}: header field {key!r} "
                                   f"missing or ill-typed")
        return header

    # -- lazy decoding -----------------------------------------------------

    def _ensure_segment(self, label) -> _LabelSegment:
        segment = self._segments.get(label)
        if segment is not None:
            return segment
        meta = self._label_meta[label]
        payload, _ = self._read_frame(self._data_start + meta["offset"],
                                      f"label segment {label!r}")
        if len(payload) < _SEGMENT_PROLOGUE.size:
            raise SegmentError(f"{self._path}: label segment {label!r} "
                               f"too short")
        count, ids_length = _SEGMENT_PROLOGUE.unpack_from(payload, 0)
        expected = _SEGMENT_PROLOGUE.size + ids_length + 8 * count
        if count != meta["edges"] or len(payload) != expected:
            raise SegmentError(f"{self._path}: label segment {label!r} "
                               f"geometry mismatch")
        ids_start = _SEGMENT_PROLOGUE.size
        try:
            edge_ids = json.loads(payload[ids_start:ids_start + ids_length])
        except ValueError as error:
            raise SegmentError(f"{self._path}: label segment {label!r} "
                               f"edge ids are not valid JSON: "
                               f"{error}") from error
        if not isinstance(edge_ids, list) or len(edge_ids) != count:
            raise SegmentError(f"{self._path}: label segment {label!r} "
                               f"id count mismatch")
        edge_ids = [_hashable_label(edge, self._path) for edge in edge_ids]
        src_start = ids_start + ids_length
        src = _unpack_int32(payload[src_start:src_start + 4 * count])
        dst = _unpack_int32(payload[src_start + 4 * count:])
        nodes = self._nodes
        info = self._edge_info
        for position, edge in enumerate(edge_ids):
            source_index = src[position]
            target_index = dst[position]
            if not (0 <= source_index < self._n
                    and 0 <= target_index < self._n):
                raise SegmentError(f"{self._path}: label segment {label!r} "
                                   f"references node index out of range")
            if edge in info:
                raise SegmentError(f"{self._path}: duplicate edge id "
                                   f"{edge!r} across segments")
            info[edge] = (nodes[source_index], nodes[target_index], label)
        segment = _LabelSegment(edge_ids, src, dst, meta["start"])
        self._segments[label] = segment
        self._segment_decodes += 1
        return segment

    def _ensure_adjacency(self, label) -> None:
        if label in self._indexed:
            return
        segment = self._ensure_segment(label)
        out_buckets = self._out_buckets
        in_buckets = self._in_buckets
        nodes = self._nodes
        for position, edge in enumerate(segment.edge_ids):
            source = nodes[segment.src[position]]
            target = nodes[segment.dst[position]]
            out_buckets.setdefault((source, label), {})[edge] = None
            in_buckets.setdefault((target, label), {})[edge] = None
        self._indexed.add(label)

    def _ensure_all(self) -> None:
        for label in self._label_meta:
            self._ensure_segment(label)

    def _ensure_incidence(self) -> None:
        if self._out_incidence is not None:
            return
        self._ensure_all()
        out_incidence: dict = {node: [] for node in self._nodes}
        in_incidence: dict = {node: [] for node in self._nodes}
        for segment in self._segments.values():
            nodes = self._nodes
            for position, edge in enumerate(segment.edge_ids):
                out_incidence[nodes[segment.src[position]]].append(edge)
                in_incidence[nodes[segment.dst[position]]].append(edge)
        self._out_incidence = out_incidence
        self._in_incidence = in_incidence

    def _require_node(self, node) -> None:
        if node not in self._node_labels:
            raise UnknownNodeError(node)

    def _require_edge(self, edge) -> tuple:
        info = self._edge_info.get(edge)
        if info is None:
            # Not decoded yet (or genuinely absent): a point lookup of an
            # arbitrary edge id has no label to route by, so it forces the
            # remaining segments in.  Engines never hit this path — they
            # only ask about edges a fetcher already produced.
            self._ensure_all()
            info = self._edge_info.get(edge)
            if info is None:
                raise UnknownEdgeError(edge)
        return info

    # -- the graph read surface --------------------------------------------

    def nodes(self):
        return iter(self._nodes)

    def edges(self):
        for label in self._label_meta:
            yield from self._ensure_segment(label).edge_ids

    def has_node(self, node) -> bool:
        return node in self._node_labels

    def has_edge(self, edge) -> bool:
        if edge in self._edge_info:
            return True
        if len(self._segments) == len(self._label_meta):
            return False
        self._ensure_all()
        return edge in self._edge_info

    def node_count(self) -> int:
        return self._n

    def edge_count(self) -> int:
        return self._m

    def __len__(self) -> int:
        return self._n

    def __contains__(self, node) -> bool:
        return node in self._node_labels

    def endpoints(self, edge) -> tuple:
        info = self._require_edge(edge)
        return info[0], info[1]

    def source(self, edge):
        return self._require_edge(edge)[0]

    def target(self, edge):
        return self._require_edge(edge)[1]

    def edge_label(self, edge):
        return self._require_edge(edge)[2]

    def node_label(self, node):
        try:
            return self._node_labels[node]
        except KeyError:
            raise UnknownNodeError(node) from None

    def nodes_with_label(self, label):
        return iter(self._nodes_by_label.get(label, ()))

    def edges_with_label(self, label):
        if label not in self._label_meta:
            return iter(())
        return iter(self._ensure_segment(label).edge_ids)

    def node_label_set(self) -> set:
        return set(self._nodes_by_label)

    def edge_label_set(self) -> set:
        return set(self._label_meta)

    def label_edge_count(self, label) -> int:
        """Edges carrying ``label``, straight from the header — no decode.

        The ``auto`` engine's density signal
        (:func:`~repro.core.rpq.evaluate.footprint_edge_count`) prefers
        this hook, so engine resolution on a disk-backed graph sizes
        itself from the segment header alone.
        """
        meta = self._label_meta.get(label)
        return 0 if meta is None else meta["edges"]

    def out_edges_with_label(self, node, label) -> list:
        self._require_node(node)
        if label in self._label_meta:
            self._ensure_adjacency(label)
        return list(self._out_buckets.get((node, label), ()))

    def in_edges_with_label(self, node, label) -> list:
        self._require_node(node)
        if label in self._label_meta:
            self._ensure_adjacency(label)
        return list(self._in_buckets.get((node, label), ()))

    def iter_out_edges_with_label(self, node, label):
        return iter(self.out_edges_with_label(node, label))

    def iter_in_edges_with_label(self, node, label):
        return iter(self.in_edges_with_label(node, label))

    def label_adjacency_index(self) -> tuple:
        """``(out, in)`` lazy views probed as ``view.get((node, label))``."""
        return self._lazy_out, self._lazy_in

    def out_edges(self, node) -> list:
        self._require_node(node)
        self._ensure_incidence()
        return list(self._out_incidence[node])

    def in_edges(self, node) -> list:
        self._require_node(node)
        self._ensure_incidence()
        return list(self._in_incidence[node])

    def iter_out_edges(self, node):
        self._require_node(node)
        self._ensure_incidence()
        return iter(self._out_incidence[node])

    def iter_in_edges(self, node):
        self._require_node(node)
        self._ensure_incidence()
        return iter(self._in_incidence[node])

    def incident_edges(self, node) -> list:
        return self.out_edges(node) + self.in_edges(node)

    def out_degree(self, node) -> int:
        return len(self.out_edges(node))

    def in_degree(self, node) -> int:
        return len(self.in_edges(node))

    def degree(self, node) -> int:
        return self.out_degree(node) + self.in_degree(node)

    def successors(self, node):
        seen = set()
        for edge in self.iter_out_edges(node):
            target = self._edge_info[edge][1]
            if target not in seen:
                seen.add(target)
                yield target

    def predecessors(self, node):
        seen = set()
        for edge in self.iter_in_edges(node):
            source = self._edge_info[edge][0]
            if source not in seen:
                seen.add(source)
                yield source

    def neighbors(self, node) -> set:
        return set(self.successors(node)) | set(self.predecessors(node))

    # -- vector-engine fast path -------------------------------------------

    def csr_arrays(self):
        """Array views for :class:`~repro.core.rpq.vectorized.GraphArrays`.

        Returns ``(nodes, edges, src, dst, label_positions)`` with the
        int32 endpoint arrays mapped straight off the mmapped file
        (``np.frombuffer`` — no per-edge Python loop) and the per-label
        position arrays as dense ranges, because the file stores edges
        grouped by label.  Decodes every segment's ids (the vector kernel
        re-checks candidates against edge ids), which is fine: a vector
        evaluation touches the whole edge universe by construction.
        """
        from repro.core.rpq.vectorized.engine import numpy_or_none

        np = numpy_or_none()
        if np is None:  # pragma: no cover - engine resolution gates this
            raise SegmentError("csr_arrays needs numpy")
        edges: list = []
        src_parts = []
        dst_parts = []
        positions = {}
        for label, meta in self._label_meta.items():
            segment = self._ensure_segment(label)
            edges.extend(segment.edge_ids)
            count = meta["edges"]
            payload_start = (self._data_start + meta["offset"] + _FRAME.size
                             + _SEGMENT_PROLOGUE.size
                             + (meta["length"] - _FRAME.size
                                - _SEGMENT_PROLOGUE.size - 8 * count))
            # payload tail layout: ids JSON, then src, then dst int32 runs.
            src_parts.append(np.frombuffer(self._mm, dtype="<i4",
                                           count=count,
                                           offset=payload_start))
            dst_parts.append(np.frombuffer(self._mm, dtype="<i4",
                                           count=count,
                                           offset=payload_start + 4 * count))
            positions[label] = np.arange(meta["start"],
                                         meta["start"] + count,
                                         dtype=np.int32)
        if src_parts:
            src = np.concatenate(src_parts).astype(np.int32, copy=False)
            dst = np.concatenate(dst_parts).astype(np.int32, copy=False)
        else:
            src = np.empty(0, dtype=np.int32)
            dst = np.empty(0, dtype=np.int32)
        return list(self._nodes), edges, src, dst, positions

    # -- introspection ------------------------------------------------------

    @property
    def version(self) -> int:
        return self._header["graph_version"]

    @property
    def model(self) -> str:
        return self._model

    @property
    def path(self) -> str:
        return self._path

    def decoded_labels(self) -> set:
        """Labels whose edge segment has been decoded so far — the probe
        the bounded-materialization tests assert against."""
        return set(self._segments)

    def stats(self) -> dict:
        return {
            "path": self._path,
            "model": self._model,
            "graph_version": self.version,
            "nodes": self._n,
            "edges": self._m,
            "labels": len(self._label_meta),
            "segment_decodes": self._segment_decodes,
            "decoded_labels": sorted(self._segments,
                                     key=canonical_sort_key),
            "decoded_edges": len(self._edge_info),
            "props_decodes": self._props_decodes,
            "full_incidence": self._out_incidence is not None,
        }

    def backend_info(self) -> dict:
        """The EXPLAIN ``backend`` note: where answers come from."""
        return {
            "kind": "mmap-csr",
            "path": self._path,
            "model": self._model,
            "graph_version": self.version,
            "nodes": self._n,
            "edges": self._m,
            "labels": len(self._label_meta),
        }

    def close(self) -> None:
        self._mm.close()

    def __enter__(self) -> "MmapCsrBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self._model} "
                f"path={self._path!r} version={self.version} "
                f"decoded={len(self._segments)}/{len(self._label_meta)}>")


class MmapCsrPropertyBackend(MmapCsrBackend):
    """The property-model read surface over a property store's segments.

    Split into a subclass (mirroring ``LabeledGraph``/``PropertyGraph``)
    so that *labeled* backends genuinely lack ``node_properties`` — layers
    that feature-detect the property surface (``hasattr``) see the same
    shape they would on the in-memory models.
    """

    def _ensure_node_props(self) -> list:
        if self._node_props is None:
            meta = self._header.get("node_props")
            if not isinstance(meta, dict):
                raise SegmentError(f"{self._path}: property store segments "
                                   f"lack a node_props frame")
            payload, _ = self._read_frame(self._data_start + meta["offset"],
                                          "node properties")
            rows = json.loads(payload)
            if not isinstance(rows, list) or len(rows) != self._n:
                raise SegmentError(f"{self._path}: node_props row count "
                                   f"mismatch")
            self._node_props = rows
            self._props_decodes += 1
        return self._node_props

    def _ensure_edge_props(self) -> dict:
        if self._edge_props is None:
            meta = self._header.get("edge_props")
            if not isinstance(meta, dict):
                raise SegmentError(f"{self._path}: property store segments "
                                   f"lack an edge_props frame")
            payload, _ = self._read_frame(self._data_start + meta["offset"],
                                          "edge properties")
            rows = json.loads(payload)
            if not isinstance(rows, list) or len(rows) != self._m:
                raise SegmentError(f"{self._path}: edge_props row count "
                                   f"mismatch")
            # Rows align with global edge positions; key them by edge id
            # (which means decoding every segment's ids — property reads
            # are row-store reads, not adjacency reads).
            self._ensure_all()
            keyed: dict = {}
            for label, segment in self._segments.items():
                for position, edge in enumerate(segment.edge_ids):
                    keyed[edge] = rows[segment.start + position]
            self._edge_props = keyed
            self._props_decodes += 1
        return self._edge_props

    def node_properties(self, node) -> dict:
        self._require_node(node)
        return dict(self._ensure_node_props()[self._node_index[node]])

    def node_property(self, node, prop):
        return self.node_properties(node).get(prop)

    def edge_properties(self, edge) -> dict:
        self._require_edge(edge)
        return dict(self._ensure_edge_props()[edge])

    def edge_property(self, edge, prop):
        return self.edge_properties(edge).get(prop)

    def property_names(self) -> set:
        names: set = set()
        for props in self._ensure_node_props():
            names.update(props)
        for props in self._ensure_edge_props().values():
            names.update(props)
        return names


def _hashable_label(value, path: str):
    """Decoded JSON values used as dict keys must be hashable.

    A durable store can only ever have written hashable ids/labels (the
    in-memory model indexes them in dicts), so an unhashable value here is
    file corruption, not a supported input.
    """
    if isinstance(value, (dict, list)):
        raise SegmentError(f"{path}: unhashable id/label {value!r}")
    return value


def open_segments(path: str) -> MmapCsrBackend:
    """Open one segment file, picking the backend class by its model tag."""
    backend = MmapCsrBackend(path)
    if backend.model == "property":
        backend.close()
        return MmapCsrPropertyBackend(path)
    return backend


def open_latest_segments(directory: str) -> MmapCsrBackend:
    """The newest segment file in ``directory`` that opens cleanly.

    Mirrors snapshot recovery: a corrupt latest file is *skipped* (its
    reason recorded) in favor of the next-newest, and only when no file is
    usable does the open fail — with every per-file reason in the error.
    """
    try:
        candidates = list_segment_files(directory)
    except OSError as error:
        raise SegmentError(
            f"no CSR segment directory at {directory}: {error}") from error
    if not candidates:
        raise SegmentError(
            f"no CSR segment files in {directory} "
            f"(checkpoint the store first)")
    rejected = []
    for _, path in candidates:
        try:
            return open_segments(path)
        except SegmentError as error:
            rejected.append(f"{path}: {error}")
    raise SegmentError("every CSR segment file was rejected: "
                       + "; ".join(rejected))
