"""The ``GraphBackend`` protocol: what evaluation needs from a graph.

"Foundations of Modern Query Languages for Graph Databases" frames query
languages as compositions over a small algebra of graph accessors; this
module writes that read surface down as a structural
:class:`typing.Protocol` so the RPQ core and the three frontends bind to
an *interface* rather than to the in-memory model classes.  Everything
that evaluates queries — the scalar product construction, the vectorized
kernel's array builder, the SPARQL/Cypher store adapters, the query cache
— uses only these members (plus optional, ``hasattr``-gated fast paths
such as ``label_adjacency_index`` and ``csr_arrays``).

Three families satisfy it today:

* the in-memory models (:class:`~repro.models.LabeledGraph`,
  :class:`~repro.models.PropertyGraph`), which carry a genuine
  :class:`~repro.cache.versioning.MutationLog`;
* :class:`~repro.storage.DurableGraph`, by delegation to its in-memory
  graph;
* :class:`~repro.storage.diskread.MmapCsrBackend`, the disk-backed
  cold-start path, whose log is pinned at the checkpoint version.

This is deliberately the seam the ROADMAP's external-engine adapters
(AGE/PostgreSQL) will later implement: a new backend only has to provide
these members to light up every frontend.

The protocol is ``runtime_checkable`` **for isinstance only** — with
non-method members (``mutation_log``) an ``issubclass`` check raises by
design.  Prefer :func:`missing_backend_attrs` in tests and error paths:
it names what is absent instead of answering yes/no.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol, runtime_checkable


@runtime_checkable
class GraphBackend(Protocol):
    """The minimal read surface evaluation binds against.

    The directional fetches ``out_edges_with_label`` /
    ``in_edges_with_label`` are the per-transition *label-candidates*
    lookup the product construction performs (see
    :func:`label_candidates` for the direction-neutral spelling); the
    rest is iteration, endpoint/label resolution and the version stamp.
    """

    def nodes(self) -> Iterable: ...

    def edges(self) -> Iterable: ...

    def node_count(self) -> int: ...

    def endpoints(self, edge) -> tuple: ...

    def edge_label(self, edge): ...

    def nodes_with_label(self, label) -> Iterable: ...

    def edges_with_label(self, label) -> Iterable: ...

    def out_edges_with_label(self, node, label) -> Iterable: ...

    def in_edges_with_label(self, node, label) -> Iterable: ...

    @property
    def mutation_log(self):
        """Version stamp source for cache invalidation.

        Immutable backends return a log fast-forwarded to their
        checkpoint version; mutable ones return the live log.
        """
        ...


def label_candidates(backend: GraphBackend, node, label, *,
                     inverse: bool = False) -> Iterator:
    """Edges at ``node`` carrying ``label`` — the per-transition fetch.

    The direction-neutral spelling of the protocol's directional pair,
    matching how the product construction names the lookup.
    """
    if inverse:
        return iter(backend.in_edges_with_label(node, label))
    return iter(backend.out_edges_with_label(node, label))


#: Members a backend must provide (the Protocol's surface, by name —
#: what :func:`missing_backend_attrs` reports against).
REQUIRED_BACKEND_ATTRS = (
    "nodes",
    "edges",
    "node_count",
    "endpoints",
    "edge_label",
    "nodes_with_label",
    "edges_with_label",
    "out_edges_with_label",
    "in_edges_with_label",
    "mutation_log",
)


def missing_backend_attrs(target: object) -> list[str]:
    """The :data:`REQUIRED_BACKEND_ATTRS` that ``target`` lacks, in order."""
    return [name for name in REQUIRED_BACKEND_ATTRS
            if not hasattr(target, name)]


def is_graph_backend(target: object) -> bool:
    """Whether ``target`` provides the full backend read surface."""
    return not missing_backend_attrs(target)


def backend_note(target: object) -> dict:
    """The EXPLAIN ``backend`` detail: where this query's answers live.

    Asks the object itself first (:meth:`MmapCsrBackend.backend_info`),
    unwraps one level of delegation (``DurableGraph.graph``, the store
    adapters' ``.graph``), and otherwise reports an in-memory model.
    """
    info = getattr(target, "backend_info", None)
    if callable(info):
        return dict(info())
    inner = getattr(target, "graph", None)
    if inner is not None and inner is not target:
        info = getattr(inner, "backend_info", None)
        if callable(info):
            return dict(info())
        target = inner
    return {"kind": "memory", "model": type(target).__name__}
