"""The Figure 1 pipeline: keyword-in-title bibliometrics.

The paper's methodology (Section 1): take every publication indexed by
DBLP, scan titles for five keywords, plot counts per year 2010-2020.  This
package implements that scan over any corpus of
:class:`repro.datasets.dblp.Publication` records.
"""

from repro.bibliometrics.scan import (
    keyword_series,
    kg_overlap_ratio,
    publications_with_keyword,
    title_contains,
)

__all__ = [
    "title_contains",
    "publications_with_keyword",
    "keyword_series",
    "kg_overlap_ratio",
]
