"""Title scanning and per-year keyword series (the Figure 1 computation)."""

from __future__ import annotations

import re
from collections.abc import Iterable, Sequence

from repro.datasets.dblp import Publication


def title_contains(title: str, keyword: str) -> bool:
    """Case-insensitive whole-phrase containment, with word boundaries.

    "RDF" must not match "wordfreq"; "graph database" matches "Graph
    Databases" via a simple plural-tolerant boundary.
    """
    pattern = r"\b" + re.escape(keyword.lower()).replace(r"\ ", r"\s+") + r"s?\b"
    return re.search(pattern, title.lower()) is not None


def publications_with_keyword(corpus: Iterable[Publication],
                              keyword: str) -> list[Publication]:
    """All records whose title contains the keyword."""
    return [p for p in corpus if title_contains(p.title, keyword)]


def keyword_series(corpus: Iterable[Publication], keywords: Sequence[str],
                   years: Sequence[int]) -> dict[str, dict[int, int]]:
    """keyword -> year -> number of matching titles (the Figure 1 table)."""
    corpus = list(corpus)
    series: dict[str, dict[int, int]] = {}
    for keyword in keywords:
        matches = publications_with_keyword(corpus, keyword)
        per_year = {year: 0 for year in years}
        for publication in matches:
            if publication.year in per_year:
                per_year[publication.year] += 1
        series[keyword] = per_year
    return series


def kg_overlap_ratio(corpus: Iterable[Publication], year: int) -> float:
    """Fraction of 'knowledge graph' titles that also mention RDF or SPARQL.

    The statistic behind the paper's "70% in 2015, down to 14% in 2020"
    observation.  Returns 0.0 when the year has no knowledge-graph titles.
    """
    kg_titles = [p for p in corpus
                 if p.year == year and title_contains(p.title, "knowledge graph")]
    if not kg_titles:
        return 0.0
    overlapping = [p for p in kg_titles
                   if title_contains(p.title, "rdf") or title_contains(p.title, "sparql")]
    return len(overlapping) / len(kg_titles)
