"""Graphs as relations, and path queries by iterated joins (experiment D1).

The encoding is the one the paper sketches: the graph becomes

- ``edge(src, dst, label)`` — the "two attribute relation storing its
  edges" plus the label, and
- ``node(id, label)`` — node labels as a unary relation.

A k-hop path query then is a (k-1)-fold self-join of ``edge``; the
adjacency-store counterpart walks :class:`repro.storage.PropertyGraphStore`
index lists.  Both return the same distinct endpoint pairs, and the
benchmark compares their cost as k grows.
"""

from __future__ import annotations

from repro.relational.table import Table
from repro.storage.property_store import PropertyGraphStore


def graph_to_relations(graph) -> tuple[Table, Table]:
    """Encode a labeled graph as (node, edge) tables."""
    node_rows = [(node, graph.node_label(node)) for node in graph.nodes()]
    edge_rows = []
    for edge in graph.edges():
        source, target = graph.endpoints(edge)
        edge_rows.append((source, target, graph.edge_label(edge)))
    return (Table("node", ("id", "label"), node_rows),
            Table("edge", ("src", "dst", "label"), edge_rows))


def khop_pairs_by_joins(edge_table: Table, k: int,
                        edge_label: str | None = None) -> set[tuple]:
    """Distinct (start, end) pairs connected by a k-edge path, by joins.

    Builds the path relation hop by hop: path1 = edge; path_{i+1} =
    path_i join edge on the junction column.  Intermediate relations can
    be much larger than the answer — the cost the paper warns about.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    base = edge_table
    if edge_label is not None:
        base = base.select_eq("label", edge_label)
    base = base.project(("src", "dst")).distinct()
    current = base.rename({"src": "c0", "dst": "c1"})
    for i in range(1, k):
        step = base.rename({"src": f"c{i}", "dst": f"c{i + 1}"})
        current = current.join(step)
    result = current.project(("c0", f"c{k}")).distinct()
    return set(result.rows)


def khop_pairs_by_traversal(store: PropertyGraphStore, k: int,
                            edge_label: str | None = None) -> set[tuple]:
    """The same query by BFS-style frontier expansion over adjacency indexes."""
    if k < 1:
        raise ValueError("k must be at least 1")
    pairs: set[tuple] = set()
    for start in store.graph.nodes():
        frontier = {start}
        for _ in range(k):
            next_frontier: set = set()
            for node in frontier:
                for _edge, neighbor in store.expand(node, edge_label):
                    next_frontier.add(neighbor)
            frontier = next_frontier
            if not frontier:
                break
        pairs.update((start, end) for end in frontier)
    return pairs


def label_filtered_khop_by_joins(node_table: Table, edge_table: Table, k: int,
                                 start_label: str, end_label: str,
                                 edge_label: str | None = None) -> set[tuple]:
    """k-hop pairs with node-label endpoints, the full relational pipeline.

    Demonstrates the relational phrasing of a query like
    ``?person/contact^k/?infected``: two more joins against the node
    relation on top of the k-1 edge self-joins.
    """
    start_nodes = node_table.select_eq("label", start_label).project(("id",))
    end_nodes = node_table.select_eq("label", end_label).project(("id",))
    pairs = khop_pairs_by_joins(edge_table, k, edge_label)
    path = Table("path", ("c0", "ck"), sorted(pairs))
    filtered = (path.join(start_nodes.rename({"id": "c0"}))
                .join(end_nodes.rename({"id": "ck"})))
    return set(filtered.project(("c0", "ck")).distinct().rows)
