"""The relational baseline of Section 2.2.

"Classical relational databases are flexible enough to represent a graph,
e.g. by a two attribute relation storing its edges.  In this
representation, nodes are entries and paths are constructed by successive
joins.  Why then do we need graph databases?  ... joins are expensive and
thus, reasoning about paths becomes very costly."

This package makes that argument measurable: a miniature relational engine
(tables, selection/projection, hash joins) storing a graph as edge and
node-label relations, with path queries answered by iterated joins.
Experiment D1 benchmarks it against adjacency traversal over
:class:`repro.storage.PropertyGraphStore`.
"""

from repro.relational.table import Table
from repro.relational.engine import (
    graph_to_relations,
    khop_pairs_by_joins,
    khop_pairs_by_traversal,
    label_filtered_khop_by_joins,
)

__all__ = [
    "Table",
    "graph_to_relations",
    "khop_pairs_by_joins",
    "khop_pairs_by_traversal",
    "label_filtered_khop_by_joins",
]
