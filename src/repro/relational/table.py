"""A miniature relational table with hash-join, selection and projection."""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.errors import SchemaError


class Table:
    """A named relation: a tuple of column names and a list of row tuples.

    Rows are bags (duplicates kept) — :meth:`distinct` removes them —
    matching SQL semantics so the join-cost measurements are honest.
    """

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Iterable[tuple] = ()) -> None:
        self.name = name
        self.columns = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(f"duplicate column names in {name!r}")
        self.rows = [tuple(row) for row in rows]
        for row in self.rows:
            if len(row) != len(self.columns):
                raise SchemaError(
                    f"row of width {len(row)} in table {name!r} of width "
                    f"{len(self.columns)}")

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"<Table {self.name}({', '.join(self.columns)}) rows={len(self.rows)}>"

    def column_index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise SchemaError(f"table {self.name!r} has no column {column!r}") from None

    # -- operators -----------------------------------------------------------

    def select(self, predicate: Callable[[dict], bool], name: str | None = None) -> "Table":
        """Row filter; the predicate sees a column->value dict."""
        kept = [row for row in self.rows
                if predicate(dict(zip(self.columns, row)))]
        return Table(name or f"select({self.name})", self.columns, kept)

    def select_eq(self, column: str, value, name: str | None = None) -> "Table":
        """Equality selection (no dict construction; the common fast path)."""
        index = self.column_index(column)
        kept = [row for row in self.rows if row[index] == value]
        return Table(name or f"{self.name}[{column}={value!r}]", self.columns, kept)

    def project(self, columns: Sequence[str], name: str | None = None) -> "Table":
        indexes = [self.column_index(c) for c in columns]
        rows = [tuple(row[i] for i in indexes) for row in self.rows]
        return Table(name or f"project({self.name})", columns, rows)

    def rename(self, mapping: dict[str, str], name: str | None = None) -> "Table":
        columns = [mapping.get(c, c) for c in self.columns]
        return Table(name or self.name, columns, self.rows)

    def distinct(self, name: str | None = None) -> "Table":
        seen = set()
        rows = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return Table(name or f"distinct({self.name})", self.columns, rows)

    def join(self, other: "Table", name: str | None = None) -> "Table":
        """Natural hash join on all shared column names."""
        shared = [c for c in self.columns if c in other.columns]
        left_idx = [self.column_index(c) for c in shared]
        right_idx = [other.column_index(c) for c in shared]
        right_extra = [i for i, c in enumerate(other.columns) if c not in shared]
        columns = self.columns + tuple(other.columns[i] for i in right_extra)
        build: dict = {}
        for row in other.rows:
            key = tuple(row[i] for i in right_idx)
            build.setdefault(key, []).append(tuple(row[i] for i in right_extra))
        rows = []
        for row in self.rows:
            key = tuple(row[i] for i in left_idx)
            for extra in build.get(key, ()):
                rows.append(row + extra)
        return Table(name or f"join({self.name},{other.name})", columns, rows)

    def union(self, other: "Table", name: str | None = None) -> "Table":
        if self.columns != other.columns:
            raise SchemaError("union requires identical column lists")
        return Table(name or f"union({self.name},{other.name})",
                     self.columns, self.rows + other.rows)
