"""Aggregate-combine graph neural networks over graph models.

Following the paper (Section 4.3) and Barcelo et al. [16], an AC-GNN
receives a vector-labeled graph, computes new feature vectors by rounds of

    x_v'  =  sigma( x_v W_self  +  ( sum over neighbors u of x_u ) W_neigh  +  b )

and classifies each node from its final vector — making the network a
*unary query*.  The activation used throughout is the truncated ReLU
``clip01`` (the sigma of the logic/GNN correspondence proofs).

Input features are produced by pluggable "encoders": either the raw
numeric vectors of a :class:`~repro.models.vector.VectorGraph`, a one-hot
encoding of node labels, or — for compiled formulas — indicator features
of the formula's atoms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.core.logic.modal import neighbor_multiset
from repro.errors import SchemaError
from repro.util.rng import make_rng


def clip01(x: np.ndarray) -> np.ndarray:
    """The truncated ReLU sigma(x) = min(max(x, 0), 1)."""
    return np.clip(x, 0.0, 1.0)


@dataclass
class Layer:
    """One aggregate-combine round: weights for self, neighbors, and bias."""

    w_self: np.ndarray
    w_neigh: np.ndarray
    bias: np.ndarray

    def __post_init__(self) -> None:
        d_in_self, d_out = self.w_self.shape
        d_in_neigh, d_out_neigh = self.w_neigh.shape
        if (d_in_self, d_out) != (d_in_neigh, d_out_neigh) or self.bias.shape != (d_out,):
            raise SchemaError("layer weight shapes are inconsistent")


class ACGNN:
    """An aggregate-combine GNN with a Boolean readout on one coordinate.

    ``direction`` chooses which edges feed the aggregation ('out', 'in' or
    'both'), shared with the modal-logic semantics so the two frameworks
    answer identical queries.
    """

    def __init__(self, layers: list[Layer], *, direction: str = "out",
                 readout_coordinate: int = 0, threshold: float = 0.5) -> None:
        self.layers = layers
        self.direction = direction
        self.readout_coordinate = readout_coordinate
        self.threshold = threshold

    # -- forward pass ------------------------------------------------------

    def node_embeddings(self, graph, features: dict) -> dict:
        """Run all layers; ``features`` maps node -> initial numpy vector.

        Returns node -> final vector.  The graph only contributes its
        adjacency; feature encoding is the caller's concern.
        """
        nodes = sorted(graph.nodes(), key=str)
        index = {node: i for i, node in enumerate(nodes)}
        if not nodes:
            return {}
        matrix = np.stack([np.asarray(features[node], dtype=float) for node in nodes])
        # Aggregation matrix A with multiplicity (sum aggregation).
        adjacency = np.zeros((len(nodes), len(nodes)))
        for node in nodes:
            for neighbor in neighbor_multiset(graph, node, self.direction):
                adjacency[index[node], index[neighbor]] += 1.0
        for layer in self.layers:
            aggregated = adjacency @ matrix
            matrix = clip01(matrix @ layer.w_self + aggregated @ layer.w_neigh
                            + layer.bias)
        return {node: matrix[index[node]] for node in nodes}

    def classify(self, graph, features: dict) -> dict:
        """node -> bool via thresholding the readout coordinate."""
        embeddings = self.node_embeddings(graph, features)
        return {node: bool(vector[self.readout_coordinate] >= self.threshold)
                for node, vector in embeddings.items()}

    def satisfying_nodes(self, graph, features: dict) -> set:
        """The unary query defined by the network: nodes classified true."""
        return {node for node, flag in self.classify(graph, features).items() if flag}


# ---------------------------------------------------------------------------
# Feature encoders
# ---------------------------------------------------------------------------


def one_hot_label_features(graph, labels: list[str] | None = None,
                           ) -> tuple[dict, list[str]]:
    """Encode node labels one-hot; returns (features, label order)."""
    if labels is None:
        labels = sorted(graph.node_label_set(), key=str)
    position = {label: i for i, label in enumerate(labels)}
    features = {}
    for node in graph.nodes():
        vector = np.zeros(len(labels))
        spot = position.get(graph.node_label(node))
        if spot is not None:
            vector[spot] = 1.0
        features[node] = vector
    return features, labels


def numeric_vector_features(graph) -> dict:
    """Features straight from a numeric vector-labeled graph."""
    features = {}
    for node in graph.nodes():
        vector = graph.node_vector(node)
        try:
            features[node] = np.asarray([float(v) for v in vector])
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"node {node!r} has non-numeric features {vector!r}") from exc
    return features


def random_acgnn(dimensions: list[int], *, direction: str = "out",
                 rng: int | random.Random | None = None,
                 scale: float = 1.0) -> ACGNN:
    """A random AC-GNN (for WL-invariance experiments, not for accuracy)."""
    if len(dimensions) < 2:
        raise SchemaError("need at least input and output dimensions")
    rng = make_rng(rng)
    layers = []
    for d_in, d_out in zip(dimensions, dimensions[1:]):
        w_self = np.array([[rng.gauss(0, scale) for _ in range(d_out)]
                           for _ in range(d_in)])
        w_neigh = np.array([[rng.gauss(0, scale) for _ in range(d_out)]
                            for _ in range(d_in)])
        bias = np.array([rng.gauss(0, scale) for _ in range(d_out)])
        layers.append(Layer(w_self, w_neigh, bias))
    return ACGNN(layers, direction=direction)
