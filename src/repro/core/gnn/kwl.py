"""Higher-order Weisfeiler-Lehman: the 2-dimensional test.

The paper's Section 4.3 routes GNN expressiveness through the WL
hierarchy: 1-WL bounds message-passing GNNs [50, 71], and Cai-Furer-
Immerman [22] tie k-WL to counting logics with k+1 variables.  The
2-dimensional (folklore) test implemented here colors *pairs* of nodes and
refines with the multiset of (color(v, w), color(w, u)) over all middle
nodes w — strictly more powerful than 1-WL: it separates, for example, two
triangles from a hexagon, the classic 1-WL blind spot the test suite pins.
"""

from __future__ import annotations

from collections import Counter


def _pair_signature(graph, u, v, use_labels: bool) -> tuple:
    """The atomic type of an ordered pair: labels plus edge multiplicities."""
    label_of = getattr(graph, "node_label", lambda _n: "") if use_labels else (lambda _n: "")
    edge_label_of = getattr(graph, "edge_label", lambda _e: "") if use_labels else (lambda _e: "")
    forward = sorted(str(edge_label_of(e)) for e in graph.edges_between(u, v))
    backward = sorted(str(edge_label_of(e)) for e in graph.edges_between(v, u))
    return (u == v, str(label_of(u)), str(label_of(v)),
            tuple(forward), tuple(backward))


def wl2_pair_colors(graph, rounds: int | None = None, *,
                    use_labels: bool = True) -> dict[tuple, int]:
    """Stable 2-WL coloring of all ordered node pairs (folklore variant).

    Returns {(u, v): color}.  Quadratic in nodes per pair and cubic per
    round — the price of the stronger test, as the paper's discussion of
    higher-order methods implies; use on small graphs.
    """
    nodes = sorted(graph.nodes(), key=str)
    signatures = {(u, v): _pair_signature(graph, u, v, use_labels)
                  for u in nodes for v in nodes}
    palette = {s: i for i, s in enumerate(sorted(set(signatures.values()), key=str))}
    colors = {pair: palette[s] for pair, s in signatures.items()}
    max_rounds = len(nodes) * len(nodes) if rounds is None else rounds
    for _ in range(max_rounds):
        refined_signatures = {}
        for (u, v), color in colors.items():
            middle = sorted(Counter(
                (colors[(u, w)], colors[(w, v)]) for w in nodes).items())
            refined_signatures[(u, v)] = (color, tuple(middle))
        palette = {s: i for i, s in
                   enumerate(sorted(set(refined_signatures.values()), key=str))}
        refined = {pair: palette[s] for pair, s in refined_signatures.items()}
        if _partition(refined) == _partition(colors):
            break
        colors = refined
    return colors


def wl2_node_colors(graph, rounds: int | None = None, *,
                    use_labels: bool = True) -> dict:
    """Node colors induced by 2-WL: the color of the diagonal pair (v, v)."""
    pair_colors = wl2_pair_colors(graph, rounds, use_labels=use_labels)
    return {node: pair_colors[(node, node)] for node in graph.nodes()}


def wl2_test(left, right, rounds: int | None = None, *,
             use_labels: bool = True) -> bool:
    """2-WL isomorphism test: True = possibly isomorphic, False = refuted.

    Runs the refinement jointly on the disjoint union (same scheme as the
    1-WL test) and compares pair-color histograms per side.
    """
    from repro.core.gnn.wl import _disjoint_union

    union, tag = _disjoint_union(left, right)
    colors = wl2_pair_colors(union, rounds, use_labels=use_labels)
    left_histogram = Counter(color for (u, v), color in colors.items()
                             if tag[u] == 0 and tag[v] == 0)
    right_histogram = Counter(color for (u, v), color in colors.items()
                              if tag[u] == 1 and tag[v] == 1)
    return left_histogram == right_histogram


def _partition(colors: dict) -> set[frozenset]:
    classes: dict = {}
    for pair, color in colors.items():
        classes.setdefault(color, set()).add(pair)
    return {frozenset(members) for members in classes.values()}
