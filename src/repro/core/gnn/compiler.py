"""Compiling graded modal formulas into AC-GNNs (Barcelo et al., [16]).

The constructive half of the logic/GNN correspondence: every graded modal
formula has an AC-GNN computing exactly its semantics.  The construction
assigns one feature coordinate per subformula and implements each connective
with the truncated ReLU sigma(x) = min(max(x, 0), 1) over 0/1 coordinates:

    not  phi        ->  sigma(1 - x_phi)
    phi and psi     ->  sigma(x_phi + x_psi - 1)
    phi or  psi     ->  sigma(x_phi + x_psi)
    >=k  phi        ->  sigma(sum over neighbors of x_phi - (k - 1))

A subformula of height h (diamonds *and* Boolean connectives each add one)
is correct after layer h, and already-computed coordinates are carried by
identity rows, so `modal height` layers suffice.  The returned network plus
its atom-indicator feature encoder is the procedural evaluator the paper
contrasts with the declarative semantics of
:func:`repro.core.logic.modal.evaluate_modal` — experiment L2 checks they
agree on every node of every tested graph.
"""

from __future__ import annotations

import numpy as np

from repro.core.gnn.acgnn import ACGNN, Layer
from repro.core.logic.modal import (
    DiamondAtLeast,
    FeatureProp,
    LabelProp,
    ModalAnd,
    ModalFormula,
    ModalNot,
    ModalOr,
    ModalTrue,
    modal_subformulas,
)
from repro.errors import LogicError


class CompiledModalGNN:
    """An AC-GNN together with the feature encoder for its atoms."""

    def __init__(self, network: ACGNN, subformulas: list[ModalFormula],
                 coordinate: dict[ModalFormula, int]) -> None:
        self.network = network
        self.subformulas = subformulas
        self.coordinate = coordinate

    @property
    def dimension(self) -> int:
        return len(self.subformulas)

    def initial_features(self, graph) -> dict:
        """Indicator features: atom coordinates set from the graph, rest 0."""
        features = {node: np.zeros(self.dimension) for node in graph.nodes()}
        for sub in self.subformulas:
            i = self.coordinate[sub]
            if isinstance(sub, LabelProp):
                for node in features:
                    if graph.node_label(node) == sub.label:
                        features[node][i] = 1.0
            elif isinstance(sub, FeatureProp):
                for node in features:
                    if graph.node_feature(node, sub.index) == sub.value:
                        features[node][i] = 1.0
            elif isinstance(sub, ModalTrue):
                for node in features:
                    features[node][i] = 1.0
        return features

    def satisfying_nodes(self, graph) -> set:
        """Evaluate the compiled formula procedurally: one GNN forward pass."""
        return self.network.satisfying_nodes(graph, self.initial_features(graph))

    def classify(self, graph) -> dict:
        return self.network.classify(graph, self.initial_features(graph))


def compile_modal_formula(formula: ModalFormula, *,
                          direction: str = "out") -> CompiledModalGNN:
    """Build the AC-GNN equivalent to ``formula``.

    ``direction`` must match the one used in the declarative semantics.
    """
    subformulas = modal_subformulas(formula)
    coordinate = {sub: i for i, sub in enumerate(subformulas)}
    height: dict[ModalFormula, int] = {}
    for sub in subformulas:
        if isinstance(sub, (LabelProp, FeatureProp, ModalTrue)):
            height[sub] = 0
        elif isinstance(sub, ModalNot):
            height[sub] = height[sub.inner] + 1
        elif isinstance(sub, (ModalAnd, ModalOr)):
            height[sub] = max(height[sub.left], height[sub.right]) + 1
        elif isinstance(sub, DiamondAtLeast):
            height[sub] = height[sub.inner] + 1
        else:
            raise LogicError(f"unknown modal node: {type(sub).__name__}")
    depth = max(height.values(), default=0)
    dimension = len(subformulas)

    layers = []
    for level in range(1, depth + 1):
        w_self = np.zeros((dimension, dimension))
        w_neigh = np.zeros((dimension, dimension))
        bias = np.zeros(dimension)
        for sub in subformulas:
            i = coordinate[sub]
            if height[sub] < level:
                # Already correct: carry through the identity (0/1 values are
                # fixed points of clip01).
                w_self[i, i] = 1.0
            elif height[sub] == level:
                if isinstance(sub, ModalNot):
                    bias[i] = 1.0
                    w_self[coordinate[sub.inner], i] += -1.0
                elif isinstance(sub, ModalAnd):
                    bias[i] = -1.0
                    w_self[coordinate[sub.left], i] += 1.0
                    w_self[coordinate[sub.right], i] += 1.0
                elif isinstance(sub, ModalOr):
                    w_self[coordinate[sub.left], i] += 1.0
                    w_self[coordinate[sub.right], i] += 1.0
                elif isinstance(sub, DiamondAtLeast):
                    w_neigh[coordinate[sub.inner], i] = 1.0
                    bias[i] = float(1 - sub.count)
                else:  # pragma: no cover - atoms have height 0
                    raise LogicError(f"atom {sub!r} cannot have positive height")
            # Coordinates with height > level stay zero until their turn.
        layers.append(Layer(w_self, w_neigh, bias))
    if not layers:
        # A purely atomic formula: the identity network (zero rounds needed,
        # but ACGNN wants at least the readout, so use one identity layer).
        identity = np.eye(dimension)
        layers = [Layer(identity, np.zeros((dimension, dimension)),
                        np.zeros(dimension))]
    network = ACGNN(layers, direction=direction,
                    readout_coordinate=coordinate[formula])
    return CompiledModalGNN(network, subformulas, coordinate)
