"""Procedural node extraction: GNNs and the Weisfeiler-Lehman test (§4.3).

- :mod:`repro.core.gnn.acgnn` — aggregate-combine graph neural networks
  (numpy forward pass) viewed as unary queries/classifiers over
  vector-labeled graphs, as in Barcelo et al. [16].
- :mod:`repro.core.gnn.compiler` — the constructive direction of the
  logic/GNN correspondence: compile any graded modal formula into an
  AC-GNN computing exactly its semantics.
- :mod:`repro.core.gnn.wl` — the Weisfeiler-Lehman color refinement /
  isomorphism test, the yardstick of GNN expressiveness [50, 71].
"""

from repro.core.gnn.acgnn import ACGNN, Layer, clip01, random_acgnn
from repro.core.gnn.compiler import compile_modal_formula
from repro.core.gnn.wl import (
    wl_distinguishes,
    wl_node_colors,
    wl_partition,
    wl_test,
)
from repro.core.gnn.kwl import wl2_node_colors, wl2_pair_colors, wl2_test

__all__ = [
    "ACGNN", "Layer", "clip01", "random_acgnn",
    "compile_modal_formula",
    "wl_node_colors", "wl_partition", "wl_test", "wl_distinguishes",
    "wl2_pair_colors", "wl2_node_colors", "wl2_test",
]
