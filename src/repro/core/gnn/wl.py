"""The Weisfeiler-Lehman test (1-WL color refinement).

The classical algorithm of Weisfeiler & Leman [70], which the paper places
at the center of the declarative/procedural story: 1-WL has the same
distinguishing power as the counting logic C2 (Cai-Furer-Immerman) and
bounds the expressiveness of message-passing GNNs [50, 71].  Consequences
made testable here:

- two nodes with equal stable WL colors receive identical outputs from
  *every* AC-GNN (checked in the test suite with random and compiled GNNs);
- :func:`wl_test` refutes isomorphism whenever color histograms diverge.

Refinement hashes the multiset of (edge label, neighbor color) pairs per
direction, so parallel edges and labels all participate; for unlabeled use
set ``use_edge_labels=False``.
"""

from __future__ import annotations

from collections import Counter


def _initial_colors(graph, use_node_labels: bool) -> dict:
    if not use_node_labels:
        return {node: 0 for node in graph.nodes()}
    label_of = getattr(graph, "node_label", None)
    if label_of is not None:
        values = {node: label_of(node) for node in graph.nodes()}
    else:
        vector_of = getattr(graph, "node_vector", None)
        if vector_of is not None:
            values = {node: vector_of(node) for node in graph.nodes()}
        else:
            values = {node: "" for node in graph.nodes()}
    palette = {value: i for i, value in enumerate(sorted(set(values.values()), key=str))}
    return {node: palette[value] for node, value in values.items()}


def _edge_label(graph, edge, use_edge_labels: bool):
    if not use_edge_labels:
        return ""
    label_of = getattr(graph, "edge_label", None)
    if label_of is not None:
        return label_of(edge)
    vector_of = getattr(graph, "edge_vector", None)
    if vector_of is not None:
        return vector_of(edge)
    return ""


def wl_node_colors(graph, rounds: int | None = None, *,
                   use_node_labels: bool = True,
                   use_edge_labels: bool = True,
                   directed: bool = True) -> dict:
    """Stable (or ``rounds``-step) WL coloring; colors are canonical ints.

    Canonicalization sorts signatures, so colors are comparable across two
    graphs *only* via :func:`wl_test`, which refines them jointly.
    """
    colors = _initial_colors(graph, use_node_labels)
    max_rounds = graph.node_count() if rounds is None else rounds
    for _ in range(max_rounds):
        colors, changed = _refine_once(graph, colors, use_edge_labels, directed)
        if not changed:
            break
    return colors


def _refine_once(graph, colors: dict, use_edge_labels: bool, directed: bool,
                 ) -> tuple[dict, bool]:
    signatures = {}
    for node in graph.nodes():
        outgoing = sorted(
            (str(_edge_label(graph, e, use_edge_labels)), colors[graph.target(e)])
            for e in graph.iter_out_edges(node))
        if directed:
            incoming = sorted(
                (str(_edge_label(graph, e, use_edge_labels)), colors[graph.source(e)])
                for e in graph.iter_in_edges(node))
            signatures[node] = (colors[node], tuple(outgoing), tuple(incoming))
        else:
            undirected = sorted(outgoing + [
                (str(_edge_label(graph, e, use_edge_labels)), colors[graph.source(e)])
                for e in graph.iter_in_edges(node)])
            signatures[node] = (colors[node], tuple(undirected))
    palette = {signature: i for i, signature in
               enumerate(sorted(set(signatures.values()), key=str))}
    refined = {node: palette[signature] for node, signature in signatures.items()}
    changed = _partition(refined) != _partition(colors)
    return refined, changed


def _partition(colors: dict) -> set[frozenset]:
    classes: dict = {}
    for node, color in colors.items():
        classes.setdefault(color, set()).add(node)
    return {frozenset(members) for members in classes.values()}


def wl_partition(graph, **options) -> list[set]:
    """The stable WL partition into color classes, largest first."""
    colors = wl_node_colors(graph, **options)
    classes: dict = {}
    for node, color in colors.items():
        classes.setdefault(color, set()).add(node)
    return sorted(classes.values(), key=len, reverse=True)


def wl_test(left, right, rounds: int | None = None, **options) -> bool:
    """1-WL isomorphism test: True = possibly isomorphic, False = refuted.

    The two graphs are refined *jointly* (on their disjoint union) so color
    names are comparable; histograms are then compared per round.
    """
    union, tag = _disjoint_union(left, right)
    max_rounds = union.node_count() if rounds is None else rounds
    colors = _initial_colors(union, options.get("use_node_labels", True))
    use_edge_labels = options.get("use_edge_labels", True)
    directed = options.get("directed", True)
    for _ in range(max_rounds + 1):
        if _histogram(colors, tag, 0) != _histogram(colors, tag, 1):
            return False
        colors, changed = _refine_once(union, colors, use_edge_labels, directed)
        if not changed:
            break
    return _histogram(colors, tag, 0) == _histogram(colors, tag, 1)


def wl_distinguishes(graph, node_a, node_b, **options) -> bool:
    """Do stable WL colors separate the two nodes of one graph?"""
    colors = wl_node_colors(graph, **options)
    return colors[node_a] != colors[node_b]


def _histogram(colors: dict, tag: dict, side: int) -> Counter:
    return Counter(color for node, color in colors.items() if tag[node] == side)


def _disjoint_union(left, right):
    """Tagged disjoint union preserving labels where both graphs have them."""
    from repro.models.labeled import LabeledGraph

    union = LabeledGraph()
    tag: dict = {}
    for side, graph in enumerate((left, right)):
        label_of = getattr(graph, "node_label", lambda _n: "")
        edge_label_of = getattr(graph, "edge_label", lambda _e: "")
        for node in graph.nodes():
            new_node = (side, node)
            union.add_node(new_node, label_of(node))
            tag[new_node] = side
        for edge in graph.edges():
            source, target = graph.endpoints(edge)
            union.add_edge((side, edge), (side, source), (side, target),
                           edge_label_of(edge))
    return union, tag
