"""All-subgraphs centrality — the framework of Riveros & Salas (ICDT 2020).

The paper's closing remark in Section 4.2 points to [58]: "a natural and
general framework to specify centrality measures ... but still without
taking labels into consideration".  The flagship instance of that framework
is *all-subgraphs centrality*:

    C(v) = log2 |{ connected subgraphs of G that contain v }|

Counting connected subgraphs is #P-hard, so this implementation enumerates
edge subsets and is only meant for the small graphs of experiment B1 —
enough to compare the framework's label-blind ranking against bc_r.
"""

from __future__ import annotations

import math
from itertools import combinations


def all_subgraphs_centrality(graph, *, max_edges: int | None = None) -> dict:
    """C(v) = log2 of the number of connected edge-subgraphs containing v.

    A subgraph here is a non-empty set of edges (direction ignored) whose
    induced graph is connected; a single node with no edges also counts as
    the trivial subgraph containing v, so every node has C(v) >= 0.
    ``max_edges`` caps the subset size for tractability; ``None`` means all
    |E| edges (use only on small graphs: the loop is 2^|E|).
    """
    edges = sorted(graph.edges(), key=str)
    limit = len(edges) if max_edges is None else min(max_edges, len(edges))
    counts = {node: 1 for node in graph.nodes()}  # the trivial subgraph {v}
    for size in range(1, limit + 1):
        for subset in combinations(edges, size):
            nodes = _connected_node_set(graph, subset)
            if nodes is None:
                continue
            for node in nodes:
                counts[node] += 1
    return {node: math.log2(count) for node, count in counts.items()}


def _connected_node_set(graph, edge_subset) -> set | None:
    """Node set of the edge-induced subgraph if connected, else None."""
    adjacency: dict = {}
    for edge in edge_subset:
        u, v = graph.endpoints(edge)
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set()).add(u)
    nodes = set(adjacency)
    start = next(iter(nodes))
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for neighbor in adjacency[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return nodes if seen == nodes else None
