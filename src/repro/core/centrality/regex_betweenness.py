"""Regex-constrained betweenness centrality bc_r — exact algorithm.

The paper's definition (Section 4.2): with S_abr the set of *shortest*
paths from a to b conforming to regex r, and S_abr(x) those including node
x,

    bc_r(x) = sum over a, b != x of |S_abr(x)| / |S_abr|

(pairs with S_abr empty contribute 0).  Conforming shortest paths are walks
and may revisit nodes, so Brandes-style predecessor accumulation does not
apply; instead this module counts exactly:

- |S_abr| by a determinized dynamic program over the product automaton
  restricted to the conforming-shortest length (every distinct path counted
  once, however many accepting runs it has);
- |S_abr(x)| by the subtraction  |S_abr| - |avoiding x|, where the
  avoiding-count is the same DP run on the graph with x removed, at the
  *original* shortest length.

This is exponential in the worst case — as expected, since even Count alone
is SpanL-complete — and is the ground truth experiment B2 compares the
randomized approximation against.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.rpq.ast import Regex
from repro.core.rpq.nfa import NFA, compile_regex
from repro.core.rpq.product import INITIAL, build_product


def conforming_shortest_profile(graph, regex: Regex, source,
                                nfa: NFA | None = None,
                                ) -> dict[object, tuple[int, int]]:
    """For one source a: {b: (shortest conforming length, |S_abr|)}.

    Only targets with at least one conforming path appear.  The length-0
    self pair (a, a) is included when the regex admits it.
    """
    if nfa is None:
        nfa = compile_regex(regex)
    product = build_product(graph, nfa, start_nodes=[source])
    init_states = product.transitions[INITIAL].get(("init", source), frozenset())
    if not init_states:
        return {}

    # Pass 1 -- existence distances per target node, by BFS on product states.
    distances: dict[object, int] = {}
    frontier = set(init_states)
    seen = set(frontier)
    level = 0
    while frontier:
        for state in frontier:
            if state in product.accepts:
                node = product.state_node[state]
                distances.setdefault(node, level)
        next_frontier: set[int] = set()
        for state in frontier:
            for targets in product.transitions[state].values():
                next_frontier.update(targets)
        frontier = next_frontier - seen
        seen |= frontier
        level += 1
    if not distances:
        return {}

    # Pass 2 -- determinized counting up to the largest shortest distance.
    counts = _count_at_lengths(product, init_states, distances)
    return {node: (distances[node], counts.get(node, 0))
            for node in distances if counts.get(node, 0) > 0}


def _count_at_lengths(product, init_states: frozenset,
                      target_lengths: dict[object, int]) -> dict[object, int]:
    """Count conforming paths of exactly target_lengths[b] edges ending at b.

    One determinized forward DP serves every target: all product states in a
    subset share their graph node, so an accepting subset at layer L whose
    node b has target length L contributes its word count to b.
    """
    max_level = max(target_lengths.values())
    counts: dict[object, int] = {}
    current: dict[frozenset, int] = {frozenset(init_states): 1}
    for level in range(max_level + 1):
        for subset, count in current.items():
            accepting = subset & product.accepts
            if accepting:
                node = product.state_node[next(iter(accepting))]
                if target_lengths.get(node) == level:
                    counts[node] = counts.get(node, 0) + count
        if level == max_level:
            break
        following: dict[frozenset, int] = {}
        for subset, count in current.items():
            for symbol in product.symbols_from(subset):
                reached = product.delta(subset, symbol)
                if reached:
                    following[reached] = following.get(reached, 0) + count
        current = following
        if not current:
            break
    return counts


def _avoiding_counts(graph_without_x, nfa: NFA, source,
                     target_lengths: dict[object, int]) -> dict[object, int]:
    """|S_abr restricted to paths avoiding x| at the original shortest lengths."""
    if not graph_without_x.has_node(source):
        return {}
    product = build_product(graph_without_x, nfa, start_nodes=[source])
    init_states = product.transitions[INITIAL].get(("init", source), frozenset())
    if not init_states:
        return {}
    relevant = {node: length for node, length in target_lengths.items()
                if graph_without_x.has_node(node)}
    if not relevant:
        return {}
    return _count_at_lengths(product, init_states, relevant)


def regex_betweenness(graph, regex: Regex, *,
                      candidates: Iterable | None = None) -> dict:
    """Exact bc_r for every node (or only the ``candidates``).

    Returns {x: bc_r(x)}.  The sum ranges over ordered pairs (a, b) with
    a != x and b != x, following the paper's formula; the trivial pair
    a = b contributes 0 (its only shortest conforming path, when one
    exists, is the length-0 path at a, which cannot include x != a).
    """
    nfa = compile_regex(regex)
    nodes = sorted(graph.nodes(), key=str)
    candidate_list = nodes if candidates is None else sorted(candidates, key=str)

    # sigma[a][b] = (shortest length, count) for every source a.
    sigma: dict = {}
    for a in nodes:
        sigma[a] = conforming_shortest_profile(graph, regex, a, nfa)

    centrality = {x: 0.0 for x in candidate_list}
    for x in candidate_list:
        graph_without_x = graph.subgraph_without_node(x)
        for a in nodes:
            if a == x:
                continue
            profile = sigma[a]
            # b = a is allowed (conforming cycles through x count); pairs whose
            # shortest conforming path has length 0 cannot include x != a.
            relevant = {b: length for b, (length, _) in profile.items()
                        if b != x and length > 0}
            if not relevant:
                continue
            avoiding = _avoiding_counts(graph_without_x, nfa, a, relevant)
            for b, length in relevant.items():
                total = profile[b][1]
                through = total - avoiding.get(b, 0)
                if through:
                    centrality[x] += through / total
    return centrality
