"""Classical betweenness centrality (Freeman 1977) via Brandes' algorithm.

bc(x) = sum over pairs a, b distinct from x of |S_ab(x)| / |S_ab|, where
S_ab is the set of shortest paths from a to b and S_ab(x) those through x.
Pairs with no path contribute 0.  This is the label-blind baseline the
paper's bc_r refines.
"""

from __future__ import annotations

from collections import deque


def betweenness_centrality(graph, *, directed: bool = True,
                           normalized: bool = False, ctx=None) -> dict:
    """Brandes' accumulation algorithm; O(|N| * |E|) for unweighted graphs.

    With ``normalized=True`` scores are divided by the number of ordered
    node pairs excluding the node itself, (n-1)(n-2).  Under an execution
    context the outer loop checkpoints once per source node (site
    ``betweenness.source``).
    """
    nodes = sorted(graph.nodes(), key=str)
    centrality = {node: 0.0 for node in nodes}
    for source in nodes:
        if ctx is not None:
            ctx.checkpoint("betweenness.source")
        # Single-source shortest paths with counts (BFS).
        order: list = []
        predecessors: dict = {node: [] for node in nodes}
        sigma = {node: 0 for node in nodes}
        distance = {node: -1 for node in nodes}
        sigma[source] = 1
        distance[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            order.append(node)
            next_nodes = list(graph.successors(node))
            if not directed:
                next_nodes.extend(graph.predecessors(node))
            for neighbor in next_nodes:
                if distance[neighbor] < 0:
                    distance[neighbor] = distance[node] + 1
                    queue.append(neighbor)
                if distance[neighbor] == distance[node] + 1:
                    sigma[neighbor] += sigma[node]
                    predecessors[neighbor].append(node)
        # Dependency accumulation, farthest first.
        delta = {node: 0.0 for node in nodes}
        while order:
            node = order.pop()
            for predecessor in predecessors[node]:
                delta[predecessor] += (sigma[predecessor] / sigma[node]) * (1.0 + delta[node])
            if node != source:
                centrality[node] += delta[node]
        # (Parallel edges add multiplicity to sigma through repeated
        # predecessor entries, matching the multigraph path count.)
    n = len(nodes)
    if normalized and n > 2:
        scale = 1.0 / ((n - 1) * (n - 2))
        centrality = {node: value * scale for node, value in centrality.items()}
    return centrality
