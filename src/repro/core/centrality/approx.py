"""Randomized approximation of bc_r using the Section 4.1 tools.

The paper: "we show how the tools presented in Section 4.1 can be used to
provide an efficient randomized approximation algorithm for bc_r".  The
estimator implemented here does exactly that:

1. For each ordered pair (a, b), find the shortest conforming length (BFS
   on the product — polynomial).
2. Sample M paths uniformly from S_abr with the Gen machinery — either the
   exact uniform sampler or the FPRAS-based near-uniform sampler.
3. The fraction of sampled paths through x estimates |S_abr(x)| / |S_abr|
   unbiasedly; summing over pairs estimates bc_r(x), with additive error
   O(#pairs / sqrt(M)) by Hoeffding.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.core.centrality.regex_betweenness import conforming_shortest_profile
from repro.core.rpq.ast import Regex
from repro.core.rpq.fpras import ApproxPathCounter
from repro.core.rpq.generate import UniformPathSampler
from repro.core.rpq.nfa import compile_regex
from repro.errors import EstimationError
from repro.util.rng import make_rng


def approximate_regex_betweenness(graph, regex: Regex, *,
                                  samples_per_pair: int = 30,
                                  method: str = "exact",
                                  candidates: Iterable | None = None,
                                  rng: int | random.Random | None = None,
                                  ctx=None) -> dict:
    """Estimate bc_r(x) for every node (or the ``candidates``).

    ``method`` selects the Gen backend: ``"exact"`` uses the uniform sampler
    (exact preprocessing per pair), ``"fpras"`` the approximate-counting
    sketches (never determinizes, matching the paper's polynomial-time
    story).  Under an execution context the pair loop checkpoints once per
    sampled (a, b) pair (site ``approx_bc.pair``) and the per-pair Gen
    preprocessing inherits the same context.
    """
    if samples_per_pair <= 0:
        raise ValueError("samples_per_pair must be positive")
    if method not in ("exact", "fpras"):
        raise EstimationError(f"unknown sampling method {method!r}")
    rng = make_rng(rng)
    nfa = compile_regex(regex)
    nodes = sorted(graph.nodes(), key=str)
    candidate_set = set(nodes) if candidates is None else set(candidates)
    estimates = {x: 0.0 for x in candidate_set}

    for a in nodes:
        profile = conforming_shortest_profile(graph, regex, a, nfa)
        for b, (length, _count) in profile.items():
            if length == 0:
                continue  # a length-0 path contains only a itself, never an x != a
            if ctx is not None:
                ctx.checkpoint("approx_bc.pair")
            sampler = _make_sampler(graph, regex, length, a, b, method, rng,
                                    ctx)
            if sampler is None:
                continue
            hits = {x: 0 for x in candidate_set}
            for _ in range(samples_per_pair):
                path = sampler.sample(rng)
                for x in set(path.nodes) & candidate_set:
                    hits[x] += 1
            for x, hit_count in hits.items():
                if hit_count and x != a and x != b:
                    estimates[x] += hit_count / samples_per_pair
    return estimates


def _make_sampler(graph, regex, length, a, b, method, rng, ctx=None):
    if method == "exact":
        sampler = UniformPathSampler(graph, regex, length,
                                     start_nodes=[a], end_nodes=[b], ctx=ctx)
        return sampler if sampler.count else None
    counter = ApproxPathCounter(graph, regex, length, epsilon=0.3,
                                rng=rng, start_nodes=[a], end_nodes=[b],
                                ctx=ctx)
    try:
        counter.sample(rng)
    except EstimationError:
        return None
    return counter
