"""Centrality with knowledge: Section 4.2 of the paper.

- :func:`betweenness_centrality` — classical Freeman/Brandes betweenness,
  label-blind.
- :func:`regex_betweenness` — the paper's bc_r: only shortest paths
  *conforming to a regular expression* count, so domain knowledge (e.g.
  "buses matter as transport for people, not as property of companies")
  enters the measure.  Exact, via the product automaton.
- :func:`approximate_regex_betweenness` — the paper's proposal: a
  randomized approximation of bc_r built from the Section 4.1 tools
  (uniform generation of shortest conforming paths).
- :func:`all_subgraphs_centrality` — the subgraph-family framework of
  Riveros & Salas [58], which the paper cites as a general centrality
  recipe that does not yet use labels.
"""

from repro.core.centrality.betweenness import betweenness_centrality
from repro.core.centrality.regex_betweenness import (
    conforming_shortest_profile,
    regex_betweenness,
)
from repro.core.centrality.approx import approximate_regex_betweenness
from repro.core.centrality.family import all_subgraphs_centrality

__all__ = [
    "betweenness_centrality",
    "regex_betweenness",
    "conforming_shortest_profile",
    "approximate_regex_betweenness",
    "all_subgraphs_centrality",
]
