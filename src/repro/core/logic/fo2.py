"""The bounded-variable fragment FO^k, and the paper's phi/psi example.

Section 4.3: a first-order formula "can be evaluated efficiently if the
number of variables in it is bounded by a fixed constant" (Vardi), because
every intermediate relation then has bounded arity.  The paper illustrates
with two equivalent formulas for "persons who shared a bus with an infected
person":

    phi(x) = person(x) and exists y exists z (rides(x,y) and bus(y) and
             rides(z,y) and infected(z))                       -- 3 variables

    psi(x) = person(x) and exists y (rides(x,y) and bus(y) and
             exists x (rides(x,y) and infected(x)))            -- 2 variables, x reused

:func:`evaluate_bounded` checks the variable bound and then evaluates with
the materializing evaluator of :mod:`repro.core.logic.fo`; the returned
stats prove the claimed width bound (experiment L1 measures the difference).
"""

from __future__ import annotations

from repro.core.logic.fo import (
    And,
    EdgeRel,
    Exists,
    Formula,
    Label,
    MaterializationStats,
    all_variables,
    evaluate_materialized,
)
from repro.errors import BoundedVariableError


def count_distinct_variables(formula: Formula) -> int:
    """Number of distinct variable *names* (reused names count once)."""
    return len(all_variables(formula))


def is_bounded_variable(formula: Formula, bound: int) -> bool:
    """Does the formula use at most ``bound`` distinct variable names?"""
    return count_distinct_variables(formula) <= bound


def evaluate_bounded(graph, formula: Formula, bound: int = 2,
                     ) -> tuple[set, tuple[str, ...], MaterializationStats]:
    """Evaluate an FO^bound formula; intermediates provably have width <= bound.

    Raises :class:`BoundedVariableError` when the formula uses more names
    than the bound — rewrite it first (the whole point of the paper's
    psi(x)).
    """
    used = count_distinct_variables(formula)
    if used > bound:
        raise BoundedVariableError(
            f"formula uses {used} distinct variables, bound is {bound}; "
            "rewrite with variable reuse (cf. the paper's psi)")
    return evaluate_materialized(graph, formula)


def paper_phi() -> Formula:
    """The paper's phi(x), with three distinct variables."""
    return And(
        Label("person", "x"),
        Exists("y", Exists("z", And(
            And(EdgeRel("rides", "x", "y"), Label("bus", "y")),
            And(EdgeRel("rides", "z", "y"), Label("infected", "z"))))))


def paper_psi() -> Formula:
    """The paper's psi(x), equivalent to phi(x) but reusing x — two variables."""
    return And(
        Label("person", "x"),
        Exists("y", And(
            And(EdgeRel("rides", "x", "y"), Label("bus", "y")),
            Exists("x", And(EdgeRel("rides", "x", "y"), Label("infected", "x"))))))
