"""Translating regexes into first-order logic (star-free fragment).

Section 4.3 evaluates the regex ``?person/rides/?bus/rides^-/?infected``
by translating it into FO — naively with a fresh variable per step
(phi-style), or cleverly with two reused variables (psi-style), since "the
result of any join in r is always a binary table".  These translators
implement both schemes for arbitrary *star-free* regexes; Kleene star needs
transitive closure, which FO cannot express, so it raises
:class:`repro.errors.LogicError`.

The produced formulas define node extraction: formula(x) holds iff some
path conforming to the regex starts at x.
"""

from __future__ import annotations

from repro.core.logic.fo import And, EdgeRel, Exists, Formula, Label, Or, TrueFormula
from repro.core.rpq.ast import (
    AndTest,
    Concat,
    EdgeAtom,
    FalseTest,
    LabelTest,
    NodeTest,
    NotTest,
    OrTest,
    Regex,
    Star,
    Test,
    TrueTest,
    Union,
)
from repro.core.logic.fo import Not as FONot
from repro.errors import LogicError


def regex_to_fo2(regex: Regex, var: str = "x", other: str = "y") -> Formula:
    """Two-variable translation (the Vardi/psi idiom): variables alternate
    between ``var`` and ``other`` and are requantified once dead."""
    items = _flatten(regex)
    return _translate(items, var, other)


def regex_to_fo(regex: Regex, prefix: str = "v") -> Formula:
    """Naive translation with a fresh variable per traversed edge (phi-style).

    The first position is named ``x`` so answers line up with
    :func:`regex_to_fo2`; fresh variables are ``v1, v2, ...``.
    """
    items = _flatten(regex)
    counter = [0]

    def fresh() -> str:
        counter[0] += 1
        return f"{prefix}{counter[0]}"

    return _translate_fresh(items, "x", fresh)


def _flatten(regex: Regex) -> list[Regex]:
    """Flatten nested concatenations into a sequence of steps."""
    if isinstance(regex, Concat):
        return _flatten(regex.left) + _flatten(regex.right)
    return [regex]


def _translate(items: list[Regex], current: str, other: str) -> Formula:
    if not items:
        return TrueFormula()
    head, rest = items[0], items[1:]
    if isinstance(head, NodeTest):
        return _and(_test_formula(head.test, current), _translate(rest, current, other))
    if isinstance(head, EdgeAtom):
        step = _edge_formula(head, current, other)
        # `current` is dead after the step; the continuation may reuse it.
        return Exists(other, _and(step, _translate(rest, other, current)))
    if isinstance(head, Union):
        return Or(_translate(_flatten(head.left) + rest, current, other),
                  _translate(_flatten(head.right) + rest, current, other))
    if isinstance(head, Star):
        raise LogicError(
            "Kleene star needs transitive closure; FO translation covers the "
            "star-free fragment only")
    raise LogicError(f"unknown regex node: {type(head).__name__}")


def _translate_fresh(items: list[Regex], current: str, fresh) -> Formula:
    if not items:
        return TrueFormula()
    head, rest = items[0], items[1:]
    if isinstance(head, NodeTest):
        return _and(_test_formula(head.test, current),
                    _translate_fresh(rest, current, fresh))
    if isinstance(head, EdgeAtom):
        target = fresh()
        step = _edge_formula(head, current, target)
        return Exists(target, _and(step, _translate_fresh(rest, target, fresh)))
    if isinstance(head, Union):
        return Or(_translate_fresh(_flatten(head.left) + rest, current, fresh),
                  _translate_fresh(_flatten(head.right) + rest, current, fresh))
    if isinstance(head, Star):
        raise LogicError(
            "Kleene star needs transitive closure; FO translation covers the "
            "star-free fragment only")
    raise LogicError(f"unknown regex node: {type(head).__name__}")


def _edge_formula(atom: EdgeAtom, current: str, target: str) -> Formula:
    label = _edge_label(atom.test)
    if atom.inverse:
        return EdgeRel(label, target, current)
    return EdgeRel(label, current, target)


def _edge_label(test: Test) -> str:
    if isinstance(test, LabelTest):
        return test.label
    raise LogicError(
        "FO translation supports single-label edge atoms; Boolean edge tests "
        "have no single binary predicate")


def _test_formula(test: Test, var: str) -> Formula:
    if isinstance(test, LabelTest):
        return Label(test.label, var)
    if isinstance(test, TrueTest):
        return TrueFormula()
    if isinstance(test, FalseTest):
        return FONot(TrueFormula())
    if isinstance(test, NotTest):
        return FONot(_test_formula(test.inner, var))
    if isinstance(test, AndTest):
        return And(_test_formula(test.left, var), _test_formula(test.right, var))
    if isinstance(test, OrTest):
        return Or(_test_formula(test.left, var), _test_formula(test.right, var))
    raise LogicError(
        f"test {test!r} has no FO counterpart over labeled graphs")


def _and(left: Formula, right: Formula) -> Formula:
    if isinstance(right, TrueFormula):
        return left
    if isinstance(left, TrueFormula):
        return right
    return And(left, right)
