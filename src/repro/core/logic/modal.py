"""Graded modal logic — the logic of AC-GNN classifiers (Section 4.3).

Barcelo et al. [16] characterize the unary queries expressible by
aggregate-combine graph neural networks as exactly those definable in
*graded modal logic*: Boolean combinations of node atoms plus the counting
modality "at least k neighbors satisfy phi".  This module gives the logic
its standalone declarative semantics; :mod:`repro.core.gnn.compiler` turns
any formula into an equivalent GNN, and the test suite checks the two
agree on arbitrary graphs — the paper's declarative/procedural bridge made
executable.

Neighborhood direction is a parameter (``out``, ``in`` or ``both``) shared
with the GNN aggregation so the two sides always count the same edges;
multiplicities count (two parallel edges to a satisfying node contribute 2
to the grade).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LogicError, ModelCapabilityError


class ModalFormula:
    """Base class of graded modal formulas."""

    def __and__(self, other: "ModalFormula") -> "ModalFormula":
        return ModalAnd(self, other)

    def __or__(self, other: "ModalFormula") -> "ModalFormula":
        return ModalOr(self, other)

    def __invert__(self) -> "ModalFormula":
        return ModalNot(self)


@dataclass(frozen=True)
class LabelProp(ModalFormula):
    """Atom: the node's label equals ``label``."""

    label: str


@dataclass(frozen=True)
class FeatureProp(ModalFormula):
    """Atom: feature ``index`` (1-based) of the node's vector equals ``value``."""

    index: int
    value: str


@dataclass(frozen=True)
class ModalTrue(ModalFormula):
    """Holds at every node."""


@dataclass(frozen=True)
class ModalNot(ModalFormula):
    inner: ModalFormula


@dataclass(frozen=True)
class ModalAnd(ModalFormula):
    left: ModalFormula
    right: ModalFormula


@dataclass(frozen=True)
class ModalOr(ModalFormula):
    left: ModalFormula
    right: ModalFormula


@dataclass(frozen=True)
class DiamondAtLeast(ModalFormula):
    """Counting modality: at least ``count`` neighbor-edges lead to nodes
    satisfying ``inner``."""

    count: int
    inner: ModalFormula

    def __post_init__(self) -> None:
        if self.count < 1:
            raise LogicError("the grade of a diamond must be at least 1")


def modal_depth(formula: ModalFormula) -> int:
    """Nesting depth of diamonds — the number of GNN layers needed."""
    if isinstance(formula, (LabelProp, FeatureProp, ModalTrue)):
        return 0
    if isinstance(formula, ModalNot):
        return modal_depth(formula.inner)
    if isinstance(formula, (ModalAnd, ModalOr)):
        return max(modal_depth(formula.left), modal_depth(formula.right))
    if isinstance(formula, DiamondAtLeast):
        return 1 + modal_depth(formula.inner)
    raise LogicError(f"unknown modal node: {type(formula).__name__}")


def modal_subformulas(formula: ModalFormula) -> list[ModalFormula]:
    """All distinct subformulas, children before parents (topological)."""
    order: list[ModalFormula] = []
    seen: set[ModalFormula] = set()

    def visit(node: ModalFormula) -> None:
        if node in seen:
            return
        if isinstance(node, ModalNot):
            visit(node.inner)
        elif isinstance(node, (ModalAnd, ModalOr)):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, DiamondAtLeast):
            visit(node.inner)
        seen.add(node)
        order.append(node)

    visit(formula)
    return order


def neighbor_multiset(graph, node, direction: str) -> list:
    """Neighbor nodes reached over edges in the given direction, with
    multiplicity (both directions double-count self-loop partners, matching
    sum aggregation in the GNN)."""
    if direction == "out":
        return list(graph.successors(node))
    if direction == "in":
        return list(graph.predecessors(node))
    if direction == "both":
        return list(graph.successors(node)) + list(graph.predecessors(node))
    raise LogicError(f"unknown direction {direction!r}")


def evaluate_modal(graph, formula: ModalFormula, *,
                   direction: str = "out") -> set:
    """The set of nodes satisfying ``formula`` (bottom-up over subformulas)."""
    satisfied: dict[ModalFormula, set] = {}
    nodes = list(graph.nodes())
    for sub in modal_subformulas(formula):
        if isinstance(sub, LabelProp):
            lookup = getattr(graph, "node_label", None)
            if lookup is None:
                raise ModelCapabilityError("label atoms need a labeled graph")
            satisfied[sub] = {n for n in nodes if lookup(n) == sub.label}
        elif isinstance(sub, FeatureProp):
            lookup = getattr(graph, "node_feature", None)
            if lookup is None:
                raise ModelCapabilityError("feature atoms need a vector-labeled graph")
            satisfied[sub] = {n for n in nodes if lookup(n, sub.index) == sub.value}
        elif isinstance(sub, ModalTrue):
            satisfied[sub] = set(nodes)
        elif isinstance(sub, ModalNot):
            satisfied[sub] = set(nodes) - satisfied[sub.inner]
        elif isinstance(sub, ModalAnd):
            satisfied[sub] = satisfied[sub.left] & satisfied[sub.right]
        elif isinstance(sub, ModalOr):
            satisfied[sub] = satisfied[sub.left] | satisfied[sub.right]
        elif isinstance(sub, DiamondAtLeast):
            inner = satisfied[sub.inner]
            result = set()
            for n in nodes:
                hits = sum(1 for m in neighbor_multiset(graph, n, direction)
                           if m in inner)
                if hits >= sub.count:
                    result.add(n)
            satisfied[sub] = result
        else:
            raise LogicError(f"unknown modal node: {type(sub).__name__}")
    return satisfied[formula]
