"""First-order logic over labeled graphs.

As in Section 4.3 of the paper, node labels are unary predicates and edge
labels are binary predicates: ``person(x)``, ``rides(x, y)``.  Two
evaluators are provided:

- :func:`evaluate` — tuple-at-a-time recursion over assignments, the
  textbook semantics.
- :func:`evaluate_materialized` — bottom-up evaluation that materializes
  one relation per subformula and records the *maximum intermediate arity*.
  This makes the paper's point about bounded-variable evaluation
  measurable: the three-variable phi(x) materializes a ternary relation,
  while the equivalent two-variable psi(x) never exceeds binary (see
  :mod:`repro.core.logic.fo2` and experiment L1).

Quantifiers range over the graph's nodes.  Formulas must be *sentences up
to their free variables*: evaluating with an assignment that misses a free
variable raises :class:`repro.errors.LogicError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product

from repro.errors import LogicError


class Formula:
    """Base class of FO formulas (a small closed hierarchy)."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class Label(Formula):
    """Unary predicate ``label(var)``: the node bound to var has this label."""

    label: str
    var: str


@dataclass(frozen=True)
class Prop(Formula):
    """Unary predicate ``(prop = value)(var)`` on property graphs."""

    prop: str
    value: str
    var: str


@dataclass(frozen=True)
class EdgeRel(Formula):
    """Binary predicate ``label(source_var, target_var)``: a conforming edge."""

    label: str
    source: str
    target: str


@dataclass(frozen=True)
class Equals(Formula):
    """``var1 = var2``."""

    left: str
    right: str


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The formula that always holds."""


@dataclass(frozen=True)
class Not(Formula):
    inner: Formula


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True)
class Exists(Formula):
    var: str
    inner: Formula


@dataclass(frozen=True)
class Forall(Formula):
    var: str
    inner: Formula


@dataclass(frozen=True)
class CountingExists(Formula):
    """The counting quantifier ``exists^{>=count} var . inner``.

    Adding these to the two-variable fragment yields the logic C2, which —
    by Cai, Furer and Immerman [22], as the paper recounts — has exactly
    the distinguishing power of the Weisfeiler-Lehman test, and through it
    bounds GNN expressiveness.
    """

    var: str
    count: int
    inner: Formula

    def __post_init__(self) -> None:
        if self.count < 1:
            raise LogicError("counting quantifier needs count >= 1")


def free_variables(formula: Formula) -> frozenset[str]:
    """The free variables of a formula."""
    if isinstance(formula, Label):
        return frozenset({formula.var})
    if isinstance(formula, Prop):
        return frozenset({formula.var})
    if isinstance(formula, EdgeRel):
        return frozenset({formula.source, formula.target})
    if isinstance(formula, Equals):
        return frozenset({formula.left, formula.right})
    if isinstance(formula, TrueFormula):
        return frozenset()
    if isinstance(formula, Not):
        return free_variables(formula.inner)
    if isinstance(formula, (And, Or)):
        return free_variables(formula.left) | free_variables(formula.right)
    if isinstance(formula, (Exists, Forall, CountingExists)):
        return free_variables(formula.inner) - {formula.var}
    raise LogicError(f"unknown formula node: {type(formula).__name__}")


def all_variables(formula: Formula) -> frozenset[str]:
    """Every variable name occurring in the formula, bound or free."""
    if isinstance(formula, (Label, Prop)):
        return frozenset({formula.var})
    if isinstance(formula, EdgeRel):
        return frozenset({formula.source, formula.target})
    if isinstance(formula, Equals):
        return frozenset({formula.left, formula.right})
    if isinstance(formula, TrueFormula):
        return frozenset()
    if isinstance(formula, Not):
        return all_variables(formula.inner)
    if isinstance(formula, (And, Or)):
        return all_variables(formula.left) | all_variables(formula.right)
    if isinstance(formula, (Exists, Forall, CountingExists)):
        return all_variables(formula.inner) | {formula.var}
    raise LogicError(f"unknown formula node: {type(formula).__name__}")


# ---------------------------------------------------------------------------
# Tuple-at-a-time evaluation
# ---------------------------------------------------------------------------


def evaluate(graph, formula: Formula, assignment: dict | None = None) -> bool:
    """Does ``graph, assignment |= formula``?"""
    assignment = assignment or {}
    missing = free_variables(formula) - set(assignment)
    if missing:
        raise LogicError(f"unassigned free variables: {sorted(missing)}")
    return _eval(graph, formula, assignment)


def _eval(graph, formula: Formula, assignment: dict) -> bool:
    if isinstance(formula, Label):
        return graph.node_label(assignment[formula.var]) == formula.label
    if isinstance(formula, Prop):
        return graph.node_property(assignment[formula.var], formula.prop) == formula.value
    if isinstance(formula, EdgeRel):
        source = assignment[formula.source]
        target = assignment[formula.target]
        return any(graph.edge_label(edge) == formula.label
                   for edge in graph.edges_between(source, target))
    if isinstance(formula, Equals):
        return assignment[formula.left] == assignment[formula.right]
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, Not):
        return not _eval(graph, formula.inner, assignment)
    if isinstance(formula, And):
        return _eval(graph, formula.left, assignment) and _eval(graph, formula.right, assignment)
    if isinstance(formula, Or):
        return _eval(graph, formula.left, assignment) or _eval(graph, formula.right, assignment)
    if isinstance(formula, Exists):
        extended = dict(assignment)
        for node in graph.nodes():
            extended[formula.var] = node
            if _eval(graph, formula.inner, extended):
                return True
        return False
    if isinstance(formula, Forall):
        extended = dict(assignment)
        for node in graph.nodes():
            extended[formula.var] = node
            if not _eval(graph, formula.inner, extended):
                return False
        return True
    if isinstance(formula, CountingExists):
        extended = dict(assignment)
        witnesses = 0
        for node in graph.nodes():
            extended[formula.var] = node
            if _eval(graph, formula.inner, extended):
                witnesses += 1
                if witnesses >= formula.count:
                    return True
        return False
    raise LogicError(f"unknown formula node: {type(formula).__name__}")


def answers_unary(graph, formula: Formula, var: str | None = None) -> set:
    """The nodes a such that formula(a) holds (formula has one free variable)."""
    free = free_variables(formula)
    if var is None:
        if len(free) != 1:
            raise LogicError(
                f"answers_unary needs exactly one free variable, got {sorted(free)}")
        var = next(iter(free))
    elif free - {var}:
        raise LogicError(f"unexpected free variables: {sorted(free - {var})}")
    return {node for node in graph.nodes()
            if _eval(graph, formula, {var: node})}


# ---------------------------------------------------------------------------
# Materializing evaluation (relation per subformula, width tracked)
# ---------------------------------------------------------------------------


@dataclass
class MaterializationStats:
    """Width/size accounting for experiment L1."""

    max_width: int = 0
    max_rows: int = 0
    relations_built: int = 0

    def record(self, width: int, rows: int) -> None:
        self.max_width = max(self.max_width, width)
        self.max_rows = max(self.max_rows, rows)
        self.relations_built += 1


def evaluate_materialized(graph, formula: Formula,
                          ) -> tuple[set, tuple[str, ...], MaterializationStats]:
    """Bottom-up evaluation; returns (tuples, column order, stats).

    The relation contains one tuple per satisfying assignment of the free
    variables (columns sorted by name).  A sentence yields columns ``()``
    and either {()} (true) or set() (false).
    """
    stats = MaterializationStats()
    domain = sorted(graph.nodes(), key=str)
    rows, columns = _materialize(graph, formula, domain, stats)
    return rows, columns, stats


def _materialize(graph, formula: Formula, domain: list, stats: MaterializationStats,
                 ) -> tuple[set, tuple[str, ...]]:
    if isinstance(formula, Label):
        rows = {(node,) for node in domain
                if graph.node_label(node) == formula.label}
        return _record(stats, rows, (formula.var,))
    if isinstance(formula, Prop):
        rows = {(node,) for node in domain
                if graph.node_property(node, formula.prop) == formula.value}
        return _record(stats, rows, (formula.var,))
    if isinstance(formula, EdgeRel):
        if formula.source == formula.target:
            rows = {(graph.source(edge),) for edge in graph.edges()
                    if graph.edge_label(edge) == formula.label
                    and graph.source(edge) == graph.target(edge)}
            return _record(stats, rows, (formula.source,))
        pairs = {(graph.source(edge), graph.target(edge))
                 for edge in graph.edges()
                 if graph.edge_label(edge) == formula.label}
        columns = tuple(sorted((formula.source, formula.target)))
        if columns == (formula.source, formula.target):
            rows = pairs
        else:
            rows = {(t, s) for s, t in pairs}
        return _record(stats, rows, columns)
    if isinstance(formula, Equals):
        if formula.left == formula.right:
            return _record(stats, {(node,) for node in domain}, (formula.left,))
        columns = tuple(sorted((formula.left, formula.right)))
        return _record(stats, {(node, node) for node in domain}, columns)
    if isinstance(formula, TrueFormula):
        return _record(stats, {()}, ())
    if isinstance(formula, Not):
        inner_rows, columns = _materialize(graph, formula.inner, domain, stats)
        universe = set(iter_product(domain, repeat=len(columns)))
        return _record(stats, universe - inner_rows, columns)
    if isinstance(formula, And):
        left_rows, left_cols = _materialize(graph, formula.left, domain, stats)
        right_rows, right_cols = _materialize(graph, formula.right, domain, stats)
        rows, columns = _join(left_rows, left_cols, right_rows, right_cols)
        return _record(stats, rows, columns)
    if isinstance(formula, Or):
        left_rows, left_cols = _materialize(graph, formula.left, domain, stats)
        right_rows, right_cols = _materialize(graph, formula.right, domain, stats)
        columns = tuple(sorted(set(left_cols) | set(right_cols)))
        rows = (_expand(left_rows, left_cols, columns, domain)
                | _expand(right_rows, right_cols, columns, domain))
        return _record(stats, rows, columns)
    if isinstance(formula, (Exists, Forall, CountingExists)):
        inner_rows, inner_cols = _materialize(graph, formula.inner, domain, stats)
        if formula.var not in inner_cols:
            # Quantifying a variable not free inside: the inner truth value
            # is kept, except a counting quantifier also needs enough
            # domain elements to witness the count.
            if isinstance(formula, CountingExists) and formula.count > len(domain):
                return _record(stats, set(), inner_cols)
            return inner_rows, inner_cols
        keep = tuple(c for c in inner_cols if c != formula.var)
        index = inner_cols.index(formula.var)
        if isinstance(formula, Exists):
            rows = {tuple(v for i, v in enumerate(row) if i != index)
                    for row in inner_rows}
        elif isinstance(formula, Forall):
            groups: dict = {}
            for row in inner_rows:
                key = tuple(v for i, v in enumerate(row) if i != index)
                groups.setdefault(key, set()).add(row[index])
            full = set(domain)
            rows = {key for key, values in groups.items() if values == full}
        else:
            groups = {}
            for row in inner_rows:
                key = tuple(v for i, v in enumerate(row) if i != index)
                groups.setdefault(key, set()).add(row[index])
            rows = {key for key, values in groups.items()
                    if len(values) >= formula.count}
        return _record(stats, rows, keep)
    raise LogicError(f"unknown formula node: {type(formula).__name__}")


def _record(stats: MaterializationStats, rows: set, columns: tuple[str, ...],
            ) -> tuple[set, tuple[str, ...]]:
    stats.record(len(columns), len(rows))
    return rows, columns


def _join(left_rows: set, left_cols: tuple, right_rows: set, right_cols: tuple,
          ) -> tuple[set, tuple[str, ...]]:
    """Natural hash join on the shared columns."""
    shared = tuple(c for c in left_cols if c in right_cols)
    columns = tuple(sorted(set(left_cols) | set(right_cols)))
    right_only = tuple(c for c in right_cols if c not in left_cols)
    left_shared_idx = [left_cols.index(c) for c in shared]
    right_shared_idx = [right_cols.index(c) for c in shared]
    right_only_idx = [right_cols.index(c) for c in right_only]
    table: dict = {}
    for row in right_rows:
        key = tuple(row[i] for i in right_shared_idx)
        table.setdefault(key, []).append(tuple(row[i] for i in right_only_idx))
    out_positions = {c: i for i, c in enumerate(columns)}
    rows = set()
    for row in left_rows:
        key = tuple(row[i] for i in left_shared_idx)
        for extra in table.get(key, ()):
            merged = [None] * len(columns)
            for c, v in zip(left_cols, row):
                merged[out_positions[c]] = v
            for c, v in zip(right_only, extra):
                merged[out_positions[c]] = v
            rows.add(tuple(merged))
    return rows, columns


def _expand(rows: set, columns: tuple, target_columns: tuple, domain: list) -> set:
    """Pad a relation to extra columns by crossing with the domain."""
    if columns == target_columns:
        return rows
    missing = [c for c in target_columns if c not in columns]
    positions = {c: i for i, c in enumerate(target_columns)}
    result = set()
    for row in rows:
        for filler in iter_product(domain, repeat=len(missing)):
            merged = [None] * len(target_columns)
            for c, v in zip(columns, row):
                merged[positions[c]] = v
            for c, v in zip(missing, filler):
                merged[positions[c]] = v
            result.add(tuple(merged))
    return result
