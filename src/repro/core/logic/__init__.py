"""Declarative node extraction: first-order logic over graphs (Section 4.3).

- :mod:`repro.core.logic.fo` — FO formulas with unary (node-label) and
  binary (edge-label) predicates, a tuple-at-a-time evaluator and a
  materializing evaluator that reports the width of its intermediate
  relations.
- :mod:`repro.core.logic.fo2` — the bounded-variable fragment: variable
  counting, the FO2 evaluation discipline (only unary/binary intermediates),
  and the paper's phi(x) / psi(x) example pair.
- :mod:`repro.core.logic.translate` — regex -> FO (fresh variables) and
  regex -> FO2 (two reused variables, the Vardi idiom) for star-free
  expressions.
- :mod:`repro.core.logic.modal` — graded modal logic, the fragment matching
  AC-GNN classifiers (Barcelo et al.).
"""

from repro.core.logic.fo import (
    And,
    CountingExists,
    EdgeRel,
    Equals,
    Exists,
    Forall,
    Formula,
    Label,
    Not,
    Or,
    Prop,
    TrueFormula,
    answers_unary,
    evaluate,
    evaluate_materialized,
    free_variables,
)
from repro.core.logic.c2 import is_c2, modal_to_c2
from repro.core.logic.fo2 import (
    count_distinct_variables,
    evaluate_bounded,
    is_bounded_variable,
    paper_phi,
    paper_psi,
)
from repro.core.logic.translate import regex_to_fo, regex_to_fo2
from repro.core.logic.modal import (
    DiamondAtLeast,
    FeatureProp,
    LabelProp,
    ModalAnd,
    ModalFormula,
    ModalNot,
    ModalOr,
    ModalTrue,
    evaluate_modal,
    modal_depth,
    modal_subformulas,
)

__all__ = [
    "Formula", "Label", "EdgeRel", "Prop", "Equals", "TrueFormula",
    "Not", "And", "Or", "Exists", "Forall", "CountingExists",
    "is_c2", "modal_to_c2",
    "free_variables", "evaluate", "evaluate_materialized", "answers_unary",
    "count_distinct_variables", "is_bounded_variable", "evaluate_bounded",
    "paper_phi", "paper_psi",
    "regex_to_fo", "regex_to_fo2",
    "ModalFormula", "LabelProp", "FeatureProp", "ModalTrue",
    "ModalNot", "ModalAnd", "ModalOr", "DiamondAtLeast",
    "evaluate_modal", "modal_depth", "modal_subformulas",
]
