"""C2: two-variable logic with counting — the logic of the WL test.

Section 4.3 recalls the chain of results the GNN/logic bridge rests on:
Cai, Furer and Immerman [22] proved that the Weisfeiler-Lehman test
distinguishes exactly what *C2* — first-order logic with counting
quantifiers and two variables — can distinguish, and Barcelo et al. [16]
route GNN expressiveness through it.  This module provides:

- :func:`is_c2` — syntactic membership in the fragment (two variable
  names, counting quantifiers allowed);
- :func:`modal_to_c2` — the standard translation of graded modal logic
  into C2 (diamonds become counting quantifiers over edge atoms), i.e. the
  inclusion "graded modal logic is the guarded fragment of C2";
- the test suite checks the Cai-Furer-Immerman direction empirically:
  nodes with equal stable WL colors satisfy exactly the same randomly
  generated C2 formulas.

The translation counts *distinct witness nodes* (as C2 does) while the
modal diamond counts neighbor edges with multiplicity; on simple graphs
the two agree, and the translator refuses multigraphs-specific grades only
in documentation, not code — callers compare on simple graphs.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.logic.fo import (
    And,
    CountingExists,
    EdgeRel,
    Equals,
    Exists,
    Forall,
    Formula,
    Label,
    Not,
    Or,
    Prop,
    TrueFormula,
    all_variables,
)
from repro.core.logic.modal import (
    DiamondAtLeast,
    FeatureProp,
    LabelProp,
    ModalAnd,
    ModalFormula,
    ModalNot,
    ModalOr,
    ModalTrue,
)
from repro.errors import LogicError


def is_c2(formula: Formula) -> bool:
    """Is the formula in C2 (at most two variable names, graph atoms only)?"""
    if len(all_variables(formula)) > 2:
        return False
    return _only_graph_atoms(formula)


def _only_graph_atoms(formula: Formula) -> bool:
    if isinstance(formula, (Label, EdgeRel, Equals, TrueFormula)):
        return True
    if isinstance(formula, Prop):
        return True  # property atoms are unary predicates too
    if isinstance(formula, Not):
        return _only_graph_atoms(formula.inner)
    if isinstance(formula, (And, Or)):
        return _only_graph_atoms(formula.left) and _only_graph_atoms(formula.right)
    if isinstance(formula, (Exists, Forall, CountingExists)):
        return _only_graph_atoms(formula.inner)
    return False


def modal_to_c2(formula: ModalFormula, edge_labels: Sequence[str], *,
                var: str = "x", other: str = "y") -> Formula:
    """Translate a graded modal formula into an equivalent C2 formula.

    ``edge_labels`` enumerates the labels the modal diamond ranges over
    (modal logic's "neighbor" is label-blind; C2 needs explicit binary
    predicates).  The free variable of the result is ``var``.
    """
    if not edge_labels:
        raise LogicError("modal_to_c2 needs at least one edge label")
    if isinstance(formula, LabelProp):
        return Label(formula.label, var)
    if isinstance(formula, FeatureProp):
        raise LogicError("feature atoms have no labeled-graph C2 counterpart")
    if isinstance(formula, ModalTrue):
        return TrueFormula()
    if isinstance(formula, ModalNot):
        return Not(modal_to_c2(formula.inner, edge_labels, var=var, other=other))
    if isinstance(formula, ModalAnd):
        return And(modal_to_c2(formula.left, edge_labels, var=var, other=other),
                   modal_to_c2(formula.right, edge_labels, var=var, other=other))
    if isinstance(formula, ModalOr):
        return Or(modal_to_c2(formula.left, edge_labels, var=var, other=other),
                  modal_to_c2(formula.right, edge_labels, var=var, other=other))
    if isinstance(formula, DiamondAtLeast):
        edge = _any_edge(edge_labels, var, other)
        # Variables swap for the inner formula: the witness becomes current.
        inner = modal_to_c2(formula.inner, edge_labels, var=other, other=var)
        return CountingExists(other, formula.count, And(edge, inner))
    raise LogicError(f"unknown modal node: {type(formula).__name__}")


def _any_edge(edge_labels: Sequence[str], source: str, target: str) -> Formula:
    atoms = [EdgeRel(label, source, target) for label in edge_labels]
    result: Formula = atoms[0]
    for atom in atoms[1:]:
        result = Or(result, atom)
    return result
