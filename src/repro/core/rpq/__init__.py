"""Regular path queries: the regex grammar of the paper and its algorithms.

The grammar (paper, eq. (1)) over a labeled graph::

    test ::= l | (!test) | (test | test) | (test & test)
    r    ::= ?test | test | test^- | (r + r) | (r / r) | (r*)

extended with property tests ``(p = v)`` for property graphs and feature
tests ``(f_i = v)`` for vector-labeled graphs.  Answers are paths (walks)
``n0 e1 n1 ... ek nk`` whose labels conform to ``r``; ``?test`` checks the
node at the current position without consuming an edge; ``test^-`` traverses
an edge backwards.

Algorithms (Section 4.1):

- :func:`count_paths_exact` / :func:`count_paths_bruteforce` — the problem
  ``Count`` (SpanL-complete in general; exact algorithms are worst-case
  exponential).
- :class:`ApproxPathCounter` — the FPRAS of Arenas, Croquevielle, Jayaram
  and Riveros, adapted to the graph/automaton product.
- :class:`UniformPathSampler` — the problem ``Gen``: preprocessing phase +
  exactly-uniform generation phase.
- :func:`enumerate_paths` — polynomial-delay enumeration after a
  preprocessing phase.
"""

from repro.core.rpq.ast import (
    AndTest,
    EdgeAtom,
    FalseTest,
    FeatureTest,
    LabelTest,
    NodeTest,
    NotTest,
    OrTest,
    PropertyTest,
    Regex,
    Concat,
    Star,
    Test,
    TrueTest,
    Union,
    concat,
    optional,
    plus,
    star,
    union,
)
from repro.core.rpq.parser import parse_regex, parse_test
from repro.core.rpq.paths import Path, cat
from repro.core.rpq.nfa import (
    NFA,
    clear_compile_cache,
    compile_cache_info,
    compile_regex,
)
from repro.core.rpq.product import ProductNFA, build_product
from repro.core.rpq.semantics import evaluate_bruteforce
from repro.core.rpq.evaluate import endpoint_pairs, nodes_matching, paths_matching
from repro.core.rpq.count import count_paths_bruteforce, count_paths_exact
from repro.core.rpq.enumerate import enumerate_paths, enumerate_paths_up_to
from repro.core.rpq.generate import UniformPathSampler
from repro.core.rpq.fpras import ApproxPathCounter

__all__ = [
    "Test", "LabelTest", "PropertyTest", "FeatureTest", "TrueTest", "FalseTest",
    "NotTest", "AndTest", "OrTest",
    "Regex", "NodeTest", "EdgeAtom", "Union", "Concat", "Star",
    "union", "concat", "star", "plus", "optional",
    "parse_regex", "parse_test",
    "Path", "cat",
    "NFA", "compile_regex", "compile_cache_info", "clear_compile_cache",
    "ProductNFA", "build_product",
    "evaluate_bruteforce",
    "paths_matching", "endpoint_pairs", "nodes_matching",
    "count_paths_exact", "count_paths_bruteforce",
    "enumerate_paths", "enumerate_paths_up_to",
    "UniformPathSampler",
    "ApproxPathCounter",
]
