"""Brute-force reference semantics of regexes: the evaluation [[r]]_L.

This module implements the paper's recursive definition literally, producing
the *set of paths* that conform to a regex, restricted to paths of length at
most ``max_length`` (the set is infinite in general because paths are
walks).  It is exponential and exists to cross-check the automaton-based
algorithms on small instances; every production algorithm in this package is
tested against it.
"""

from __future__ import annotations

from repro.core.rpq.ast import Concat, EdgeAtom, NodeTest, Regex, Star, Union
from repro.core.rpq.paths import Path, cat
from repro.errors import InvalidLengthError, LogicError


def evaluate_bruteforce(graph, regex: Regex, max_length: int) -> set[Path]:
    """[[regex]]_graph restricted to paths with at most ``max_length`` edges."""
    if max_length < 0:
        raise InvalidLengthError("max_length", max_length)
    if isinstance(regex, NodeTest):
        return {Path.single(n) for n in graph.nodes()
                if regex.test.matches_node(graph, n)}
    if isinstance(regex, EdgeAtom):
        if max_length < 1:
            return set()
        result = set()
        for edge in graph.edges():
            if not regex.test.matches_edge(graph, edge):
                continue
            source, target = graph.endpoints(edge)
            if regex.inverse:
                result.add(Path((target, source), (edge,)))
            else:
                result.add(Path((source, target), (edge,)))
        return result
    if isinstance(regex, Union):
        return (evaluate_bruteforce(graph, regex.left, max_length)
                | evaluate_bruteforce(graph, regex.right, max_length))
    if isinstance(regex, Concat):
        left = evaluate_bruteforce(graph, regex.left, max_length)
        right = evaluate_bruteforce(graph, regex.right, max_length)
        result = set()
        for p in left:
            budget = max_length - p.length
            for q in right:
                if q.length <= budget and p.end == q.start:
                    result.add(cat(p, q))
        return result
    if isinstance(regex, Star):
        # [[r*]] = union of [[r]]^i for i >= 0; the i = 0 case is every
        # length-0 path.  Iterate to a fixpoint under the length bound.
        result = {Path.single(n) for n in graph.nodes()}
        base = evaluate_bruteforce(graph, regex.inner, max_length)
        frontier = set(result)
        while frontier:
            new_paths = set()
            for p in frontier:
                budget = max_length - p.length
                for q in base:
                    if q.length <= budget and p.end == q.start:
                        candidate = cat(p, q)
                        if candidate not in result:
                            new_paths.add(candidate)
            result |= new_paths
            frontier = new_paths
        return result
    raise LogicError(f"unknown regex node: {type(regex).__name__}")


def paths_of_length(paths: set[Path], k: int) -> set[Path]:
    """Filter a path set to |p| = k (helper for Count/Gen cross-checks)."""
    return {p for p in paths if p.length == k}
