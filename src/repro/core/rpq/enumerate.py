"""Polynomial-delay enumeration of conforming paths (Section 4.1).

Following the enumeration paradigm the paper describes, the computation is
split into a *preprocessing phase* — building the product automaton and the
backward layers ``back[j]`` (states that can still reach acceptance in
exactly ``j`` steps) — and an *enumeration phase*: a DFS over the
determinized product in which every expanded branch is guaranteed to produce
at least one answer, because subsets are pruned against ``back``.  The delay
between consecutive answers is therefore bounded by O(k * product-degree),
polynomial in the input — never proportional to the (possibly exponential)
number of remaining answers.

Each distinct path is emitted exactly once (words are determinized), in a
deterministic order.

Under an execution :class:`~repro.exec.Context` (``ctx``) the DFS
checkpoints once per expanded stack frame (site ``enumerate.pop``) and
counts every emitted answer against ``max_results``, so both runaway
preprocessing and runaway answer sets stay within budget.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.rpq.ast import Regex
from repro.core.rpq.nfa import compile_regex
from repro.core.rpq.paths import Path
from repro.core.rpq.product import INITIAL, ProductNFA, build_product, symbol_sort_key
from repro.errors import InvalidLengthError


def enumerate_words(product: ProductNFA, length: int, *,
                    ctx=None) -> Iterator[tuple]:
    """Yield every accepted word of exactly ``length`` symbols, poly delay."""
    if length < 0:
        raise InvalidLengthError("length", length)
    back = product.back_layers(length)
    start = frozenset([INITIAL]) & back[length]
    if not start:
        return
    # Iterative DFS; each stack frame is (subset, word-so-far).
    stack: list[tuple[frozenset[int], tuple]] = [(start, ())]
    while stack:
        if ctx is not None:
            ctx.checkpoint("enumerate.pop")
            ctx.note_frontier(len(stack), "enumerate.pop")
        subset, word = stack.pop()
        remaining = length - len(word)
        if remaining == 0:
            if ctx is not None:
                ctx.tick_results("enumerate.pop")
            yield word
            continue
        survivors = back[remaining - 1]
        # Push in reverse sorted order so symbols pop smallest-first.
        for symbol in sorted(product.symbols_from(subset),
                             key=symbol_sort_key, reverse=True):
            reached = product.delta(subset, symbol) & survivors
            if reached:
                stack.append((reached, word + (symbol,)))


def enumerate_paths(graph, regex: Regex, k: int,
                    start_nodes: Iterable | None = None,
                    end_nodes: Iterable | None = None,
                    *, use_label_index: bool = True, ctx=None) -> Iterator[Path]:
    """Enumerate the paths p in [[regex]] with |p| = k, one by one.

    The generator's construction cost is the preprocessing phase; iterating
    it is the bounded-delay enumeration phase.
    """
    if k < 0:
        raise InvalidLengthError("path length k", k)
    nfa = compile_regex(regex)
    product = build_product(graph, nfa, start_nodes=start_nodes,
                            end_nodes=end_nodes, use_label_index=use_label_index,
                            ctx=ctx)
    for word in enumerate_words(product, k + 1, ctx=ctx):
        yield product.word_to_path(word)


def enumerate_paths_up_to(graph, regex: Regex, max_k: int,
                          start_nodes: Iterable | None = None,
                          end_nodes: Iterable | None = None,
                          *, use_label_index: bool = True,
                          ctx=None) -> Iterator[Path]:
    """Enumerate conforming paths of every length 0..max_k, shortest first."""
    if max_k < 0:
        raise InvalidLengthError("max_k", max_k)
    nfa = compile_regex(regex)
    product = build_product(graph, nfa, start_nodes=start_nodes,
                            end_nodes=end_nodes, use_label_index=use_label_index,
                            ctx=ctx)
    for k in range(max_k + 1):
        for word in enumerate_words(product, k + 1, ctx=ctx):
            yield product.word_to_path(word)
