"""High-level evaluation helpers over [[r]].

These wrap the product construction for the two query modes Section 4
discusses beyond raw path sets:

- :func:`endpoint_pairs` — the pairs (a, b) such that some conforming path
  goes from a to b.  This is plain reachability on the product automaton, so
  no length bound is needed even though [[r]] itself is infinite.
- :func:`nodes_matching` — node extraction: the nodes a that can reach some
  b along a conforming path (the paper's "who possibly got infected on the
  bus" query shape).
- :func:`paths_matching` — materialize conforming paths up to a length
  bound, via the poly-delay enumerator.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.rpq.ast import Regex
from repro.core.rpq.enumerate import enumerate_paths_up_to
from repro.core.rpq.nfa import compile_regex
from repro.core.rpq.paths import Path
from repro.core.rpq.product import INITIAL, build_product


def paths_matching(graph, regex: Regex, max_length: int,
                   start_nodes: Iterable | None = None,
                   end_nodes: Iterable | None = None) -> Iterator[Path]:
    """All conforming paths with |p| <= max_length, shortest first."""
    return enumerate_paths_up_to(graph, regex, max_length,
                                 start_nodes=start_nodes, end_nodes=end_nodes)


def endpoint_pairs(graph, regex: Regex,
                   start_nodes: Iterable | None = None,
                   end_nodes: Iterable | None = None) -> set[tuple]:
    """All (start(p), end(p)) for p in [[regex]] — finite, computed exactly.

    Works by reachability in the product automaton: for each initial symbol
    ('init', a), every accepting product state reachable from it contributes
    the pair (a, node-of-that-state).
    """
    nfa = compile_regex(regex)
    product = build_product(graph, nfa, start_nodes=start_nodes, end_nodes=end_nodes)
    pairs: set[tuple] = set()
    for symbol, first_states in product.transitions[INITIAL].items():
        start_node = symbol[1]
        seen: set[int] = set(first_states)
        stack = list(first_states)
        while stack:
            state = stack.pop()
            if state in product.accepts:
                pairs.add((start_node, product.state_node[state]))
            for targets in product.transitions[state].values():
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        stack.append(target)
    return pairs


def nodes_matching(graph, regex: Regex,
                   end_nodes: Iterable | None = None) -> set:
    """Node extraction: nodes a with a conforming path from a to some b."""
    return {a for a, _ in endpoint_pairs(graph, regex, end_nodes=end_nodes)}


def shortest_conforming_length(graph, regex: Regex, start_node, end_node) -> int | None:
    """min{|p| : p in [[regex]], start(p)=start_node, end(p)=end_node}, or None.

    BFS over the product automaton (word length - 1 = path length); this is
    the distance notion S_{a,b,r} of Section 4.2 builds on.
    """
    nfa = compile_regex(regex)
    product = build_product(graph, nfa, start_nodes=[start_node],
                            end_nodes=[end_node])
    frontier = set(product.transitions[INITIAL].get(("init", start_node), ()))
    seen = set(frontier)
    distance = 0
    while frontier:
        if any(state in product.accepts for state in frontier):
            return distance
        next_frontier: set[int] = set()
        for state in frontier:
            for targets in product.transitions[state].values():
                next_frontier.update(targets)
        frontier = next_frontier - seen
        seen |= frontier
        distance += 1
    return None
