"""High-level evaluation helpers over [[r]].

These wrap the product construction for the two query modes Section 4
discusses beyond raw path sets:

- :func:`endpoint_pairs` — the pairs (a, b) such that some conforming path
  goes from a to b.  This is plain reachability on the product automaton, so
  no length bound is needed even though [[r]] itself is infinite.
- :func:`nodes_matching` — node extraction: the nodes a that can reach some
  b along a conforming path (the paper's "who possibly got infected on the
  bus" query shape).
- :func:`paths_matching` — materialize conforming paths up to a length
  bound, via the poly-delay enumerator.

Both reachability helpers run in a *single* sweep of the product automaton:
one backward reachability pass from the accept states yields the alive
states, and one forward fixpoint propagating start-node sets (as integer
bit masks) over the alive states yields every (start, end) pair — instead
of one DFS per start node (O(|starts|) traversals) as a naive
implementation would do.  Regexes whose automaton is a pure chain of edge
steps (edge atoms, concatenations and unions of them) bypass the product
entirely and run as a frontier join over the label index.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from itertools import repeat

from repro.core.rpq.ast import Regex, TrueTest
from repro.core.rpq.enumerate import enumerate_paths_up_to
from repro.core.rpq.nfa import NFA, compile_regex
from repro.core.rpq.paths import Path
from repro.core.rpq.product import INITIAL, _edge_fetchers, build_product
from repro.core.rpq.vectorized.engine import resolve_engine


def _note_engine(ctx, engine: str, reason: str) -> None:
    """Record the resolved engine where ``--stats`` / traces surface it."""
    if ctx is not None:
        ctx.stats.notes["engine"] = engine
        ctx.stats.notes["engine_reason"] = reason


def footprint_edge_count(graph, nfa: NFA) -> int | None:
    """How many graph edges the automaton's label footprint can touch.

    The density signal of the ``auto`` engine heuristic: the sum of the
    label-index bucket sizes over every transition's label candidates.
    ``None`` means "unknown or unrestricted" — the graph has no label
    index, or some transition accepts edges regardless of label, so the
    whole edge set participates and density is just ``m/n``.
    """
    if getattr(graph, "label_adjacency_index", None) is None:
        return None
    labels: set = set()
    for transitions in nfa.edge_transitions.values():
        for test, _, _ in transitions:
            candidates = test.label_candidates()
            if candidates is None:
                return None
            labels |= candidates
    # Disk-backed graphs answer per-label counts from the segment header
    # (no decode); counting via edges_with_label would defeat laziness.
    counter = getattr(graph, "label_edge_count", None)
    if counter is not None:
        return sum(counter(label) for label in labels)
    return sum(sum(1 for _ in graph.edges_with_label(label))
               for label in labels)


def _decode_mask(mask: int, of_bit: list) -> list:
    """The values whose bits are set in ``mask`` (start-set bit decoding)."""
    values = []
    while mask:
        low = mask & -mask
        values.append(of_bit[low.bit_length() - 1])
        mask ^= low
    return values


def _chain_steps(nfa: NFA) -> list[list[tuple]] | None:
    """Decompose a pure edge-step chain automaton into its steps, else None.

    Matches automata that are a straight line of k >= 1 edge steps from the
    start state to the accept state, with no epsilon moves and possibly
    several parallel (test, inverse) alternatives per step — the compiled
    shape of concatenations of edge atoms and unions thereof (``contact``,
    ``rides^-``, ``L0/L1/L2``, ``(L0 + L1)/L2``).  For these, [[r]] is the
    set of k-edge paths whose i-th edge passes one of step i's tests, so
    evaluation is a frontier join — seeded by a global edge (or label-index)
    scan and expanded through per-node candidate fetchers — with no product
    automaton at all.
    """
    if nfa.epsilon_transitions:
        return None
    steps: list[list[tuple]] = []
    state = nfa.start
    visited = {state}
    while state != nfa.accept:
        transitions = nfa.edge_transitions.get(state)
        if not transitions:
            return None
        targets = {target for _, _, target in transitions}
        if len(targets) != 1:
            return None
        (state,) = targets
        if state in visited:
            return None
        visited.add(state)
        steps.append([(test, inverse) for test, inverse, _ in transitions])
    # Every transition family must lie on the chain (no branches off it).
    if len(steps) != len(nfa.edge_transitions):
        return None
    return steps


def _edges_matching(graph, test, use_label_index: bool):
    """All graph edges passing ``test``, through the global label index when
    the test is label-restricted (mirrors the product's fetch planning,
    including its error surface: non-exact candidates are re-checked with
    ``matches_edge``, non-label tests scan and check every edge)."""
    if use_label_index and getattr(graph, "label_adjacency_index", None) is not None:
        labels = test.label_candidates()
        if labels is not None:
            candidates = (edge for label in sorted(labels, key=str)
                          for edge in graph.edges_with_label(label))
            if test.label_candidates_exact():
                return candidates
            return (e for e in candidates if test.matches_edge(graph, e))
    if isinstance(test, TrueTest):
        return iter(graph.edges())
    return (e for e in graph.edges() if test.matches_edge(graph, e))


def _chain_frontiers(graph, steps: list[list[tuple]], use_label_index: bool,
                     ctx=None):
    """Run a chain automaton as a frontier join; yields the final frontier.

    Returns ``(start_of_bit, frontier)`` where ``frontier`` maps each node
    reachable through the whole chain to the bit mask of start nodes (as
    indexes into ``start_of_bit``) that reach it.  The first step seeds the
    frontier from a global edge scan; each later step expands the current
    frontier through the same per-node candidate fetchers the product
    construction uses, so candidate sets — and hence the error surface —
    are identical to the product path's.
    """
    endpoints = graph.endpoints
    start_of_bit: list = []
    bit_of_start: dict = {}
    frontier: dict = {}
    for test, inverse in steps[0]:
        for edge in _edges_matching(graph, test, use_label_index):
            if ctx is not None:
                ctx.checkpoint("evaluate.chain")
            source, target = endpoints(edge)
            if inverse:
                source, target = target, source
            bit = bit_of_start.get(source)
            if bit is None:
                bit = bit_of_start[source] = 1 << len(start_of_bit)
                start_of_bit.append(source)
            frontier[target] = frontier.get(target, 0) | bit
    plan = _edge_fetchers(graph, use_label_index)
    for alternatives in steps[1:]:
        if not frontier:
            break
        fetchers = [(plan(test, inverse), test, inverse)
                    for test, inverse in alternatives]
        next_frontier: dict = {}
        for node, mask in frontier.items():
            if ctx is not None:
                ctx.checkpoint("evaluate.chain")
                ctx.note_frontier(len(frontier), "evaluate.chain")
            for (fetch, skip_test), test, inverse in fetchers:
                for edge in fetch(node):
                    if not skip_test and not test.matches_edge(graph, edge):
                        continue
                    source, target = endpoints(edge)
                    next_node = source if inverse else target
                    next_frontier[next_node] = next_frontier.get(next_node, 0) | mask
        frontier = next_frontier
    return start_of_bit, frontier


def paths_matching(graph, regex: Regex, max_length: int,
                   start_nodes: Iterable | None = None,
                   end_nodes: Iterable | None = None, *,
                   ctx=None) -> Iterator[Path]:
    """All conforming paths with |p| <= max_length, shortest first."""
    return enumerate_paths_up_to(graph, regex, max_length,
                                 start_nodes=start_nodes, end_nodes=end_nodes,
                                 ctx=ctx)


def endpoint_pairs(graph, regex: Regex,
                   start_nodes: Iterable | None = None,
                   end_nodes: Iterable | None = None,
                   *, use_label_index: bool = True, engine: str = "auto",
                   ctx=None, tracer=None, pool=None,
                   cache=None) -> set[tuple]:
    """All (start(p), end(p)) for p in [[regex]] — finite, computed exactly.

    Chain-shaped regexes (pure sequences of edge steps, unrestricted
    endpoints) run as a frontier join with no product at all.  Otherwise,
    one backward sweep from the accept states prunes the product to its
    alive states; one forward fixpoint then propagates, per alive state, the
    set of start nodes that reach it, encoded as an integer bit mask so a
    set union is one big-int OR.  Each accepting state (q, b) finally
    contributes the pairs {(a, b) : a in its start set}.  The propagation is
    monotone over subsets of the start nodes, so the worklist terminates,
    and it traverses each deduplicated product edge a bounded number of
    times instead of once per start node.

    With a :class:`~repro.obs.Tracer` the phases are recorded as nested
    spans (``compile`` with cache hit/miss deltas, then ``evaluate`` tagged
    with the chosen strategy, containing ``product`` for the non-chain
    path); ``tracer=None`` adds no spans and no allocations.

    With a :class:`~repro.exec.parallel.WorkerPool` bound to this graph
    (``pool=``), the start-node set is sharded across the pool's workers and
    the per-shard answers are unioned — exactly equivalent (every conforming
    path lives in the shard of its start node; the differential harness
    certifies this), with budgets subdivided and worker stats/traces merged
    by the pool.

    With a :class:`~repro.cache.QueryCache` (``cache=``), the answer is
    memoized under the canonical key (graph, regex text, endpoint
    restrictions) with the regex's label footprint; a hit returns without
    compiling, evaluating, or spending a single budget checkpoint, and
    survives any interleaved mutations whose log records stay outside the
    footprint.  The cached value is frozen; callers get a fresh set.

    ``engine`` selects the evaluation kernel: ``"scalar"`` is the
    per-node Python engine above, ``"vector"`` forces the numpy fixpoint
    kernel of :mod:`repro.core.rpq.vectorized` (identical answers — the
    differential harness pins scalar == vector), and ``"auto"`` (the
    default) picks by graph size, keeping the chain fast path where it
    applies.  The engines share the cache key family: answers are
    engine-independent, so a cache entry serves both.
    """
    if cache is not None:
        from repro.cache import MISS, label_footprint
        from repro.cache.result_cache import nodes_key

        start_nodes = nodes_key(start_nodes)
        end_nodes = nodes_key(end_nodes)
        key = ("endpoint_pairs", regex.to_text(), start_nodes, end_nodes)
        hit = cache.lookup(graph, key)
        if hit is not MISS:
            return set(hit)
        pairs = endpoint_pairs(graph, regex, start_nodes, end_nodes,
                               use_label_index=use_label_index,
                               engine=engine, ctx=ctx,
                               tracer=tracer, pool=pool)
        cache.store(graph, key, label_footprint(regex), frozenset(pairs))
        return pairs
    if pool is not None:
        from repro.exec.parallel import sharded_endpoint_pairs

        return sharded_endpoint_pairs(pool, graph, regex, start_nodes,
                                      end_nodes, use_label_index=use_label_index,
                                      engine=engine, ctx=ctx, tracer=tracer)
    if tracer is None:
        nfa = compile_regex(regex)
    else:
        with tracer.span("compile", cache=True) as span:
            nfa = compile_regex(regex)
            span.attrs["nfa_states"] = nfa.n_states
    footprint = (footprint_edge_count(graph, nfa)
                 if engine == "auto" else None)
    resolved, reason = resolve_engine(engine, graph,
                                      footprint_edges=footprint)
    if (start_nodes is None and end_nodes is None
            and (resolved == "scalar" or engine == "auto")):
        steps = _chain_steps(nfa)
        if steps is not None:
            # Pure edge-step chain: evaluate as a frontier join over the
            # label index, with no product automaton at all.  ``auto``
            # prefers this even where the size heuristic says vector —
            # the join touches only matching edges, the kernel touches
            # every node.
            if resolved == "vector":
                resolved = "scalar"
                reason = ("auto: chain-shaped query "
                          "(label-index frontier join preferred)")
            _note_engine(ctx, resolved, reason)
            if tracer is None:
                return _chain_pairs(graph, steps, use_label_index, ctx)
            with tracer.span("evaluate", ctx=ctx,
                             strategy="chain-frontier-join",
                             engine="scalar") as span:
                pairs = _chain_pairs(graph, steps, use_label_index, ctx)
                span.attrs["answers"] = len(pairs)
                return pairs
    _note_engine(ctx, resolved, reason)
    if resolved == "vector":
        from repro.core.rpq.vectorized import vector_endpoint_pairs

        if tracer is None:
            return vector_endpoint_pairs(graph, nfa, start_nodes, end_nodes,
                                         use_label_index=use_label_index,
                                         ctx=ctx)
        with tracer.span("evaluate", ctx=ctx, strategy="vector-fixpoint",
                         engine="vector") as span:
            pairs = vector_endpoint_pairs(graph, nfa, start_nodes, end_nodes,
                                          use_label_index=use_label_index,
                                          ctx=ctx, tracer=tracer)
            span.attrs["answers"] = len(pairs)
            return pairs
    if tracer is None:
        return _product_pairs(graph, nfa, start_nodes, end_nodes,
                              use_label_index, ctx)
    with tracer.span("evaluate", ctx=ctx,
                     strategy="product-fixpoint", engine="scalar") as span:
        pairs = _product_pairs(graph, nfa, start_nodes, end_nodes,
                               use_label_index, ctx, tracer)
        span.attrs["answers"] = len(pairs)
        return pairs


def _chain_pairs(graph, steps, use_label_index: bool, ctx=None) -> set[tuple]:
    """The chain-frontier-join strategy body of :func:`endpoint_pairs`."""
    start_of_bit, frontier = _chain_frontiers(graph, steps,
                                              use_label_index, ctx)
    pairs: set[tuple] = set()
    decoded: dict[int, list] = {}
    for end_node, mask in frontier.items():
        starts = decoded.get(mask)
        if starts is None:
            starts = decoded[mask] = _decode_mask(mask, start_of_bit)
        pairs.update(zip(starts, repeat(end_node)))
    return pairs


def _product_pairs(graph, nfa: NFA, start_nodes, end_nodes,
                   use_label_index: bool, ctx=None,
                   tracer=None) -> set[tuple]:
    """The product-automaton strategy body of :func:`endpoint_pairs`."""
    if tracer is None:
        product = build_product(graph, nfa, start_nodes=start_nodes,
                                end_nodes=end_nodes,
                                use_label_index=use_label_index, ctx=ctx)
    else:
        with tracer.span("product", ctx=ctx) as span:
            product = build_product(graph, nfa, start_nodes=start_nodes,
                                    end_nodes=end_nodes,
                                    use_label_index=use_label_index, ctx=ctx)
            span.attrs["product_states"] = product.n_states()
    alive = product.alive_states()
    if not alive:
        return set()

    # Give each start node with an alive initial state one bit; the forward
    # pass then propagates start *sets* as machine integers, so a union is
    # a single big-int OR instead of a per-element set merge.
    start_of_bit: list = []
    n_states = product.n_states()
    masks = [0] * n_states
    worklist: list[int] = []
    for symbol, first_states in product.transitions[INITIAL].items():
        bit = 0
        for state in first_states:
            if state not in alive:
                continue
            if not bit:
                bit = 1 << len(start_of_bit)
                start_of_bit.append(symbol[1])
            if not masks[state]:
                worklist.append(state)
            masks[state] |= bit
    if not worklist:
        return set()

    # Deduplicated successors restricted to alive states, built on first
    # visit — a requeued state then costs O(distinct successors), not a
    # rescan of its per-symbol transition table.
    succ = product.successor_sets()
    adjacency: list[list[int] | None] = [None] * n_states
    queued = [False] * n_states
    for state in worklist:
        queued[state] = True
    while worklist:
        if ctx is not None:
            ctx.checkpoint("evaluate.fixpoint")
            ctx.note_frontier(len(worklist), "evaluate.fixpoint")
        state = worklist.pop()
        queued[state] = False
        mask = masks[state]
        targets = adjacency[state]
        if targets is None:
            targets = adjacency[state] = [t for t in succ[state] if t in alive]
        for target in targets:
            if mask | masks[target] != masks[target]:
                masks[target] |= mask
                if not queued[target]:
                    queued[target] = True
                    worklist.append(target)

    pairs = set()
    decoded = {}
    for state in product.accepts:
        mask = masks[state]
        if mask:
            starts = decoded.get(mask)
            if starts is None:
                starts = decoded[mask] = _decode_mask(mask, start_of_bit)
            pairs.update(zip(starts, repeat(product.state_node[state])))
    return pairs


def nodes_matching(graph, regex: Regex,
                   end_nodes: Iterable | None = None,
                   *, use_label_index: bool = True, ctx=None) -> set:
    """Node extraction: nodes a with a conforming path from a to some b.

    Needs no forward pass at all: a start node has a conforming path iff
    one of its initial product states is alive (can reach an accept state),
    which the single backward sweep answers directly.
    """
    nfa = compile_regex(regex)
    if end_nodes is None:
        steps = _chain_steps(nfa)
        if steps is not None:
            start_of_bit, frontier = _chain_frontiers(graph, steps,
                                                      use_label_index, ctx)
            surviving = 0
            for mask in frontier.values():
                surviving |= mask
            return set(_decode_mask(surviving, start_of_bit))
    product = build_product(graph, nfa, end_nodes=end_nodes,
                            use_label_index=use_label_index, ctx=ctx)
    alive = product.alive_states()
    return {symbol[1]
            for symbol, first_states in product.transitions[INITIAL].items()
            if not alive.isdisjoint(first_states)}


def shortest_conforming_length(graph, regex: Regex, start_node, end_node,
                               *, ctx=None) -> int | None:
    """min{|p| : p in [[regex]], start(p)=start_node, end(p)=end_node}, or None.

    BFS over the product automaton (word length - 1 = path length); this is
    the distance notion S_{a,b,r} of Section 4.2 builds on.
    """
    nfa = compile_regex(regex)
    product = build_product(graph, nfa, start_nodes=[start_node],
                            end_nodes=[end_node], ctx=ctx)
    frontier = set(product.transitions[INITIAL].get(("init", start_node), ()))
    seen = set(frontier)
    distance = 0
    while frontier:
        if ctx is not None:
            ctx.checkpoint("evaluate.bfs")
            ctx.note_frontier(len(frontier), "evaluate.bfs")
        if any(state in product.accepts for state in frontier):
            return distance
        next_frontier: set[int] = set()
        for state in frontier:
            for targets in product.transitions[state].values():
                next_frontier.update(targets)
        frontier = next_frontier - seen
        seen |= frontier
        distance += 1
    return None
