"""Approximate counting and near-uniform generation of conforming paths.

This is the reproduction of the FPRAS of Arenas, Croquevielle, Jayaram and
Riveros ([9, 10] in the paper): counting the words of an ambiguous NFA —
here, the graph/automaton product, whose accepted length-(k+1) words are
exactly the conforming length-k paths — is SpanL-complete, yet admits a
fully polynomial randomized approximation scheme.

The algorithm follows the ACJR template.  Write S(q, i) for the set of
words of length i that can reach state q from the initial state.  Layer by
layer it maintains, for every *alive* state q (forward-reachable and still
able to reach acceptance in the remaining steps):

- an estimate ``N(q, i)`` of |S(q, i)|, and
- a pool of (approximately) uniform samples of S(q, i), each stored with
  its reached state set so membership tests are O(1).

The recurrence S(q, i) = union over product transitions (p, a, q) of
S(p, i-1)·a is a union of overlapping sets, estimated by Karp-Luby
sampling: draw a part with probability proportional to its estimated size,
extend one of its pooled words by the transition symbol, and weight the
draw by 1/c where c is the number of parts containing the resulting word
(computable from the stored reach set).  Accepting each draw with
probability 1/c also yields the near-uniform pool for the next layer.  The
final answer |union over accepting q of S(q, L)| is one more Karp-Luby
union; rejection sampling over the same structure implements approximate
uniform generation (the Gen problem) without ever determinizing.

Deviation from the paper's analysis, documented in DESIGN.md: ACJR's
polynomial pool-size bounds guarantee (epsilon, delta) rigor but are
astronomically conservative; pool and trial sizes here default to practical
values derived from epsilon, and experiment C1 measures the achieved error
empirically.

Determinism: randomness is *never* drawn from the module-global
:mod:`random` state.  An explicit :class:`random.Random` (or integer seed)
can be passed; with ``rng=None`` the counter seeds itself from the library
default seed (:data:`repro.util.rng.DEFAULT_SEED`), so an unseeded run —
in particular a *degraded* answer produced by the execution governor — is
reproducible run over run.

Under an execution :class:`~repro.exec.Context` (``ctx``) sketch
construction checkpoints once per Karp-Luby sampling attempt (site
``fpras.sketch``), the final union estimate once per trial (site
``fpras.estimate``), and every pooled word is charged against the byte
budget — the FPRAS is polynomial, but on large products its constant factor
still deserves a leash.
"""

from __future__ import annotations

import math
import random
import sys
from collections.abc import Iterable

from repro.core.rpq.ast import Regex
from repro.core.rpq.nfa import compile_regex
from repro.core.rpq.paths import Path
from repro.core.rpq.product import INITIAL, ProductNFA, build_product
from repro.errors import EstimationError, InvalidLengthError
from repro.util.rng import make_default_rng, make_rng


class _PoolEntry:
    """A sampled word together with the product states it reaches."""

    __slots__ = ("word", "reach")

    def __init__(self, word: tuple, reach: frozenset[int]) -> None:
        self.word = word
        self.reach = reach


class ApproxPathCounter:
    """FPRAS for Count plus near-uniform generation for Gen.

    Building the instance is the preprocessing phase (sketch construction);
    :meth:`estimate` returns the approximate count and :meth:`sample` draws
    near-uniform conforming paths, both cheap after preprocessing.
    """

    def __init__(self, graph, regex: Regex, k: int, *,
                 epsilon: float = 0.2,
                 pool_size: int | None = None,
                 trials_per_state: int | None = None,
                 rng: int | random.Random | None = None,
                 start_nodes: Iterable | None = None,
                 end_nodes: Iterable | None = None,
                 ctx=None) -> None:
        if k < 0:
            raise InvalidLengthError("path length k", k)
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        self.k = k
        self.epsilon = epsilon
        self._length = k + 1
        self._rng = make_default_rng(rng)
        self._ctx = ctx
        self._pool_size = pool_size if pool_size is not None else max(
            64, min(512, math.ceil(4.0 / epsilon)))
        self._trials = trials_per_state if trials_per_state is not None else max(
            128, min(8192, math.ceil(16.0 / (epsilon * epsilon))))
        nfa = compile_regex(regex)
        self._product: ProductNFA = build_product(
            graph, nfa, start_nodes=start_nodes, end_nodes=end_nodes, ctx=ctx)
        self._estimates: list[dict[int, float]] = []
        self._pools: list[dict[int, list[_PoolEntry]]] = []
        self._build_sketches()

    # -- preprocessing -----------------------------------------------------

    def _alive_layers(self) -> list[set[int]]:
        """alive[i] = reachable in i steps AND accepting reachable in L-i steps."""
        product = self._product
        length = self._length
        back = product.back_layers(length)
        succ = product.successor_sets()
        forward: list[set[int]] = [{INITIAL}]
        for _ in range(length):
            frontier: set[int] = set()
            for state in forward[-1]:
                frontier.update(succ[state])
            forward.append(frontier)
        return [forward[i] & back[length - i] for i in range(length + 1)]

    def _build_sketches(self) -> None:
        product = self._product
        rng = self._rng
        ctx = self._ctx
        alive = self._alive_layers()
        reverse = product.reverse_transitions()
        estimates: list[dict[int, float]] = [{} for _ in range(self._length + 1)]
        pools: list[dict[int, list[_PoolEntry]]] = [{} for _ in range(self._length + 1)]
        if INITIAL in alive[0]:
            estimates[0][INITIAL] = 1.0
            pools[0][INITIAL] = [_PoolEntry((), frozenset([INITIAL]))]

        for i in range(1, self._length + 1):
            previous_estimates = estimates[i - 1]
            previous_pools = pools[i - 1]
            for q in alive[i]:
                parts = [(p, symbol) for p, symbol in reverse[q]
                         if previous_estimates.get(p, 0.0) > 0.0]
                if not parts:
                    continue
                weights = [previous_estimates[p] for p, _ in parts]
                total_weight = sum(weights)
                # Pre-index parts by symbol for the containment count c(w).
                by_symbol: dict[tuple, list[int]] = {}
                for p, symbol in parts:
                    by_symbol.setdefault(symbol, []).append(p)
                ratios_sum = 0.0
                ratios_n = 0
                pool: list[_PoolEntry] = []
                max_attempts = self._trials * 4
                attempts = 0
                while attempts < max_attempts and (
                        ratios_n < self._trials or len(pool) < self._pool_size):
                    attempts += 1
                    if ctx is not None:
                        ctx.checkpoint("fpras.sketch")
                    index = rng.choices(range(len(parts)), weights=weights)[0]
                    p, symbol = parts[index]
                    entry = rng.choice(previous_pools[p])
                    containing = sum(1 for source in by_symbol[symbol]
                                     if source in entry.reach)
                    if ratios_n < self._trials:
                        ratios_sum += 1.0 / containing
                        ratios_n += 1
                    if len(pool) < self._pool_size and (
                            containing == 1 or rng.random() < 1.0 / containing):
                        reach = product.delta(entry.reach, symbol)
                        pool.append(_PoolEntry(entry.word + (symbol,), reach))
                        if ctx is not None:
                            # A pooled word stores i symbols plus its reach
                            # set; charge the dominant parts.
                            ctx.charge_bytes(
                                sys.getsizeof(pool[-1].word)
                                + sys.getsizeof(reach), "fpras.sketch")
                if ratios_n == 0 or not pool:
                    continue
                estimates[i][q] = total_weight * (ratios_sum / ratios_n)
                pools[i][q] = pool
        self._estimates = estimates
        self._pools = pools

    # -- estimation ---------------------------------------------------------

    def estimate(self) -> float:
        """Approximate Count(G, r, k): |union over accepting q of S(q, k+1)|."""
        final_estimates = self._estimates[self._length]
        accept_parts = [q for q in self._product.accepts
                        if final_estimates.get(q, 0.0) > 0.0]
        if not accept_parts:
            return 0.0
        weights = [final_estimates[q] for q in accept_parts]
        total_weight = sum(weights)
        accept_set = set(accept_parts)
        rng = self._rng
        ctx = self._ctx
        ratios_sum = 0.0
        for _ in range(self._trials):
            if ctx is not None:
                ctx.checkpoint("fpras.estimate")
            index = rng.choices(range(len(accept_parts)), weights=weights)[0]
            entry = rng.choice(self._pools[self._length][accept_parts[index]])
            containing = len(accept_set & entry.reach)
            ratios_sum += 1.0 / containing
        return total_weight * (ratios_sum / self._trials)

    # -- generation ----------------------------------------------------------

    def sample(self, rng: int | random.Random | None = None,
               max_attempts: int = 10_000) -> Path:
        """Draw a conforming length-k path, approximately uniformly."""
        final_estimates = self._estimates[self._length]
        accept_parts = [q for q in self._product.accepts
                        if final_estimates.get(q, 0.0) > 0.0]
        if not accept_parts:
            raise EstimationError(
                "no conforming path of the requested length was found")
        weights = [final_estimates[q] for q in accept_parts]
        accept_set = set(accept_parts)
        rng = self._rng if rng is None else make_rng(rng)
        for _ in range(max_attempts):
            index = rng.choices(range(len(accept_parts)), weights=weights)[0]
            entry = rng.choice(self._pools[self._length][accept_parts[index]])
            containing = len(accept_set & entry.reach)
            if containing == 1 or rng.random() < 1.0 / containing:
                return self._product.word_to_path(entry.word)
        raise EstimationError("rejection sampling failed to produce a path")

    def sample_many(self, n: int,
                    rng: int | random.Random | None = None) -> list[Path]:
        rng = self._rng if rng is None else make_rng(rng)
        return [self.sample(rng) for _ in range(n)]
