"""The graph x automaton product: the engine behind Count, Gen and enumeration.

Given a graph and a compiled :class:`~repro.core.rpq.nfa.NFA`, the product
is an ordinary (epsilon-free) NFA whose *alphabet is concrete*:

- an initial symbol ``('init', n)`` fixes the start node of the path, and
- an edge symbol ``('edge', e, d)`` traverses edge ``e`` forwards (``d='+'``)
  or backwards (``d='-'``).

A word ``('init', n0) ('edge', e1, d1) ... ('edge', ek, dk)`` decodes to
exactly one path ``n0 e1 n1 ... ek nk``, and distinct words decode to
distinct paths (self-loop traversals are normalized to ``'+'``, since both
directions of a self-loop are the same path step).  Therefore:

    paths of length k conforming to r  <-->  accepted words of length k+1

which reduces the paper's Count/Gen problems on paths to counting and
sampling the words of an NFA — the #NFA setting of Arenas, Croquevielle,
Jayaram and Riveros.  The NFA is genuinely ambiguous (one path may have many
accepting runs), which is precisely why exact counting is SpanL-hard.

Node-test guards of the symbolic NFA become epsilon moves evaluated at a
concrete node and are closed away during construction, so the product has no
epsilon transitions.

**Label-selective construction.**  Each symbolic edge transition is asked
for its *label restriction* (:meth:`Test.label_candidates` /
:meth:`Test.feature_candidates` on the AST): when the graph maintains a
per-label adjacency index — :class:`~repro.models.labeled.LabeledGraph`
and its subclasses, or the feature index of
:class:`~repro.models.vector.VectorGraph` — only the matching incident
edges are fetched, instead of scanning (and testing) every edge at the
node.  For a test decided by its label restriction alone the per-edge
``matches_edge`` re-check is skipped as well.  Non-label tests fall back to
the full incidence scan, so the construction is semantics-preserving by
case analysis; ``use_label_index=False`` forces the full scan everywhere
(the equivalence tests exercise both).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.rpq.ast import TrueTest
from repro.core.rpq.nfa import NFA
from repro.core.rpq.paths import Path
from repro.errors import GraphError

#: Product state id of the virtual initial state.
INITIAL = 0

Symbol = tuple

#: Shared empty transition list for NFA states with no edge transitions.
_NO_TRANSITIONS: list = []


class ProductNFA:
    """Materialized product automaton with integer state ids.

    State 0 is the virtual initial state; every other state is a pair
    (nfa_state, graph_node).  ``transitions[s]`` maps symbols to frozensets
    of successor states.  All states reached by one word share the same
    graph node (a word determines a path), which downstream algorithms rely
    on.
    """

    def __init__(self, graph, nfa: NFA) -> None:
        self.graph = graph
        self.nfa = nfa
        self.state_keys: list[object] = ["<init>"]
        self.state_index: dict[object, int] = {"<init>": INITIAL}
        self.state_node: list[object] = [None]
        self.transitions: list[dict[Symbol, frozenset[int]]] = [{}]
        self.accepts: frozenset[int] = frozenset()
        self._successor_sets: list[frozenset[int]] | None = None
        self._predecessor_sets: list[set[int]] | None = None
        self._reverse: list[list[tuple[int, Symbol]]] | None = None
        self._alive: frozenset[int] | None = None

    # -- structure -----------------------------------------------------------

    def n_states(self) -> int:
        return len(self.state_keys)

    def delta(self, states: Iterable[int], symbol: Symbol) -> frozenset[int]:
        """Subset transition function."""
        result: set[int] = set()
        for state in states:
            result.update(self.transitions[state].get(symbol, ()))
        return frozenset(result)

    def symbols_from(self, states: Iterable[int]) -> set[Symbol]:
        symbols: set[Symbol] = set()
        for state in states:
            symbols.update(self.transitions[state])
        return symbols

    def successor_sets(self) -> list[frozenset[int]]:
        """Per-state successor sets ignoring symbols (for backward layers)."""
        if self._successor_sets is None:
            sets = []
            for table in self.transitions:
                merged: set[int] = set()
                for targets in table.values():
                    merged.update(targets)
                sets.append(frozenset(merged))
            self._successor_sets = sets
        return self._successor_sets

    def predecessor_sets(self) -> list[set[int]]:
        """Per-state predecessor sets ignoring symbols (for backward sweeps)."""
        if self._predecessor_sets is None:
            preds: list[set[int]] = [set() for _ in self.state_keys]
            for source, table in enumerate(self.transitions):
                for targets in table.values():
                    for target in targets:
                        preds[target].add(source)
            self._predecessor_sets = preds
        return self._predecessor_sets

    def reverse_transitions(self) -> list[list[tuple[int, Symbol]]]:
        """For each state q, the list of (p, symbol) with q in delta(p, symbol)."""
        if self._reverse is None:
            reverse: list[list[tuple[int, Symbol]]] = [[] for _ in self.state_keys]
            for source, table in enumerate(self.transitions):
                for symbol, targets in table.items():
                    for target in targets:
                        reverse[target].append((source, symbol))
            self._reverse = reverse
        return self._reverse

    def alive_states(self) -> frozenset[int]:
        """States from which some accept state is reachable (one backward
        sweep from the accept set; cached).

        Every product state is forward-reachable from the initial state by
        construction, so a state contributes to *some* answer iff it is
        alive.  Evaluation algorithms use this set to prune dead branches
        before doing per-length work.
        """
        if self._alive is None:
            preds = self.predecessor_sets()
            seen: set[int] = set(self.accepts)
            stack = list(self.accepts)
            while stack:
                state = stack.pop()
                for previous in preds[state]:
                    if previous not in seen:
                        seen.add(previous)
                        stack.append(previous)
            self._alive = frozenset(seen)
        return self._alive

    def back_layers(self, max_steps: int) -> list[frozenset[int]]:
        """``back[j]`` = states from which an accept state is reachable in
        exactly ``j`` transitions.  ``back[0]`` is the accept set.

        Computed by walking predecessor sets backwards from the accept
        states, so each layer costs O(edges into the previous layer) and
        dead states (not backward-reachable from an accept state) are never
        touched — rather than testing every product state per layer.
        """
        preds = self.predecessor_sets()
        layers = [self.accepts]
        for _ in range(max_steps):
            previous = layers[-1]
            current: set[int] = set()
            for state in previous:
                current.update(preds[state])
            layers.append(frozenset(current))
        return layers

    # -- words and paths -----------------------------------------------------

    def run(self, word: Iterable[Symbol]) -> frozenset[int]:
        """Reached state set after reading ``word`` from the initial state."""
        current = frozenset([INITIAL])
        for symbol in word:
            current = self.delta(current, symbol)
            if not current:
                return current
        return current

    def accepts_word(self, word: Iterable[Symbol]) -> bool:
        return bool(self.run(word) & self.accepts)

    def word_to_path(self, word: Iterable[Symbol]) -> Path:
        """Decode a word into the unique path it denotes."""
        word = list(word)
        if not word or word[0][0] != "init":
            raise GraphError("a product word starts with an ('init', node) symbol")
        nodes = [word[0][1]]
        edges = []
        for symbol in word[1:]:
            kind, edge, direction = symbol
            if kind != "edge":
                raise GraphError(f"unexpected symbol {symbol!r} inside a word")
            source, target = self.graph.endpoints(edge)
            edges.append(edge)
            nodes.append(target if direction == "+" else source)
        return Path(tuple(nodes), tuple(edges))


def symbol_sort_key(symbol: Symbol) -> tuple:
    """Deterministic ordering of symbols, for reproducible enumeration."""
    if symbol[0] == "init":
        return (0, str(symbol[1]), "")
    return (1, str(symbol[1]), symbol[2])


def _edge_fetchers(graph, use_label_index: bool):
    """Build the candidate-edge fetcher factory for one graph.

    Returns ``plan(test, inverse) -> (fetch, skip_test)`` where
    ``fetch(node)`` yields the candidate edges for the transition at
    ``node`` and ``skip_test`` says the per-edge ``matches_edge`` re-check
    is provably redundant for index-supplied candidates.
    """
    iter_out = getattr(graph, "iter_out_edges", None) or graph.out_edges
    iter_in = getattr(graph, "iter_in_edges", None) or graph.in_edges
    label_buckets = feature_buckets = None
    dimension = 0
    if use_label_index:
        # Bind the raw bucket dicts once: each fetch is then a single dict
        # probe, with no method call or node-membership check on the hot
        # path (every probed node is a product-state node, hence in the
        # graph).
        hook = getattr(graph, "label_adjacency_index", None)
        if hook is not None:
            label_buckets = hook()
        hook = getattr(graph, "feature_adjacency_index", None)
        if hook is not None:
            feature_buckets = hook()
            dimension = getattr(graph, "dimension", 0)

    _EMPTY: tuple = ()

    def plan(test, inverse: bool):
        if label_buckets is not None:
            labels = test.label_candidates()
            if labels is not None:
                if not labels:
                    return (lambda node: _EMPTY), True
                buckets = label_buckets[1 if inverse else 0]
                exact = test.label_candidates_exact()
                if len(labels) == 1:
                    label = next(iter(labels))

                    def fetch(node, _get=buckets.get, _label=label):
                        return _get((node, _label), _EMPTY)

                    return fetch, exact
                keys = tuple(sorted(labels, key=str))

                def fetch_multi(node, _get=buckets.get, _keys=keys):
                    for label in _keys:
                        yield from _get((node, label), _EMPTY)

                return fetch_multi, exact
        if feature_buckets is not None:
            feature = test.feature_candidates()
            # An out-of-range feature index falls through to the full scan
            # so the per-edge SchemaError surfaces exactly as without the
            # index.
            if feature is not None and 1 <= feature[0] <= dimension:
                index, values = feature
                if not values:
                    return (lambda node: _EMPTY), True
                buckets = feature_buckets[1 if inverse else 0]
                exact = test.feature_candidates_exact()
                if len(values) == 1:
                    value = next(iter(values))

                    def fetch_feature(node, _get=buckets.get,
                                      _index=index, _value=value):
                        return _get((node, _index, _value), _EMPTY)

                    return fetch_feature, exact
                pairs = tuple((index, v) for v in sorted(values, key=str))

                def fetch_features(node, _get=buckets.get, _pairs=pairs):
                    for index_, value in _pairs:
                        yield from _get((node, index_, value), _EMPTY)

                return fetch_features, exact
        return (iter_in if inverse else iter_out), isinstance(test, TrueTest)

    return plan


def build_product(graph, nfa: NFA,
                  start_nodes: Iterable | None = None,
                  end_nodes: Iterable | None = None,
                  *, use_label_index: bool = True, ctx=None) -> ProductNFA:
    """Materialize the product automaton reachable from the initial state.

    ``start_nodes`` restricts where paths may begin (default: every node);
    ``end_nodes`` restricts acceptance to paths ending there (default: every
    node).  Both restrictions are what Count/Gen between fixed endpoints —
    and the bc_r centrality — need.

    ``use_label_index=True`` (the default) drives label- and
    feature-restricted edge transitions through the graph's per-label
    adjacency index when one exists; ``False`` forces the full incidence
    scan (the reference path the equivalence tests compare against).

    ``ctx`` (an execution :class:`~repro.exec.Context`) makes construction
    cooperative: one checkpoint per expanded product state (site
    ``product.expand``) and per scanned start node (site ``product.init``),
    so adversarial products cannot be materialized past the budget.
    """
    product = ProductNFA(graph, nfa)
    end_filter = None if end_nodes is None else set(end_nodes)
    closure_cache: dict[tuple[int, object], frozenset[int]] = {}

    def closure(nfa_states: Iterable[int], node) -> frozenset[int]:
        """Guarded-epsilon closure of NFA states, evaluated at ``node``."""
        result: set[int] = set()
        stack = list(nfa_states)
        while stack:
            q = stack.pop()
            if q in result:
                continue
            result.add(q)
            for guard, q2 in nfa.epsilon_transitions.get(q, ()):
                if q2 not in result and (guard is None or guard.matches_node(graph, node)):
                    stack.append(q2)
        return frozenset(result)

    # An NFA state without epsilon moves closes to itself at every node, so
    # its closure is one shared frozenset rather than a per-node computation.
    epsilon_sources = nfa.epsilon_transitions.keys()
    trivial_closure: dict[int, frozenset[int]] = {}

    def cached_closure(q: int, node) -> frozenset[int]:
        if q not in epsilon_sources:
            found = trivial_closure.get(q)
            if found is None:
                found = trivial_closure[q] = frozenset((q,))
            return found
        key = (q, node)
        found = closure_cache.get(key)
        if found is None:
            found = closure((q,), node)
            closure_cache[key] = found
        return found

    def intern(q: int, node) -> int:
        key = (q, node)
        index = product.state_index.get(key)
        if index is None:
            index = len(product.state_keys)
            product.state_index[key] = index
            product.state_keys.append(key)
            product.state_node.append(node)
            product.transitions.append({})
        return index

    accept_states: set[int] = set()
    worklist: list[int] = []
    seen: set[int] = set()

    def product_states_for(nfa_states: frozenset[int], node) -> frozenset[int]:
        states = []
        for q in nfa_states:
            index = intern(q, node)
            states.append(index)
            if q == nfa.accept and (end_filter is None or node in end_filter):
                accept_states.add(index)
            if index not in seen:
                seen.add(index)
                worklist.append(index)
        return frozenset(states)

    # One fetch plan per symbolic transition, shared across product states
    # and indexed by the (dense, integer) NFA state.
    plan = _edge_fetchers(graph, use_label_index)
    prepared: list[list[tuple]] = [_NO_TRANSITIONS] * nfa.n_states
    for q, transitions in nfa.edge_transitions.items():
        prepared[q] = [(test, inverse, q2, *plan(test, inverse))
                       for test, inverse, q2 in transitions]

    endpoints = graph.endpoints

    # The product states reached through NFA state q2 at a graph node are a
    # pure function of (q2, node); many edges converge on the same pair, so
    # memoize the closure + interning once per pair.
    successor_cache: dict[tuple[int, object], frozenset[int]] = {}

    def expand_state(table: dict, node, transitions: list[tuple]) -> None:
        """Fill ``table`` with the edge symbols leaving ``(q, node)``."""
        for test, inverse, q2, fetch, skip_test in transitions:
            for edge in fetch(node):
                if not skip_test and not test.matches_edge(graph, edge):
                    continue
                source, target = endpoints(edge)
                next_node = source if inverse else target
                # A self-loop traversed backwards is the same path step as
                # forwards; normalize so one path is one word.
                direction = "+" if (not inverse or source == target) else "-"
                symbol = ("edge", edge, direction)
                successor_key = (q2, next_node)
                successors = successor_cache.get(successor_key)
                if successors is None:
                    closed = cached_closure(q2, next_node)
                    successors = product_states_for(closed, next_node)
                    successor_cache[successor_key] = successors
                existing = table.get(symbol)
                table[symbol] = (successors if existing is None
                                 else existing | successors)

    state_keys = product.state_keys
    tables = product.transitions

    # Initial symbols: one per allowed start node.
    init_table: dict[Symbol, frozenset[int]] = {}
    if start_nodes is None and nfa.start not in epsilon_sources:
        # Fast path for the default every-node start with an epsilon-free
        # start state.  A Thompson start state has no incoming transitions,
        # so each (start, node) pair is met exactly once; expand it first
        # and materialize the state only when it has an outgoing symbol (or
        # accepts).  With a selective label index, the dead majority of
        # start nodes then costs one index probe each — no interning, and
        # no weight in the downstream reachability sweeps.
        q0 = nfa.start
        start_transitions = prepared[q0]
        accepting = q0 == nfa.accept
        state_index = product.state_index
        state_node = product.state_node
        for node in graph.nodes():
            if ctx is not None:
                ctx.checkpoint("product.init")
            table: dict = {}
            expand_state(table, node, start_transitions)
            is_accept = accepting and (end_filter is None or node in end_filter)
            if not table and not is_accept:
                continue
            index = len(state_keys)
            state_index[(q0, node)] = index
            state_keys.append((q0, node))
            state_node.append(node)
            tables.append(table)
            seen.add(index)
            if is_accept:
                accept_states.add(index)
            init_table[("init", node)] = frozenset((index,))
    else:
        # Explicit start sets are deduplicated and sorted: callers (and the
        # parallel shard helpers) may pass them in any order, and the
        # product's state numbering — hence traces and frontier stats —
        # must not depend on that order.
        starts = (sorted(set(start_nodes), key=str)
                  if start_nodes is not None else list(graph.nodes()))
        for node in starts:
            if ctx is not None:
                ctx.checkpoint("product.init")
            if not graph.has_node(node):
                raise GraphError(f"start node {node!r} is not in the graph")
            reached = cached_closure(nfa.start, node)
            init_table[("init", node)] = product_states_for(reached, node)
    product.transitions[INITIAL] = init_table

    # Explore edge transitions from every reachable product state.
    while worklist:
        if ctx is not None:
            ctx.checkpoint("product.expand")
            ctx.note_frontier(len(worklist), "product.expand")
        index = worklist.pop()
        q, node = state_keys[index]
        expand_state(tables[index], node, prepared[q])
    product.accepts = frozenset(accept_states)
    return product
