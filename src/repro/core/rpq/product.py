"""The graph x automaton product: the engine behind Count, Gen and enumeration.

Given a graph and a compiled :class:`~repro.core.rpq.nfa.NFA`, the product
is an ordinary (epsilon-free) NFA whose *alphabet is concrete*:

- an initial symbol ``('init', n)`` fixes the start node of the path, and
- an edge symbol ``('edge', e, d)`` traverses edge ``e`` forwards (``d='+'``)
  or backwards (``d='-'``).

A word ``('init', n0) ('edge', e1, d1) ... ('edge', ek, dk)`` decodes to
exactly one path ``n0 e1 n1 ... ek nk``, and distinct words decode to
distinct paths (self-loop traversals are normalized to ``'+'``, since both
directions of a self-loop are the same path step).  Therefore:

    paths of length k conforming to r  <-->  accepted words of length k+1

which reduces the paper's Count/Gen problems on paths to counting and
sampling the words of an NFA — the #NFA setting of Arenas, Croquevielle,
Jayaram and Riveros.  The NFA is genuinely ambiguous (one path may have many
accepting runs), which is precisely why exact counting is SpanL-hard.

Node-test guards of the symbolic NFA become epsilon moves evaluated at a
concrete node and are closed away during construction, so the product has no
epsilon transitions.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.rpq.nfa import NFA
from repro.core.rpq.paths import Path
from repro.errors import GraphError

#: Product state id of the virtual initial state.
INITIAL = 0

Symbol = tuple


class ProductNFA:
    """Materialized product automaton with integer state ids.

    State 0 is the virtual initial state; every other state is a pair
    (nfa_state, graph_node).  ``transitions[s]`` maps symbols to frozensets
    of successor states.  All states reached by one word share the same
    graph node (a word determines a path), which downstream algorithms rely
    on.
    """

    def __init__(self, graph, nfa: NFA) -> None:
        self.graph = graph
        self.nfa = nfa
        self.state_keys: list[object] = ["<init>"]
        self.state_index: dict[object, int] = {"<init>": INITIAL}
        self.state_node: list[object] = [None]
        self.transitions: list[dict[Symbol, frozenset[int]]] = [{}]
        self.accepts: frozenset[int] = frozenset()
        self._successor_sets: list[frozenset[int]] | None = None
        self._reverse: list[list[tuple[int, Symbol]]] | None = None

    # -- structure -----------------------------------------------------------

    def n_states(self) -> int:
        return len(self.state_keys)

    def delta(self, states: Iterable[int], symbol: Symbol) -> frozenset[int]:
        """Subset transition function."""
        result: set[int] = set()
        for state in states:
            result.update(self.transitions[state].get(symbol, ()))
        return frozenset(result)

    def symbols_from(self, states: Iterable[int]) -> set[Symbol]:
        symbols: set[Symbol] = set()
        for state in states:
            symbols.update(self.transitions[state])
        return symbols

    def successor_sets(self) -> list[frozenset[int]]:
        """Per-state successor sets ignoring symbols (for backward layers)."""
        if self._successor_sets is None:
            sets = []
            for table in self.transitions:
                merged: set[int] = set()
                for targets in table.values():
                    merged.update(targets)
                sets.append(frozenset(merged))
            self._successor_sets = sets
        return self._successor_sets

    def reverse_transitions(self) -> list[list[tuple[int, Symbol]]]:
        """For each state q, the list of (p, symbol) with q in delta(p, symbol)."""
        if self._reverse is None:
            reverse: list[list[tuple[int, Symbol]]] = [[] for _ in self.state_keys]
            for source, table in enumerate(self.transitions):
                for symbol, targets in table.items():
                    for target in targets:
                        reverse[target].append((source, symbol))
            self._reverse = reverse
        return self._reverse

    def back_layers(self, max_steps: int) -> list[frozenset[int]]:
        """``back[j]`` = states from which an accept state is reachable in
        exactly ``j`` transitions.  ``back[0]`` is the accept set."""
        succ = self.successor_sets()
        layers = [self.accepts]
        for _ in range(max_steps):
            previous = layers[-1]
            layers.append(frozenset(
                s for s in range(self.n_states()) if succ[s] & previous))
        return layers

    # -- words and paths -----------------------------------------------------

    def run(self, word: Iterable[Symbol]) -> frozenset[int]:
        """Reached state set after reading ``word`` from the initial state."""
        current = frozenset([INITIAL])
        for symbol in word:
            current = self.delta(current, symbol)
            if not current:
                return current
        return current

    def accepts_word(self, word: Iterable[Symbol]) -> bool:
        return bool(self.run(word) & self.accepts)

    def word_to_path(self, word: Iterable[Symbol]) -> Path:
        """Decode a word into the unique path it denotes."""
        word = list(word)
        if not word or word[0][0] != "init":
            raise GraphError("a product word starts with an ('init', node) symbol")
        nodes = [word[0][1]]
        edges = []
        for symbol in word[1:]:
            kind, edge, direction = symbol
            if kind != "edge":
                raise GraphError(f"unexpected symbol {symbol!r} inside a word")
            source, target = self.graph.endpoints(edge)
            edges.append(edge)
            nodes.append(target if direction == "+" else source)
        return Path(tuple(nodes), tuple(edges))


def symbol_sort_key(symbol: Symbol) -> tuple:
    """Deterministic ordering of symbols, for reproducible enumeration."""
    if symbol[0] == "init":
        return (0, str(symbol[1]), "")
    return (1, str(symbol[1]), symbol[2])


def build_product(graph, nfa: NFA,
                  start_nodes: Iterable | None = None,
                  end_nodes: Iterable | None = None) -> ProductNFA:
    """Materialize the product automaton reachable from the initial state.

    ``start_nodes`` restricts where paths may begin (default: every node);
    ``end_nodes`` restricts acceptance to paths ending there (default: every
    node).  Both restrictions are what Count/Gen between fixed endpoints —
    and the bc_r centrality — need.
    """
    product = ProductNFA(graph, nfa)
    end_filter = None if end_nodes is None else set(end_nodes)
    closure_cache: dict[tuple[int, object], frozenset[int]] = {}

    def closure(nfa_states: Iterable[int], node) -> frozenset[int]:
        """Guarded-epsilon closure of NFA states, evaluated at ``node``."""
        result: set[int] = set()
        stack = list(nfa_states)
        while stack:
            q = stack.pop()
            if q in result:
                continue
            result.add(q)
            for guard, q2 in nfa.epsilon_transitions.get(q, ()):
                if q2 not in result and (guard is None or guard.matches_node(graph, node)):
                    stack.append(q2)
        return frozenset(result)

    def cached_closure(q: int, node) -> frozenset[int]:
        key = (q, node)
        found = closure_cache.get(key)
        if found is None:
            found = closure((q,), node)
            closure_cache[key] = found
        return found

    def intern(q: int, node) -> int:
        key = (q, node)
        index = product.state_index.get(key)
        if index is None:
            index = len(product.state_keys)
            product.state_index[key] = index
            product.state_keys.append(key)
            product.state_node.append(node)
            product.transitions.append({})
        return index

    accept_states: set[int] = set()
    worklist: list[int] = []
    seen: set[int] = set()

    def product_states_for(nfa_states: frozenset[int], node) -> frozenset[int]:
        states = []
        for q in nfa_states:
            index = intern(q, node)
            states.append(index)
            if q == nfa.accept and (end_filter is None or node in end_filter):
                accept_states.add(index)
            if index not in seen:
                seen.add(index)
                worklist.append(index)
        return frozenset(states)

    # Initial symbols: one per allowed start node.
    starts = list(start_nodes) if start_nodes is not None else list(graph.nodes())
    init_table: dict[Symbol, frozenset[int]] = {}
    for node in starts:
        if not graph.has_node(node):
            raise GraphError(f"start node {node!r} is not in the graph")
        reached = closure((nfa.start,), node)
        init_table[("init", node)] = product_states_for(reached, node)
    product.transitions[INITIAL] = init_table

    # Explore edge transitions from every reachable product state.
    while worklist:
        index = worklist.pop()
        key = product.state_keys[index]
        q, node = key
        table = product.transitions[index]
        for test, inverse, q2 in nfa.edge_transitions.get(q, ()):
            if inverse:
                candidate_edges = graph.in_edges(node)
            else:
                candidate_edges = graph.out_edges(node)
            for edge in candidate_edges:
                if not test.matches_edge(graph, edge):
                    continue
                source, target = graph.endpoints(edge)
                next_node = source if inverse else target
                # A self-loop traversed backwards is the same path step as
                # forwards; normalize so one path is one word.
                direction = "+" if (not inverse or source == target) else "-"
                symbol = ("edge", edge, direction)
                closed = cached_closure(q2, next_node)
                successors = product_states_for(closed, next_node)
                existing = table.get(symbol)
                table[symbol] = successors if existing is None else existing | successors

    product.accepts = frozenset(accept_states)
    return product
