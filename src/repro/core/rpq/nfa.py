"""Compilation of regexes into nondeterministic finite automata.

The automaton alphabet is *symbolic*: edge transitions carry an edge test
plus a direction flag, and epsilon transitions may be guarded by a node
test (the compilation of ``?test``).  Instantiating the symbols against a
concrete graph happens in :mod:`repro.core.rpq.product`.

The construction is Thompson's, which keeps the automaton linear in the
size of the regex and makes the correctness argument per-operator.

Compilation results are memoized in a bounded LRU cache keyed on the regex
AST (the AST nodes are frozen dataclasses, hence hashable): a workload that
issues the same query shape repeatedly — the normal case for a query engine —
pays the Thompson construction once.  Cached automata are shared, so
callers must treat the returned :class:`NFA` as immutable; every caller in
this package only reads it.  Hit/miss/eviction counters are exposed through
:func:`compile_cache_info` so the cache is observable, and
:func:`clear_compile_cache` resets it (tests and long-lived processes).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.rpq.ast import Concat, EdgeAtom, NodeTest, Regex, Star, Test, Union
from repro.errors import LogicError


@dataclass
class NFA:
    """A Thompson-style NFA with symbolic transitions.

    - ``edge_transitions[q]`` is a list of ``(test, inverse, q')``: consume
      one graph edge conforming to ``test`` in the given direction.
    - ``epsilon_transitions[q]`` is a list of ``(guard, q')`` where ``guard``
      is a node :class:`Test` or ``None`` for an unconditional epsilon move.
    """

    start: int = 0
    accept: int = 1
    n_states: int = 2
    edge_transitions: dict[int, list[tuple[Test, bool, int]]] = field(default_factory=dict)
    epsilon_transitions: dict[int, list[tuple[Test | None, int]]] = field(default_factory=dict)

    def _new_state(self) -> int:
        state = self.n_states
        self.n_states += 1
        return state

    def _add_edge(self, source: int, test: Test, inverse: bool, target: int) -> None:
        self.edge_transitions.setdefault(source, []).append((test, inverse, target))

    def _add_epsilon(self, source: int, guard: Test | None, target: int) -> None:
        self.epsilon_transitions.setdefault(source, []).append((guard, target))

    def edge_transition_count(self) -> int:
        return sum(len(v) for v in self.edge_transitions.values())


class _CompileCache:
    """A bounded LRU of compiled automata with observable counters."""

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_entries")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[Regex, NFA] = OrderedDict()

    def get(self, regex: Regex) -> NFA | None:
        found = self._entries.get(regex)
        if found is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(regex)
        return found

    def put(self, regex: Regex, nfa: NFA) -> None:
        self._entries[regex] = nfa
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)


_DEFAULT_CACHE_SIZE = 256
_cache = _CompileCache(_DEFAULT_CACHE_SIZE)


def compile_regex(regex: Regex, *, cache: bool = True) -> NFA:
    """Compile a regex into an NFA with a single start and accept state.

    Results are memoized (bounded LRU keyed on the regex AST); pass
    ``cache=False`` to force a private, freshly built automaton.  Cached
    automata are shared and must not be mutated.
    """
    if cache:
        found = _cache.get(regex)
        if found is not None:
            return found
    nfa = NFA()
    _build(nfa, regex, nfa.start, nfa.accept)
    if cache:
        _cache.put(regex, nfa)
    return nfa


def compile_cache_info() -> dict[str, int]:
    """Observable state of the regex-compilation cache."""
    return {
        "hits": _cache.hits,
        "misses": _cache.misses,
        "evictions": _cache.evictions,
        "currsize": len(_cache),
        "maxsize": _cache.maxsize,
    }


def clear_compile_cache(maxsize: int | None = None) -> None:
    """Drop every cached automaton and reset counters.

    ``maxsize`` optionally resizes the cache (default: keep the current
    bound).
    """
    global _cache
    _cache = _CompileCache(_cache.maxsize if maxsize is None else maxsize)


def _build(nfa: NFA, regex: Regex, start: int, accept: int) -> None:
    """Wire the fragment for ``regex`` between existing states start/accept."""
    if isinstance(regex, NodeTest):
        nfa._add_epsilon(start, regex.test, accept)
        return
    if isinstance(regex, EdgeAtom):
        nfa._add_edge(start, regex.test, regex.inverse, accept)
        return
    if isinstance(regex, Union):
        _build(nfa, regex.left, start, accept)
        _build(nfa, regex.right, start, accept)
        return
    if isinstance(regex, Concat):
        middle = nfa._new_state()
        _build(nfa, regex.left, start, middle)
        _build(nfa, regex.right, middle, accept)
        return
    if isinstance(regex, Star):
        # Fresh inner states avoid the classic Thompson pitfall of a star
        # leaking loops through shared start/accept states.
        inner_start = nfa._new_state()
        inner_accept = nfa._new_state()
        nfa._add_epsilon(start, None, inner_start)
        nfa._add_epsilon(start, None, accept)
        nfa._add_epsilon(inner_accept, None, inner_start)
        nfa._add_epsilon(inner_accept, None, accept)
        _build(nfa, regex.inner, inner_start, inner_accept)
        return
    raise LogicError(f"unknown regex node: {type(regex).__name__}")
