"""Engine selection: scalar loops or the numpy kernel, and why.

Every RPQ entry point that can run vectorized takes an
``engine="auto"|"scalar"|"vector"`` keyword resolved here:

- ``"scalar"`` — the shipped per-node Python loops, always available.
  This path is byte-for-byte the pre-vectorization code and serves as the
  differential-testing oracle for the kernel.
- ``"vector"`` — force the numpy kernel; raises
  :class:`~repro.errors.EngineUnavailableError` if numpy is missing.
- ``"auto"`` — the default: pick ``vector`` when numpy is importable and
  the graph is large enough that block operations amortize their setup
  (``node_count >= AUTO_MIN_NODES``), else ``scalar``.  Tiny graphs stay
  scalar because building index arrays costs more than the whole scalar
  fixpoint there.

:func:`resolve_engine` returns ``(engine, reason)`` so callers can surface
the decision — EXPLAIN's ``engine`` section, the tracer's ``evaluate``
span and ``--stats`` notes all carry it.
"""

from __future__ import annotations

from repro.errors import EngineUnavailableError

#: Recognised ``engine=`` values, in CLI order.
ENGINES = ("auto", "scalar", "vector")

#: ``auto`` picks the vector engine only at or above this node count:
#: below it, array construction dominates and the scalar loops win.
AUTO_MIN_NODES = 64

#: Nodes up to this bound use the dense layout (per-transition boolean
#: adjacency matrices contracted with one float32 matmul per step);
#: larger graphs switch to the bitset layout (per-node uint64 start-set
#: words OR-reduced over CSR-style transition segments) whose memory is
#: O(edges + nodes * starts/64) instead of O(nodes^2).
DENSE_MAX_NODES = 1024

#: ``auto`` also demotes to scalar when the query's label footprint
#: touches fewer edges than this many per node: sparse frontiers keep the
#: label-index walk ahead of whole-node-set block operations, which pay
#: for every node per step regardless of how few are reachable.
AUTO_MIN_DEGREE = 4

_NUMPY = None
_NUMPY_PROBED = False


def numpy_or_none():
    """The numpy module, or ``None`` when it cannot be imported."""
    global _NUMPY, _NUMPY_PROBED
    if not _NUMPY_PROBED:
        try:
            import numpy
        except ImportError:  # pragma: no cover - exercised via fake probe
            numpy = None
        _NUMPY = numpy
        _NUMPY_PROBED = True
    return _NUMPY


def resolve_engine(engine: str, graph=None, *,
                   n_nodes: int | None = None,
                   footprint_edges: int | None = None) -> tuple[str, str]:
    """Resolve an ``engine=`` keyword to ``("scalar"|"vector", reason)``.

    ``n_nodes`` overrides the graph-derived node count (callers that
    already know it avoid a second ``node_count`` call); with neither a
    graph nor a count, ``auto`` resolves scalar.  ``footprint_edges`` is
    the density signal: the number of graph edges the query's label
    footprint can touch (``None`` = unknown or unrestricted).  ``auto``
    demotes to scalar when that footprint averages fewer than
    :data:`AUTO_MIN_DEGREE` edges per node — the frontier stays sparse,
    and per-node block operations cannot amortize.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; "
                         f"expected one of {ENGINES}")
    if engine == "scalar":
        return "scalar", "forced by engine='scalar'"
    numpy = numpy_or_none()
    if engine == "vector":
        if numpy is None:
            raise EngineUnavailableError(
                "engine='vector' requires numpy, which is not importable "
                "in this environment; use engine='auto' (which falls back "
                "to the scalar engine) or engine='scalar'")
        return "vector", "forced by engine='vector'"
    # auto
    if numpy is None:
        return "scalar", "auto: numpy unavailable"
    if n_nodes is None:
        if graph is None:
            return "scalar", "auto: no graph to size"
        n_nodes = graph.node_count()
    if n_nodes < AUTO_MIN_NODES:
        return "scalar", (f"auto: {n_nodes} nodes < {AUTO_MIN_NODES} "
                          "(scalar wins below the array-setup break-even)")
    if (footprint_edges is not None
            and footprint_edges < n_nodes * AUTO_MIN_DEGREE):
        return "scalar", (f"auto: label footprint spans {footprint_edges} "
                          f"edges < {AUTO_MIN_DEGREE}/node over {n_nodes} "
                          "nodes (sparse frontiers favor the label index)")
    return "vector", (f"auto: {n_nodes} nodes >= {AUTO_MIN_NODES} "
                      "(block operations amortize)")


def pick_layout(n_nodes: int, layout: str = "auto") -> str:
    """The kernel layout for a graph of ``n_nodes`` nodes.

    ``"dense"`` / ``"bitset"`` force a layout (the differential tests run
    both); ``"auto"`` switches on :data:`DENSE_MAX_NODES`.
    """
    if layout not in ("auto", "dense", "bitset"):
        raise ValueError(f"unknown layout {layout!r}; "
                         "expected 'auto', 'dense' or 'bitset'")
    if layout != "auto":
        return layout
    return "dense" if n_nodes <= DENSE_MAX_NODES else "bitset"
