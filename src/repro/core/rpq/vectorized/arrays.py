"""Array-ified graph snapshots for the vector kernel, cached per version.

:class:`GraphArrays` freezes one graph into the index form every vector
evaluation needs: a node order (id ↔ dense index remap — node ids may be
arbitrary hashable objects), int32 endpoint arrays over the edge list, and
per-label edge-position arrays mirroring the scalar label index.

Builds are cached per *(graph identity, version)* in a small LRU keyed by
``id(graph)`` and guarded by a weakref (the
:class:`~repro.cache.QueryCache` corpse-check idiom: an entry whose graph
died can never be served to an ``id()``-reusing successor).  Invalidation
rides the PR-5 :class:`~repro.cache.versioning.MutationLog`: an entry is
reused iff no record since its build touched the node/edge *structure* or
an edge label — exactly what the arrays encode.  Property, feature and
node-label writes leave the entry valid (guards and non-label tests are
evaluated live against the graph), and the entry is re-stamped to the
current version so the next check is O(new records) again.  A truncated
log answers conservatively: rebuild.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict

from repro.core.rpq.ast import TrueTest
from repro.core.rpq.vectorized.engine import numpy_or_none

#: Default number of graphs whose arrays are retained.
_DEFAULT_CACHE_SIZE = 8


class GraphArrays:
    """One graph flattened to numpy index arrays (read-only snapshot)."""

    __slots__ = ("nodes", "index", "n", "m", "edges", "src", "dst",
                 "label_positions", "version")

    def __init__(self, graph) -> None:
        np = numpy_or_none()
        builder = getattr(graph, "csr_arrays", None)
        if builder is not None:
            # Disk-backed graphs (``MmapCsrBackend``) already store the
            # CSR form this class builds: int32 endpoint arrays mapped
            # off the segment file and per-label position ranges.  Take
            # them wholesale instead of re-deriving edge by edge.
            self.nodes, self.edges, self.src, self.dst, \
                self.label_positions = builder()
            self.index = {node: i for i, node in enumerate(self.nodes)}
            self.n = len(self.nodes)
            self.m = len(self.edges)
            self.version = getattr(graph, "version", None)
            return
        self.nodes = list(graph.nodes())
        self.index = {node: i for i, node in enumerate(self.nodes)}
        self.n = len(self.nodes)
        self.edges = list(graph.edges())
        self.m = len(self.edges)
        src = np.empty(self.m, dtype=np.int32)
        dst = np.empty(self.m, dtype=np.int32)
        index = self.index
        endpoints = graph.endpoints
        for position, edge in enumerate(self.edges):
            source, target = endpoints(edge)
            src[position] = index[source]
            dst[position] = index[target]
        self.src = src
        self.dst = dst
        # Per-label edge positions, mirroring the scalar label index; None
        # when the model has no edge labels (every mask then re-checks).
        label_of = getattr(graph, "edge_label", None)
        positions = None
        if label_of is not None:
            buckets: dict = {}
            for position, edge in enumerate(self.edges):
                buckets.setdefault(label_of(edge), []).append(position)
            positions = {label: np.asarray(bucket, dtype=np.int32)
                         for label, bucket in buckets.items()}
        self.label_positions = positions
        self.version = getattr(graph, "version", None)

    def edge_mask(self, graph, test, use_label_index: bool = True):
        """Boolean mask over edge positions: which edges pass ``test``.

        Planning mirrors the scalar fetchers (`product._edge_fetchers`):
        a label-restricted test reads the label-position arrays, with a
        per-candidate ``matches_edge`` re-check unless the restriction is
        exact; everything else scans and tests every edge, so the error
        surface of exotic tests is identical to the scalar engine's.
        """
        np = numpy_or_none()
        if use_label_index and self.label_positions is not None:
            labels = test.label_candidates()
            if labels is not None:
                mask = np.zeros(self.m, dtype=bool)
                empty = np.empty(0, dtype=np.int32)
                for label in sorted(labels, key=str):
                    mask[self.label_positions.get(label, empty)] = True
                if not test.label_candidates_exact():
                    edges = self.edges
                    for position in np.flatnonzero(mask):
                        if not test.matches_edge(graph, edges[position]):
                            mask[position] = False
                return mask
        if isinstance(test, TrueTest):
            return np.ones(self.m, dtype=bool)
        mask = np.empty(self.m, dtype=bool)
        for position, edge in enumerate(self.edges):
            mask[position] = test.matches_edge(graph, edge)
        return mask

    def node_mask(self, graph, guard):
        """Boolean mask over node indices: which nodes satisfy ``guard``."""
        np = numpy_or_none()
        mask = np.empty(self.n, dtype=bool)
        for i, node in enumerate(self.nodes):
            mask[i] = guard.matches_node(graph, node)
        return mask


class _ArraysCache:
    """Bounded LRU of :class:`GraphArrays`, invalidated by mutation logs."""

    def __init__(self, maxsize: int = _DEFAULT_CACHE_SIZE) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rebuilds = 0
        self._entries: OrderedDict = OrderedDict()

    def lookup(self, graph) -> GraphArrays:
        key = id(graph)
        entry = self._entries.get(key)
        if entry is not None:
            ref, arrays = entry
            if ref() is not graph:
                # The graph this entry was built for died; ``id()`` reuse
                # must not serve its arrays to a different graph.
                del self._entries[key]
            elif self._still_valid(graph, arrays):
                self._entries.move_to_end(key)
                self.hits += 1
                return arrays
            else:
                del self._entries[key]
                self.rebuilds += 1
        self.misses += 1
        arrays = GraphArrays(graph)
        try:
            ref = weakref.ref(graph)
        except TypeError:
            return arrays  # not weakref-able: build fresh, never cache
        self._entries[key] = (ref, arrays)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        return arrays

    @staticmethod
    def _still_valid(graph, arrays: GraphArrays) -> bool:
        version = getattr(graph, "version", None)
        if version is None or arrays.version is None:
            return False
        if version == arrays.version:
            return True
        log = getattr(graph, "mutation_log", None)
        if log is None:
            return False
        records = log.records_since(arrays.version)
        if records is None:  # history truncated: assume the worst
            return False
        for record in records:
            if (record.structural_edges or record.structural_nodes
                    or record.edge_labels):
                return False
        # Only property/feature/node-label writes landed; the arrays do
        # not encode those, so re-stamp and keep the entry.
        arrays.version = version
        return True

    def info(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "rebuilds": self.rebuilds,
                "currsize": len(self._entries), "maxsize": self.maxsize}


_CACHE = _ArraysCache()


def graph_arrays(graph) -> GraphArrays:
    """The (possibly cached) :class:`GraphArrays` snapshot of ``graph``."""
    return _CACHE.lookup(graph)


def adjacency_cache_info() -> dict:
    """Counters of the process-wide arrays cache (mirrors
    :func:`~repro.core.rpq.nfa.compile_cache_info`)."""
    return _CACHE.info()


def clear_adjacency_cache(maxsize: int | None = None) -> None:
    """Drop every cached snapshot; optionally resize the cache."""
    global _CACHE
    _CACHE = _ArraysCache(_CACHE.maxsize if maxsize is None else maxsize)
