"""Vectorized RPQ evaluation: numpy kernels behind the ``engine=`` selector.

Public surface:

- :func:`resolve_engine` / :data:`ENGINES` — the ``auto|scalar|vector``
  selector and its size heuristic;
- :func:`vector_endpoint_pairs` — the bitset/CSR fixpoint kernel
  (drop-in equivalent of the scalar product fixpoint);
- :func:`back_layers_vectorized` — array-swept backward layers feeding
  the exact-count subset DP;
- :func:`graph_arrays` + :func:`adjacency_cache_info` /
  :func:`clear_adjacency_cache` — the per-(graph, version) adjacency
  snapshot cache, invalidated through the mutation log.

The scalar engine never imports this package's numpy-touching modules at
query time unless an evaluation actually resolves to ``vector``, so
environments without numpy keep working (``engine="auto"`` falls back,
``engine="vector"`` raises
:class:`~repro.errors.EngineUnavailableError`).
"""

from repro.core.rpq.vectorized.arrays import (
    GraphArrays,
    adjacency_cache_info,
    clear_adjacency_cache,
    graph_arrays,
)
from repro.core.rpq.vectorized.engine import (
    AUTO_MIN_NODES,
    DENSE_MAX_NODES,
    ENGINES,
    numpy_or_none,
    pick_layout,
    resolve_engine,
)
from repro.core.rpq.vectorized.kernel import (
    back_layers_vectorized,
    vector_endpoint_pairs,
)

__all__ = [
    "AUTO_MIN_NODES",
    "DENSE_MAX_NODES",
    "ENGINES",
    "GraphArrays",
    "adjacency_cache_info",
    "back_layers_vectorized",
    "clear_adjacency_cache",
    "graph_arrays",
    "numpy_or_none",
    "pick_layout",
    "resolve_engine",
    "vector_endpoint_pairs",
]
