"""The vectorized RPQ fixpoint: frontier expansion as array blocks.

Where the scalar engine materializes the graph × NFA product and pushes
start-set bitmasks state by state, this kernel never builds the product at
all.  It tracks, per *NFA* state ``q``, the reachability relation

    R[q] ⊆ Starts × Nodes — "start a reaches node v in NFA state q"

and runs the monotone fixpoint directly over the NFA's transitions:

- an edge transition ``(test, inverse, q2)`` maps ``R[q]`` through the
  (oriented) adjacency of the edges passing ``test`` — one matrix product
  (dense layout) or one segmented OR-reduction (bitset layout) per
  application, instead of one Python iteration per product edge;
- a guarded epsilon ``(guard, q2)`` copies the rows/columns of the nodes
  satisfying the guard.

Two layouts back the relation (see ``engine.pick_layout``):

- **dense** — ``R[q]`` is ``bool[S, n]``; an edge step casts to float32
  and contracts with the transition's ``float32[n, n]`` adjacency matrix
  via BLAS, then thresholds back to bool.  Counts cannot overflow float32
  (they are bounded by ``n <= DENSE_MAX_NODES``).
- **bitset** — ``R[q]`` is ``uint64[n, W]`` (``W = ceil(S/64)`` words of
  start-set bits per node); an edge step gathers source rows in
  destination-sorted CSR order and folds each destination's segment with
  ``np.bitwise_or.reduceat``.  Memory is O(n·S/64) per live NFA state.

The fixpoint is monotone (rows only gain bits), so any processing order
terminates with the same relation; answers are read off ``R[accept]``
restricted to the end filter.  Semantics replicated from the scalar
engine: an explicit start node missing from the graph raises
:class:`~repro.errors.GraphError`, missing end nodes are silently
filtered, zero-length paths appear via the epsilon closure of the seeds,
and parallel same-label edges collapse (reachability, not multiplicity).

Governor checkpoints are block-granular: one :meth:`Context.checkpoint`
call per build scan and per fixpoint block, charging the block's element
count in bulk (``steps=``), so step budgets keep binding at the same
order of magnitude as the scalar per-element charges.
"""

from __future__ import annotations

from collections import deque

from repro.core.rpq.vectorized.arrays import graph_arrays
from repro.core.rpq.vectorized.engine import numpy_or_none, pick_layout
from repro.errors import GraphError

#: Checkpoint sites of the vector engine (fault injection targets these
#: like any other dotted site).
BUILD_SITE = "vector.build"
FIXPOINT_SITE = "vector.fixpoint"
BACK_SITE = "vector.back"


def _resolve_starts(arrays, start_nodes):
    """The start list (scalar-identical order and error surface)."""
    if start_nodes is None:
        return arrays.nodes, None
    starts = sorted(set(start_nodes), key=str)
    for node in starts:
        if node not in arrays.index:
            raise GraphError(f"start node {node!r} is not in the graph")
    return starts, [arrays.index[node] for node in starts]


class _EdgeOp:
    """One NFA edge transition lowered to array form."""

    __slots__ = ("q2", "matrix", "src_sorted", "seg_starts", "unique_dst")

    def __init__(self, q2: int) -> None:
        self.q2 = q2
        self.matrix = None
        self.src_sorted = None
        self.seg_starts = None
        self.unique_dst = None


class _EpsOp:
    """One guarded epsilon transition lowered to a node-index selection."""

    __slots__ = ("q2", "rows")

    def __init__(self, q2: int, rows) -> None:
        self.q2 = q2
        self.rows = rows  # None = unguarded (every node)


def _build_ops(graph, nfa, arrays, layout: str, use_label_index: bool,
               ctx=None):
    """Lower every NFA transition to its array op; returns ops-by-state."""
    np = numpy_or_none()
    n = arrays.n
    ops: list[list] = [[] for _ in range(nfa.n_states)]
    for q, transitions in nfa.edge_transitions.items():
        for test, inverse, q2 in transitions:
            if ctx is not None:
                ctx.checkpoint(BUILD_SITE, steps=max(1, arrays.m))
            mask = arrays.edge_mask(graph, test, use_label_index)
            src = arrays.src[mask]
            dst = arrays.dst[mask]
            if inverse:
                src, dst = dst, src
            op = _EdgeOp(q2)
            if layout == "dense":
                matrix = np.zeros((n, n), dtype=np.float32)
                matrix[src, dst] = 1.0
                op.matrix = matrix
            elif src.size:
                order = np.argsort(dst, kind="stable")
                dst_sorted = dst[order]
                op.src_sorted = src[order]
                boundaries = np.empty(dst_sorted.size, dtype=bool)
                boundaries[0] = True
                np.not_equal(dst_sorted[1:], dst_sorted[:-1],
                             out=boundaries[1:])
                op.seg_starts = np.flatnonzero(boundaries)
                op.unique_dst = dst_sorted[op.seg_starts]
            else:
                op.src_sorted = src  # empty: the op is a no-op
            ops[q].append(op)
    for q, transitions in nfa.epsilon_transitions.items():
        for guard, q2 in transitions:
            rows = None
            if guard is not None:
                if ctx is not None:
                    ctx.checkpoint(BUILD_SITE, steps=max(1, n))
                rows = np.flatnonzero(arrays.node_mask(graph, guard))
            ops[q].append(_EpsOp(q2, rows))
    return ops


def vector_endpoint_pairs(graph, nfa, start_nodes=None, end_nodes=None, *,
                          use_label_index: bool = True, ctx=None,
                          tracer=None, layout: str = "auto") -> set[tuple]:
    """All (start, end) endpoint pairs of [[regex]] — the vector engine.

    Drop-in equivalent of the scalar ``_product_pairs`` (the differential
    harness asserts equality instance by instance); ``layout`` forces the
    dense or bitset representation, defaulting to the size heuristic.
    """
    np = numpy_or_none()
    arrays = graph_arrays(graph)
    starts, start_idx = _resolve_starts(arrays, start_nodes)
    n = arrays.n
    n_starts = len(starts)
    if n == 0 or n_starts == 0:
        return set()
    layout = pick_layout(n, layout)

    if tracer is None:
        ops = _build_ops(graph, nfa, arrays, layout, use_label_index, ctx)
    else:
        with tracer.span("vector:build", ctx=ctx, layout=layout,
                         nodes=n, edges=arrays.m, starts=n_starts) as span:
            ops = _build_ops(graph, nfa, arrays, layout, use_label_index,
                             ctx)
            span.attrs["transitions"] = sum(len(group) for group in ops)

    # Lazily allocated per-NFA-state relations; a state never written
    # stays None (identically empty).
    relations: list = [None] * nfa.n_states

    def fresh():
        if layout == "dense":
            return np.zeros((n_starts, n), dtype=bool)
        return np.zeros((n, (n_starts + 63) // 64), dtype=np.uint64)

    seed = relations[nfa.start] = fresh()
    if layout == "dense":
        if start_idx is None:
            seed[np.arange(n), np.arange(n)] = True
        else:
            seed[np.arange(n_starts), np.asarray(start_idx)] = True
    else:
        one = np.uint64(1)
        if start_idx is None:
            for s in range(n):
                seed[s, s >> 6] |= one << np.uint64(s & 63)
        else:
            for s, v in enumerate(start_idx):
                seed[v, s >> 6] |= one << np.uint64(s & 63)

    def active_nodes(relation) -> int:
        if layout == "dense":
            return int(relation.any(axis=0).sum())
        return int(relation.any(axis=1).sum())

    def apply_edge(op, source_rel) -> bool:
        """OR op's image of ``source_rel`` into R[q2]; True if it grew."""
        target = relations[op.q2]
        if layout == "dense":
            image = (source_rel.astype(np.float32) @ op.matrix) > 0.0
            if target is None:
                if not image.any():
                    return False
                relations[op.q2] = image
                return True
            grown = image & ~target
            if not grown.any():
                return False
            target |= image
            return True
        if op.seg_starts is None:
            return False  # no edge passes the test
        gathered = source_rel[op.src_sorted]
        reduced = np.bitwise_or.reduceat(gathered, op.seg_starts, axis=0)
        if target is None:
            if not reduced.any():
                return False
            target = relations[op.q2] = fresh()
            target[op.unique_dst] = reduced
            return True
        current = target[op.unique_dst]
        merged = current | reduced
        if (merged == current).all():
            return False
        target[op.unique_dst] = merged
        return True

    def apply_epsilon(op, source_rel) -> bool:
        target = relations[op.q2]
        if op.rows is None:
            if target is None:
                if not source_rel.any():
                    return False
                relations[op.q2] = source_rel.copy()
                return True
            if layout == "dense":
                grown = source_rel & ~target
                if not grown.any():
                    return False
                target |= source_rel
                return True
            merged = target | source_rel
            if (merged == target).all():
                return False
            target[:] = merged
            return True
        rows = op.rows
        if rows.size == 0:
            return False
        if layout == "dense":
            piece = source_rel[:, rows]
        else:
            piece = source_rel[rows]
        if target is None:
            if not piece.any():
                return False
            target = relations[op.q2] = fresh()
            if layout == "dense":
                target[:, rows] = piece
            else:
                target[rows] = piece
            return True
        if layout == "dense":
            current = target[:, rows]
            merged = current | piece
            if (merged == current).all():
                return False
            target[:, rows] = merged
        else:
            current = target[rows]
            merged = current | piece
            if (merged == current).all():
                return False
            target[rows] = merged
        return True

    def fixpoint() -> None:
        pending = deque([nfa.start])
        queued = [False] * nfa.n_states
        queued[nfa.start] = True
        while pending:
            q = pending.popleft()
            queued[q] = False
            source_rel = relations[q]
            if ctx is not None:
                ctx.checkpoint(FIXPOINT_SITE,
                               steps=max(1, active_nodes(source_rel)))
                ctx.note_frontier(len(pending) + 1, FIXPOINT_SITE)
            for op in ops[q]:
                if isinstance(op, _EdgeOp):
                    changed = apply_edge(op, source_rel)
                else:
                    changed = apply_epsilon(op, source_rel)
                if changed and not queued[op.q2]:
                    queued[op.q2] = True
                    pending.append(op.q2)

    if tracer is None:
        fixpoint()
    else:
        with tracer.span("vector:fixpoint", ctx=ctx):
            fixpoint()

    accept_rel = relations[nfa.accept]
    if accept_rel is None:
        return set()
    end_mask = None
    if end_nodes is not None:
        end_mask = np.zeros(n, dtype=bool)
        for node in end_nodes:
            position = arrays.index.get(node)
            if position is not None:  # missing ends silently filter
                end_mask[position] = True
    nodes = arrays.nodes
    if layout == "dense":
        selected = accept_rel if end_mask is None else (
            accept_rel & end_mask[None, :])
        start_rows, node_cols = np.nonzero(selected)
        return {(starts[s], nodes[v])
                for s, v in zip(start_rows.tolist(), node_cols.tolist())}
    node_any = accept_rel.any(axis=1)
    if end_mask is not None:
        node_any &= end_mask
    rows = np.flatnonzero(node_any)
    if rows.size == 0:
        return set()
    words = np.ascontiguousarray(accept_rel[rows]).astype("<u8")
    bits = np.unpackbits(words.view(np.uint8), axis=1, bitorder="little")
    row_sel, bit_sel = np.nonzero(bits[:, :n_starts])
    return {(starts[s], nodes[rows[r]])
            for r, s in zip(row_sel.tolist(), bit_sel.tolist())}


def back_layers_vectorized(product, max_steps: int, ctx=None):
    """``ProductNFA.back_layers`` as array sweeps over flat edge arrays.

    Returns the identical ``list[frozenset[int]]`` — layer ``j`` holds the
    product states from which an accept state is reachable in exactly
    ``j`` transitions — so the subset DP of ``count_words_exact`` consumes
    it unchanged.  The flat (src, dst) arrays are built in one pass over
    the product's transition tables; each layer is then one boolean
    gather/scatter instead of a Python walk of predecessor sets.
    """
    np = numpy_or_none()
    n_states = product.n_states()
    sources: list[int] = []
    targets: list[int] = []
    for source, table in enumerate(product.transitions):
        for targeted in table.values():
            sources.extend([source] * len(targeted))
            targets.extend(targeted)
    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(targets, dtype=np.int64)
    if ctx is not None:
        ctx.checkpoint(BACK_SITE, steps=max(1, src.size))
    layer = np.zeros(n_states, dtype=bool)
    accepts = list(product.accepts)
    layer[accepts] = True
    layers = [product.accepts]
    for _ in range(max_steps):
        if ctx is not None:
            ctx.checkpoint(BACK_SITE, steps=max(1, int(layer.sum())))
        previous = np.zeros(n_states, dtype=bool)
        if src.size:
            previous[src[layer[dst]]] = True
        layer = previous
        layers.append(frozenset(np.flatnonzero(previous).tolist()))
    return layers
