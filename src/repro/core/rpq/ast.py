"""AST for the paper's regular expressions over graphs (grammar (1)).

Two syntactic categories:

- :class:`Test` — Boolean combinations of atomic tests.  Atomic tests come
  in the three flavours the paper defines, one per data model: label tests
  ``l`` (labeled graphs), property tests ``(p = v)`` (property graphs) and
  feature tests ``(f_i = v)`` (vector-labeled graphs).
- :class:`Regex` — node tests ``?test``, edge atoms ``test`` / ``test^-``,
  union ``+``, concatenation ``/`` and Kleene star ``*``.

Tests are evaluated against nodes or edges of a concrete graph model; asking
a model for a capability it lacks (for example a feature test on a plain
labeled graph) raises :class:`repro.errors.ModelCapabilityError` rather than
silently failing, matching the paper's per-model grammars.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ModelCapabilityError


# ---------------------------------------------------------------------------
# Tests
# ---------------------------------------------------------------------------


class Test(ABC):
    """A Boolean test on a single node or edge."""

    @abstractmethod
    def matches_node(self, graph, node) -> bool:
        """Does this test hold at ``node`` of ``graph``?"""

    @abstractmethod
    def matches_edge(self, graph, edge) -> bool:
        """Does this test hold at ``edge`` of ``graph``?"""

    @abstractmethod
    def to_text(self) -> str:
        """Parseable textual form (inverse of :func:`repro.core.rpq.parse_test`)."""

    def label_candidates(self) -> frozenset | None:
        """Edge labels this test could match, or ``None`` if unrestricted.

        Sound over-approximation: on any edge-labeled graph, an edge whose
        label is *not* in the returned set can never satisfy the test.  The
        RPQ product uses this to pull candidate edges from the per-label
        adjacency index instead of scanning every incident edge.
        """
        return None

    def label_candidates_exact(self) -> bool:
        """Whether :meth:`label_candidates` is also *complete*: on an
        edge-labeled graph, label membership alone decides the test, so
        ``matches_edge`` may be skipped for index-supplied candidates."""
        return False

    def feature_candidates(self) -> tuple[int, frozenset] | None:
        """A ``(feature index, allowed values)`` restriction, or ``None``.

        The vector-graph analogue of :meth:`label_candidates`: on a
        vector-labeled graph, an edge whose feature ``index`` is outside
        the value set can never satisfy the test.
        """
        return None

    def feature_candidates_exact(self) -> bool:
        """Whether :meth:`feature_candidates` alone decides the test on a
        vector-labeled graph."""
        return False

    def __and__(self, other: "Test") -> "Test":
        return AndTest(self, other)

    def __or__(self, other: "Test") -> "Test":
        return OrTest(self, other)

    def __invert__(self) -> "Test":
        return NotTest(self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_text()!r})"


@dataclass(frozen=True, repr=False)
class LabelTest(Test):
    """The atomic test ``l``: the label of the node/edge equals ``label``."""

    label: str

    def matches_node(self, graph, node) -> bool:
        lookup = getattr(graph, "node_label", None)
        if lookup is None:
            raise ModelCapabilityError(
                f"label test {self.label!r} needs a labeled graph, "
                f"got {type(graph).__name__}")
        return lookup(node) == self.label

    def matches_edge(self, graph, edge) -> bool:
        lookup = getattr(graph, "edge_label", None)
        if lookup is None:
            raise ModelCapabilityError(
                f"label test {self.label!r} needs a labeled graph, "
                f"got {type(graph).__name__}")
        return lookup(edge) == self.label

    def label_candidates(self) -> frozenset | None:
        return frozenset((self.label,))

    def label_candidates_exact(self) -> bool:
        return True

    def to_text(self) -> str:
        return _quote_if_needed(self.label)


@dataclass(frozen=True, repr=False)
class PropertyTest(Test):
    """The atomic test ``(p = v)`` on property graphs.

    Where sigma is undefined for the property, the test is false (sigma is a
    partial function in the paper's definition).
    """

    prop: str
    value: str

    def matches_node(self, graph, node) -> bool:
        lookup = getattr(graph, "node_property", None)
        if lookup is None:
            raise ModelCapabilityError(
                f"property test ({self.prop} = {self.value}) needs a property "
                f"graph, got {type(graph).__name__}")
        return lookup(node, self.prop) == self.value

    def matches_edge(self, graph, edge) -> bool:
        lookup = getattr(graph, "edge_property", None)
        if lookup is None:
            raise ModelCapabilityError(
                f"property test ({self.prop} = {self.value}) needs a property "
                f"graph, got {type(graph).__name__}")
        return lookup(edge, self.prop) == self.value

    def to_text(self) -> str:
        return f"{_quote_if_needed(self.prop)}={_quote_if_needed(self.value)}"


@dataclass(frozen=True, repr=False)
class FeatureTest(Test):
    """The atomic test ``(f_i = v)`` on vector-labeled graphs; ``index`` is 1-based."""

    index: int
    value: str

    def matches_node(self, graph, node) -> bool:
        lookup = getattr(graph, "node_feature", None)
        if lookup is None:
            raise ModelCapabilityError(
                f"feature test (f{self.index} = {self.value}) needs a "
                f"vector-labeled graph, got {type(graph).__name__}")
        return lookup(node, self.index) == self.value

    def matches_edge(self, graph, edge) -> bool:
        lookup = getattr(graph, "edge_feature", None)
        if lookup is None:
            raise ModelCapabilityError(
                f"feature test (f{self.index} = {self.value}) needs a "
                f"vector-labeled graph, got {type(graph).__name__}")
        return lookup(edge, self.index) == self.value

    def feature_candidates(self) -> tuple[int, frozenset] | None:
        return (self.index, frozenset((self.value,)))

    def feature_candidates_exact(self) -> bool:
        return True

    def to_text(self) -> str:
        return f"f{self.index}={_quote_if_needed(self.value)}"


@dataclass(frozen=True, repr=False)
class TrueTest(Test):
    """Matches every node and edge (useful for "any edge" wildcards)."""

    def matches_node(self, graph, node) -> bool:
        return True

    def matches_edge(self, graph, edge) -> bool:
        return True

    def to_text(self) -> str:
        return "true"


@dataclass(frozen=True, repr=False)
class FalseTest(Test):
    """Matches nothing; the unit of disjunction."""

    def matches_node(self, graph, node) -> bool:
        return False

    def matches_edge(self, graph, edge) -> bool:
        return False

    def label_candidates(self) -> frozenset | None:
        return frozenset()

    def label_candidates_exact(self) -> bool:
        return True

    def feature_candidates(self) -> tuple[int, frozenset] | None:
        return (1, frozenset())

    def feature_candidates_exact(self) -> bool:
        return True

    def to_text(self) -> str:
        return "false"


@dataclass(frozen=True, repr=False)
class NotTest(Test):
    """``(!test)``."""

    inner: Test

    def matches_node(self, graph, node) -> bool:
        return not self.inner.matches_node(graph, node)

    def matches_edge(self, graph, edge) -> bool:
        return not self.inner.matches_edge(graph, edge)

    def to_text(self) -> str:
        return f"!{_wrap_test(self.inner)}"


@dataclass(frozen=True, repr=False)
class AndTest(Test):
    """``(test & test)``."""

    left: Test
    right: Test

    def matches_node(self, graph, node) -> bool:
        return self.left.matches_node(graph, node) and self.right.matches_node(graph, node)

    def matches_edge(self, graph, edge) -> bool:
        return self.left.matches_edge(graph, edge) and self.right.matches_edge(graph, edge)

    def label_candidates(self) -> frozenset | None:
        left = self.left.label_candidates()
        right = self.right.label_candidates()
        if left is None:
            return right
        if right is None:
            return left
        return left & right

    def label_candidates_exact(self) -> bool:
        return (self.left.label_candidates() is not None
                and self.right.label_candidates() is not None
                and self.left.label_candidates_exact()
                and self.right.label_candidates_exact())

    def feature_candidates(self) -> tuple[int, frozenset] | None:
        left = self.left.feature_candidates()
        right = self.right.feature_candidates()
        if left is None:
            return right
        if right is None:
            return left
        if left[0] == right[0]:
            return (left[0], left[1] & right[1])
        # Conjuncts restrict different coordinates; either prunes soundly.
        return left

    def feature_candidates_exact(self) -> bool:
        left = self.left.feature_candidates()
        right = self.right.feature_candidates()
        return (left is not None and right is not None and left[0] == right[0]
                and self.left.feature_candidates_exact()
                and self.right.feature_candidates_exact())

    def to_text(self) -> str:
        return f"{_wrap_test(self.left)}&{_wrap_test(self.right)}"


@dataclass(frozen=True, repr=False)
class OrTest(Test):
    """``(test | test)``."""

    left: Test
    right: Test

    def matches_node(self, graph, node) -> bool:
        return self.left.matches_node(graph, node) or self.right.matches_node(graph, node)

    def matches_edge(self, graph, edge) -> bool:
        return self.left.matches_edge(graph, edge) or self.right.matches_edge(graph, edge)

    def label_candidates(self) -> frozenset | None:
        left = self.left.label_candidates()
        right = self.right.label_candidates()
        if left is None or right is None:
            return None
        return left | right

    def label_candidates_exact(self) -> bool:
        return (self.label_candidates() is not None
                and self.left.label_candidates_exact()
                and self.right.label_candidates_exact())

    def feature_candidates(self) -> tuple[int, frozenset] | None:
        left = self.left.feature_candidates()
        right = self.right.feature_candidates()
        if left is None or right is None or left[0] != right[0]:
            return None
        return (left[0], left[1] | right[1])

    def feature_candidates_exact(self) -> bool:
        return (self.feature_candidates() is not None
                and self.left.feature_candidates_exact()
                and self.right.feature_candidates_exact())

    def to_text(self) -> str:
        return f"{_wrap_test(self.left)}|{_wrap_test(self.right)}"


def _wrap_test(test: Test) -> str:
    if isinstance(test, (AndTest, OrTest)):
        return f"({test.to_text()})"
    return test.to_text()


# ---------------------------------------------------------------------------
# Regexes
# ---------------------------------------------------------------------------


class Regex(ABC):
    """A regular expression over a graph, per grammar (1)."""

    @abstractmethod
    def to_text(self) -> str:
        """Parseable textual form (inverse of :func:`repro.core.rpq.parse_regex`)."""

    def __add__(self, other: "Regex") -> "Regex":
        return Union(self, other)

    def __truediv__(self, other: "Regex") -> "Regex":
        return Concat(self, other)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_text()!r})"


@dataclass(frozen=True, repr=False)
class NodeTest(Regex):
    """``?test`` — a length-0 path at a node satisfying ``test``."""

    test: Test

    def to_text(self) -> str:
        return f"?{_wrap_atom_test(self.test)}"


@dataclass(frozen=True, repr=False)
class EdgeAtom(Regex):
    """``test`` (follow a conforming edge) or ``test^-`` (follow it backwards)."""

    test: Test
    inverse: bool = False

    def to_text(self) -> str:
        suffix = "^-" if self.inverse else ""
        return f"{_wrap_atom_test(self.test)}{suffix}"


@dataclass(frozen=True, repr=False)
class Union(Regex):
    """``(r + r)``."""

    left: Regex
    right: Regex

    def to_text(self) -> str:
        # Parenthesize a right-nested union so parsing (left-associative)
        # rebuilds this exact tree.
        right = self.right.to_text()
        if isinstance(self.right, Union):
            right = f"({right})"
        return f"{self.left.to_text()} + {right}"


@dataclass(frozen=True, repr=False)
class Concat(Regex):
    """``(r / r)`` — paths sharing the junction node, concatenated."""

    left: Regex
    right: Regex

    def to_text(self) -> str:
        right = _wrap_concat(self.right)
        if isinstance(self.right, Concat):
            right = f"({right})"
        return f"{_wrap_concat(self.left)}/{right}"


@dataclass(frozen=True, repr=False)
class Star(Regex):
    """``(r*)`` — zero or more concatenations of ``r``."""

    inner: Regex

    def to_text(self) -> str:
        return f"{_wrap_postfix(self.inner)}*"


def _wrap_atom_test(test: Test) -> str:
    if isinstance(test, (AndTest, OrTest, PropertyTest, FeatureTest)):
        return f"({test.to_text()})"
    return test.to_text()


def _wrap_concat(regex: Regex) -> str:
    if isinstance(regex, Union):
        return f"({regex.to_text()})"
    return regex.to_text()


def _wrap_postfix(regex: Regex) -> str:
    if isinstance(regex, (Union, Concat)):
        return f"({regex.to_text()})"
    if isinstance(regex, EdgeAtom) and regex.inverse:
        return f"({regex.to_text()})"
    return regex.to_text()


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------


def union(*parts: Regex) -> Regex:
    """n-ary union; requires at least one operand."""
    if not parts:
        raise ValueError("union of zero regexes")
    result = parts[0]
    for part in parts[1:]:
        result = Union(result, part)
    return result


def concat(*parts: Regex) -> Regex:
    """n-ary concatenation; requires at least one operand."""
    if not parts:
        raise ValueError("concatenation of zero regexes")
    result = parts[0]
    for part in parts[1:]:
        result = Concat(result, part)
    return result


def star(regex: Regex) -> Regex:
    return Star(regex)


def plus(regex: Regex) -> Regex:
    """``r+`` sugar: one or more repetitions, i.e. r / r*."""
    return Concat(regex, Star(regex))


def optional(regex: Regex) -> Regex:
    """``r?`` sugar: the empty path anywhere, or one ``r``."""
    return Union(NodeTest(TrueTest()), regex)


_BARE_RE_CHARS = set("?()/+*&|!=^- \t\n\"'")


def _quote_if_needed(value: str) -> str:
    """Render a constant so the parser reads it back as the same atom.

    Constants that would collide with grammar keywords (``true``/``false``)
    or with the feature-test shape ``f<digits>`` are quoted.
    """
    import re as _re

    text = str(value)
    reserved = text in ("true", "false") or _re.fullmatch(r"f\d+", text) is not None
    if text and not reserved and not any(ch in _BARE_RE_CHARS for ch in text):
        return text
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'
