"""The problem Count: how many paths of length k conform to a regex?

Count is SpanL-complete (Alvarez & Jenner), so no polynomial exact algorithm
is expected.  This module provides the two exact baselines the FPRAS is
validated against:

- :func:`count_paths_exact` — dynamic programming over the on-the-fly
  determinization of the product automaton.  Distinct paths are distinct
  words, and words map deterministically to state *subsets*, so counting
  words of length k+1 reaching an accepting subset is exact.  Worst case
  exponential in the product size — the expected price of exactness — but
  pruned by "can an accept state still be reached in the remaining steps".
- :func:`count_paths_bruteforce` — enumerate [[r]] by the reference
  semantics and filter; only usable on tiny instances, used in tests.

Both accept an optional execution :class:`~repro.exec.Context` (``ctx``):
the subset DP checkpoints once per expanded subset (site ``count.layer``)
and reports the live-subset frontier, which is exactly where the
exponential blow-up shows, so deadlines/step budgets interrupt it promptly.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.rpq.ast import Regex
from repro.core.rpq.nfa import compile_regex
from repro.core.rpq.product import INITIAL, ProductNFA, build_product
from repro.core.rpq.semantics import evaluate_bruteforce
from repro.errors import InvalidLengthError


def count_words_exact(product: ProductNFA, length: int, *,
                      prune: bool = True, ctx=None, back=None) -> int:
    """Number of distinct accepted words of exactly ``length`` symbols.

    ``prune=True`` (the default) intersects every reached subset with the
    states that can still reach acceptance in the remaining steps — a sound
    reduction of the determinized state space (merged subsets have equal
    accepted-completion counts).  ``prune=False`` runs the plain subset DP;
    the ablation benchmark quantifies the difference.

    ``back`` optionally supplies precomputed backward layers (``back[j]``
    = states reaching acceptance in exactly ``j`` steps, ``len(back) >
    length``) — the vector engine passes its array-swept layers here; the
    sets are identical to :meth:`ProductNFA.back_layers`, so the DP is
    unchanged.
    """
    if length < 0:
        raise InvalidLengthError("length", length)
    if back is None:
        back = product.back_layers(length)
    start = frozenset([INITIAL])
    if prune:
        start &= back[length]
    if not start:
        return 0
    if length == 0:
        return 1 if start & product.accepts else 0
    current: dict[frozenset[int], int] = {start: 1}
    for step in range(length):
        remaining = length - step - 1
        survivors = back[remaining]
        following: dict[frozenset[int], int] = {}
        for subset, count in current.items():
            if ctx is not None:
                ctx.checkpoint("count.layer")
            for symbol in product.symbols_from(subset):
                reached = product.delta(subset, symbol)
                if prune:
                    reached &= survivors
                if reached:
                    following[reached] = following.get(reached, 0) + count
        current = following
        if ctx is not None and current:
            # The distinct-subset frontier is the memory hot spot of the
            # determinized DP: each key is a frozenset of product states.
            ctx.note_frontier(len(current), "count.layer")
        if not current:
            return 0
    if prune:
        # Every surviving subset intersects the accept set (back[0] is the
        # accept set), so all counted words are accepted.
        return sum(current.values())
    return sum(count for subset, count in current.items()
               if subset & product.accepts)


def count_paths_exact(graph, regex: Regex, k: int,
                      start_nodes: Iterable | None = None,
                      end_nodes: Iterable | None = None,
                      *, use_label_index: bool = True, engine: str = "auto",
                      ctx=None, pool=None, cache=None) -> int:
    """Count(G, r, k): the number of paths p in [[r]] with |p| = k.

    Optionally restrict the start and end nodes of the counted paths (needed
    by the regex-constrained centrality of Section 4.2).
    ``use_label_index=False`` forces the full-scan product construction.

    With a :class:`~repro.exec.parallel.WorkerPool` bound to this graph
    (``pool=``), the start-node set is sharded across workers and the shard
    counts are summed — exact, because distinct paths have distinct start
    nodes within exactly one shard (pinned by the differential harness).

    With a :class:`~repro.cache.QueryCache` (``cache=``), the count is
    memoized under (graph, regex text, k, endpoint restrictions) with the
    regex's label footprint — the same key family the governor's exact rung
    consults, so the two share entries.  A hit spends no budget.

    ``engine="vector"`` (or an ``"auto"`` resolution to it) sweeps the
    backward layers with the numpy kernel; the subset DP itself stays
    scalar — exact counting is SpanL-complete and its bigint counts over
    an ambiguous NFA do not vectorize, the layers do.
    """
    if k < 0:
        raise InvalidLengthError("path length k", k)
    if cache is not None:
        from repro.cache import MISS, label_footprint
        from repro.cache.result_cache import nodes_key

        start_nodes = nodes_key(start_nodes)
        end_nodes = nodes_key(end_nodes)
        key = ("count_paths", regex.to_text(), k, start_nodes, end_nodes)
        hit = cache.lookup(graph, key)
        if hit is not MISS:
            return hit
        count = count_paths_exact(graph, regex, k, start_nodes, end_nodes,
                                  use_label_index=use_label_index,
                                  engine=engine, ctx=ctx, pool=pool)
        cache.store(graph, key, label_footprint(regex), count)
        return count
    if pool is not None:
        from repro.exec.parallel import sharded_count_paths

        return sharded_count_paths(pool, graph, regex, k, start_nodes,
                                   end_nodes, use_label_index=use_label_index,
                                   engine=engine, ctx=ctx)
    from repro.core.rpq.evaluate import footprint_edge_count
    from repro.core.rpq.vectorized.engine import resolve_engine

    nfa = compile_regex(regex)
    footprint = (footprint_edge_count(graph, nfa)
                 if engine == "auto" else None)
    resolved, reason = resolve_engine(engine, graph,
                                      footprint_edges=footprint)
    if ctx is not None:
        ctx.stats.notes["engine"] = resolved
        ctx.stats.notes["engine_reason"] = reason
    product = build_product(graph, nfa, start_nodes=start_nodes,
                            end_nodes=end_nodes, use_label_index=use_label_index,
                            ctx=ctx)
    back = None
    if resolved == "vector":
        from repro.core.rpq.vectorized import back_layers_vectorized

        back = back_layers_vectorized(product, k + 1, ctx=ctx)
    return count_words_exact(product, k + 1, ctx=ctx, back=back)


def count_paths_bruteforce(graph, regex: Regex, k: int,
                           start_nodes: Iterable | None = None,
                           end_nodes: Iterable | None = None) -> int:
    """Reference implementation of Count by explicit path materialization."""
    if k < 0:
        raise InvalidLengthError("path length k", k)
    start_filter = None if start_nodes is None else set(start_nodes)
    end_filter = None if end_nodes is None else set(end_nodes)
    total = 0
    for path in evaluate_bruteforce(graph, regex, k):
        if path.length != k:
            continue
        if start_filter is not None and path.start not in start_filter:
            continue
        if end_filter is not None and path.end not in end_filter:
            continue
        total += 1
    return total
