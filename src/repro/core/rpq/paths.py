"""Paths in a graph, exactly as the paper defines them.

A path is a sequence ``p = n0 e1 n1 e2 ... ek nk`` of alternating nodes and
edges; ``start(p) = n0``, ``end(p) = nk``, ``|p| = k`` (the number of
edges).  Paths are walks: nodes and edges may repeat.  An edge may be
traversed in either direction (the regex decides which via ``test^-``), so
a path only records which edges were used between which nodes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import GraphError


@dataclass(frozen=True)
class Path:
    """An alternating node/edge sequence with ``len(nodes) == len(edges) + 1``."""

    nodes: tuple
    edges: tuple = ()

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.edges) + 1:
            raise GraphError(
                f"a path with {len(self.edges)} edges needs {len(self.edges) + 1} "
                f"nodes, got {len(self.nodes)}")
        if not self.nodes:
            raise GraphError("a path has at least one node")

    @property
    def start(self):
        """``start(p) = n0``."""
        return self.nodes[0]

    @property
    def end(self):
        """``end(p) = nk``."""
        return self.nodes[-1]

    @property
    def length(self) -> int:
        """``|p|`` — the number of edges."""
        return len(self.edges)

    def visits(self, node) -> bool:
        """Does the path include ``node``?  (Used by bc_r path counting.)"""
        return node in self.nodes

    def is_consistent_with(self, graph) -> bool:
        """Check every step uses an edge of ``graph`` between its recorded nodes.

        Either traversal direction is accepted, matching the semantics of
        ``test^-``.
        """
        for i, edge in enumerate(self.edges):
            if not graph.has_edge(edge):
                return False
            source, target = graph.endpoints(edge)
            step = (self.nodes[i], self.nodes[i + 1])
            if step != (source, target) and step != (target, source):
                return False
        return all(graph.has_node(n) for n in self.nodes)

    def to_text(self) -> str:
        """Human-readable ``n0 -e1- n1 -e2- n2`` rendering."""
        parts = [str(self.nodes[0])]
        for i, edge in enumerate(self.edges):
            parts.append(f"-{edge}-")
            parts.append(str(self.nodes[i + 1]))
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"Path({self.to_text()})"

    @classmethod
    def single(cls, node) -> "Path":
        """The length-0 path at ``node``."""
        return cls((node,), ())

    @classmethod
    def from_steps(cls, start, steps: Sequence[tuple]) -> "Path":
        """Build from a start node and (edge, next_node) steps."""
        nodes = [start]
        edges = []
        for edge, node in steps:
            edges.append(edge)
            nodes.append(node)
        return cls(tuple(nodes), tuple(edges))


def cat(left: Path, right: Path) -> Path:
    """``cat(p, p')`` — concatenation of paths sharing the junction node.

    Defined only when ``end(left) == start(right)``, as in the paper.
    """
    if left.end != right.start:
        raise GraphError(
            f"cannot concatenate: end {left.end!r} != start {right.start!r}")
    return Path(left.nodes + right.nodes[1:], left.edges + right.edges)
