"""The problem Gen: generate a conforming path of length k uniformly at random.

As in the paper, the algorithm has a *preprocessing phase* — here, a layered
exploration of the determinized product with exact suffix counts — and a
*generation phase* that can be invoked repeatedly, each call producing one
path with exactly uniform probability over all paths p in [[r]] with
|p| = k.

This sampler is exact: the preprocessing pays the (worst-case exponential)
determinization price that :class:`~repro.core.rpq.fpras.ApproxPathCounter`
avoids.  The two are benchmarked against each other in experiment G1.
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.core.rpq.ast import Regex
from repro.core.rpq.nfa import compile_regex
from repro.core.rpq.paths import Path
from repro.core.rpq.product import INITIAL, build_product, symbol_sort_key
from repro.errors import EstimationError, InvalidLengthError
from repro.util.rng import make_default_rng, make_rng


class UniformPathSampler:
    """Exactly-uniform generation of conforming length-k paths.

    Preprocessing builds, layer by layer, the reachable pruned subsets of
    the product automaton and the number of accepted completions of each;
    :meth:`sample` then walks forward choosing each symbol with probability
    proportional to the completions it leads to.
    """

    def __init__(self, graph, regex: Regex, k: int,
                 start_nodes: Iterable | None = None,
                 end_nodes: Iterable | None = None, *, ctx=None,
                 rng: int | random.Random | None = None) -> None:
        if k < 0:
            raise InvalidLengthError("path length k", k)
        self.k = k
        # Seedless draws route through the library default seed, never the
        # process-global random module: re-running an unseeded experiment
        # reproduces the same paths (mirrors ApproxPathCounter).
        self._rng = make_default_rng(rng)
        self._length = k + 1
        nfa = compile_regex(regex)
        self._product = build_product(graph, nfa, start_nodes=start_nodes,
                                      end_nodes=end_nodes, ctx=ctx)
        self._layers: list[dict[frozenset[int], dict[tuple, frozenset[int]]]] = []
        self._counts: list[dict[frozenset[int], int]] = []
        self._preprocess(ctx)

    # -- preprocessing phase ----------------------------------------------

    def _preprocess(self, ctx=None) -> None:
        product = self._product
        length = self._length
        back = product.back_layers(length)
        start = frozenset([INITIAL]) & back[length]
        layer_sets: list[set[frozenset[int]]] = [set() for _ in range(length + 1)]
        if start:
            layer_sets[0].add(start)
        self._layers = [{} for _ in range(length)]
        for i in range(length):
            survivors = back[length - i - 1]
            for subset in layer_sets[i]:
                if ctx is not None:
                    ctx.checkpoint("generate.preprocess")
                table: dict[tuple, frozenset[int]] = {}
                for symbol in product.symbols_from(subset):
                    reached = product.delta(subset, symbol) & survivors
                    if reached:
                        table[symbol] = reached
                        layer_sets[i + 1].add(reached)
                self._layers[i][subset] = table
        # Suffix counts, computed backwards; every layer-`length` subset is
        # accepting by construction of the pruning.
        self._counts = [{} for _ in range(length + 1)]
        for subset in layer_sets[length]:
            self._counts[length][subset] = 1
        for i in range(length - 1, -1, -1):
            for subset, table in self._layers[i].items():
                total = sum(self._counts[i + 1][reached] for reached in table.values())
                if total:
                    self._counts[i][subset] = total
        self._start = start if start in self._counts[0] else None

    # -- generation phase ---------------------------------------------------

    @property
    def count(self) -> int:
        """The exact value Count(G, r, k) (a byproduct of preprocessing)."""
        if self._start is None:
            return 0
        return self._counts[0][self._start]

    def sample(self, rng: int | random.Random | None = None) -> Path:
        """Draw one path uniformly at random among all conforming length-k paths.

        ``rng=None`` draws from the sampler's own deterministic generator
        (seeded at construction; library default seed when unseeded), so
        results are reproducible run over run by default.
        """
        if self.count == 0:
            raise EstimationError("no conforming path of the requested length exists")
        rng = self._rng if rng is None else make_rng(rng)
        subset = self._start
        word = []
        for i in range(self._length):
            table = self._layers[i][subset]
            # Deterministic symbol order makes sampling reproducible per seed.
            symbols = sorted(table, key=symbol_sort_key)
            weights = [self._counts[i + 1][table[s]] for s in symbols]
            choice = rng.choices(range(len(symbols)), weights=weights)[0]
            symbol = symbols[choice]
            word.append(symbol)
            subset = table[symbol]
        return self._product.word_to_path(word)

    def sample_many(self, n: int,
                    rng: int | random.Random | None = None) -> list[Path]:
        """Draw ``n`` independent uniform paths (one preprocessing, many draws).

        As for :meth:`sample`, ``rng=None`` uses the sampler's seeded
        default generator instead of process-global randomness.
        """
        rng = self._rng if rng is None else make_rng(rng)
        return [self.sample(rng) for _ in range(n)]
