"""Recursive-descent parser for the textual form of the paper's regexes.

Syntax (ASCII rendering of grammar (1) plus its property/vector extensions)::

    ?person/contact/?infected                 eq. (2)
    ?person/(contact & date="3/4/21")/?infected   eq. (3)
    ?infected/rides/?bus/rides^-/(?person/(lives + contact))*/?person   r1
    (f1=person)/(f1=contact & f5="3/4/21")/?(f1=infected)   eq. (3) on Fig 2(c)

Operator precedence, tightest first: ``!`` (test negation), ``=`` (property /
feature equality), ``&``, ``|`` (test connectives), postfix ``*`` and ``^-``,
``/`` (concatenation), ``+`` (union).  Test connectives bind tighter than
path operators, so ``contact & date="x" / ?b`` reads as
``(contact & date="x") / ?b``.  Constants containing reserved characters
(such as dates with slashes) are written as double-quoted strings.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.rpq.ast import (
    AndTest,
    Concat,
    EdgeAtom,
    FalseTest,
    FeatureTest,
    LabelTest,
    NodeTest,
    NotTest,
    OrTest,
    PropertyTest,
    Regex,
    Star,
    Test,
    TrueTest,
    Union,
)
from repro.errors import RegexSyntaxError

_FEATURE_NAME = re.compile(r"f(\d+)$")
_RESERVED = set('?()/+*&|!=^ \t\r\n"')


@dataclass(frozen=True)
class _Token:
    kind: str  # 'ident' | 'string' | 'op'
    value: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "^":
            if i + 1 < n and text[i + 1] == "-":
                tokens.append(_Token("op", "^-", i))
                i += 2
                continue
            raise RegexSyntaxError("'^' must be followed by '-'", i)
        if ch in "?()/+*&|!=":
            tokens.append(_Token("op", ch, i))
            i += 1
            continue
        if ch == '"':
            j = i + 1
            chunks: list[str] = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    chunks.append(text[j + 1])
                    j += 2
                else:
                    chunks.append(text[j])
                    j += 1
            if j >= n:
                raise RegexSyntaxError("unterminated string", i)
            tokens.append(_Token("string", "".join(chunks), i))
            i = j + 1
            continue
        j = i
        while j < n and text[j] not in _RESERVED:
            j += 1
        tokens.append(_Token("ident", text[i:j], i))
        i = j
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _peek_op(self, *values: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "op" and token.value in values

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise RegexSyntaxError("unexpected end of input", len(self.text))
        self.pos += 1
        return token

    def _expect_op(self, value: str) -> None:
        token = self._peek()
        if token is None or token.kind != "op" or token.value != value:
            found = "end of input" if token is None else repr(token.value)
            where = len(self.text) if token is None else token.position
            raise RegexSyntaxError(f"expected {value!r}, found {found}", where)
        self.pos += 1

    # -- regex levels ----------------------------------------------------------

    def parse_regex(self) -> Regex:
        result = self._parse_union()
        token = self._peek()
        if token is not None:
            raise RegexSyntaxError(f"trailing input {token.value!r}", token.position)
        return result

    def _parse_union(self) -> Regex:
        result = self._parse_concat()
        while self._peek_op("+"):
            self._next()
            result = Union(result, self._parse_concat())
        return result

    def _parse_concat(self) -> Regex:
        result = self._parse_postfixed()
        while self._peek_op("/"):
            self._next()
            result = Concat(result, self._parse_postfixed())
        return result

    def _parse_postfixed(self) -> Regex:
        result = self._parse_atom()
        while self._peek_op("*", "^-"):
            token = self._next()
            if token.value == "*":
                result = Star(result)
            else:
                if not (isinstance(result, EdgeAtom) and not result.inverse):
                    raise RegexSyntaxError(
                        "'^-' applies to an edge test, not a path expression",
                        token.position)
                result = EdgeAtom(result.test, inverse=True)
        return result

    def _parse_atom(self) -> Regex:
        token = self._peek()
        if token is None:
            raise RegexSyntaxError("expected an expression", len(self.text))
        if token.kind == "op" and token.value == "?":
            self._next()
            return NodeTest(self._parse_test_unit())
        if token.kind == "op" and token.value == "(":
            self._next()
            inner = self._parse_union()
            self._expect_op(")")
            # A parenthesized pure test may keep combining with & / |, e.g.
            # (contact & date="x") | lives as a single edge test.
            if self._peek_op("&", "|") and isinstance(inner, EdgeAtom) and not inner.inverse:
                return EdgeAtom(self._continue_test(inner.test))
            return inner
        if token.kind in ("ident", "string"):
            return EdgeAtom(self._parse_test_expr())
        if token.kind == "op" and token.value == "!":
            return EdgeAtom(self._parse_test_expr())
        raise RegexSyntaxError(f"unexpected {token.value!r}", token.position)

    # -- test levels -------------------------------------------------------

    def parse_test(self) -> Test:
        result = self._parse_test_expr()
        token = self._peek()
        if token is not None:
            raise RegexSyntaxError(f"trailing input {token.value!r}", token.position)
        return result

    def _parse_test_expr(self) -> Test:
        return self._continue_test(self._parse_test_conj())

    def _continue_test(self, first: Test) -> Test:
        result = first
        while self._peek_op("&", "|"):
            token = self._next()
            right = self._parse_test_conj()
            if token.value == "&":
                result = AndTest(result, right)
            else:
                result = OrTest(result, right)
        return result

    def _parse_test_conj(self) -> Test:
        result = self._parse_test_neg()
        while self._peek_op("&"):
            # '&' handled here binds tighter than '|', handled by _continue_test.
            self._next()
            result = AndTest(result, self._parse_test_neg())
        return result

    def _parse_test_neg(self) -> Test:
        if self._peek_op("!"):
            token = self._next()
            del token
            return NotTest(self._parse_test_neg())
        return self._parse_test_unit()

    def _parse_test_unit(self) -> Test:
        token = self._peek()
        if token is None:
            raise RegexSyntaxError("expected a test", len(self.text))
        if token.kind == "op" and token.value == "(":
            self._next()
            result = self._parse_test_expr()
            self._expect_op(")")
            return result
        if token.kind == "op" and token.value == "!":
            return self._parse_test_neg()
        if token.kind not in ("ident", "string"):
            raise RegexSyntaxError(f"expected a test, found {token.value!r}",
                                   token.position)
        self._next()
        name = token.value
        if self._peek_op("="):
            self._next()
            value_token = self._next()
            if value_token.kind not in ("ident", "string"):
                raise RegexSyntaxError(
                    f"expected a value after '=', found {value_token.value!r}",
                    value_token.position)
            feature = _FEATURE_NAME.match(name) if token.kind == "ident" else None
            if feature:
                return FeatureTest(int(feature.group(1)), value_token.value)
            return PropertyTest(name, value_token.value)
        if token.kind == "ident" and name == "true":
            return TrueTest()
        if token.kind == "ident" and name == "false":
            return FalseTest()
        return LabelTest(name)


def parse_regex(text: str) -> Regex:
    """Parse the textual form of a regular path query into a :class:`Regex`."""
    return _Parser(text).parse_regex()


def parse_test(text: str) -> Test:
    """Parse a standalone node/edge test into a :class:`Test`."""
    return _Parser(text).parse_test()
