"""The paper's primary contribution: querying machinery over graph models.

- :mod:`repro.core.rpq` — regular path queries (Section 4 intro, Section 4.1)
- :mod:`repro.core.centrality` — knowledge-aware centrality (Section 4.2)
- :mod:`repro.core.logic` — declarative node extraction (Section 4.3)
- :mod:`repro.core.gnn` — procedural node extraction and the logic bridge
  (Section 4.3)
"""
