"""Link prediction evaluation and knowledge-graph completion.

The standard protocol of the embedding literature the paper cites: for
each test triple (h, r, t), rank t among all entities by the model score
of (h, r, ·) — and h among (·, r, t) — with *filtered* ranks (other true
triples are not counted as errors); report mean rank, mean reciprocal rank
and Hits@k.  :func:`complete` closes the §2.3 loop by materializing the
model's confident new predictions back into triples.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.models.rdf import Triple
from repro.embeddings.transe import TransE


@dataclass
class LinkPredictionReport:
    """Aggregate link-prediction metrics over a test set."""

    evaluated: int
    mean_rank: float
    mean_reciprocal_rank: float
    hits_at_1: float
    hits_at_3: float
    hits_at_10: float

    def as_rows(self) -> list[list[object]]:
        return [["test triples", self.evaluated],
                ["mean rank", round(self.mean_rank, 2)],
                ["MRR", round(self.mean_reciprocal_rank, 4)],
                ["Hits@1", round(self.hits_at_1, 4)],
                ["Hits@3", round(self.hits_at_3, 4)],
                ["Hits@10", round(self.hits_at_10, 4)]]


def evaluate_link_prediction(model: TransE, test: Sequence[Triple],
                             known: Iterable[Triple] | None = None,
                             ) -> LinkPredictionReport:
    """Filtered tail- and head-prediction ranks over the test triples."""
    known_set = {(t.subject, t.predicate, t.object)
                 for t in (known if known is not None else model.triples)}
    known_set.update((t.subject, t.predicate, t.object) for t in test)
    ranks: list[int] = []
    for triple in test:
        ranks.append(_filtered_rank(model, triple, known_set, predict="tail"))
        ranks.append(_filtered_rank(model, triple, known_set, predict="head"))
    ranks_array = np.array(ranks, dtype=float)
    return LinkPredictionReport(
        evaluated=len(test),
        mean_rank=float(ranks_array.mean()),
        mean_reciprocal_rank=float((1.0 / ranks_array).mean()),
        hits_at_1=float((ranks_array <= 1).mean()),
        hits_at_3=float((ranks_array <= 3).mean()),
        hits_at_10=float((ranks_array <= 10).mean()),
    )


def _filtered_rank(model: TransE, triple: Triple, known: set[tuple],
                   predict: str) -> int:
    if predict == "tail":
        scores = model.score_all_tails(triple.subject, triple.predicate)
        target = model.entities.index(triple.object)
        competitors = [
            (triple.subject, triple.predicate, entity)
            for entity in model.entities]
    else:
        scores = model.score_all_heads(triple.predicate, triple.object)
        target = model.entities.index(triple.subject)
        competitors = [
            (entity, triple.predicate, triple.object)
            for entity in model.entities]
    target_score = scores[target]
    rank = 1
    for i, candidate in enumerate(competitors):
        if i == target:
            continue
        if candidate in known:
            continue  # filtered protocol: other true facts are not errors
        if scores[i] > target_score:
            rank += 1
    return rank


def complete(model: TransE, relation: str, *, top_k: int = 10,
             head_filter=None, tail_filter=None,
             ) -> list[tuple[str, str, str, float]]:
    """Propose the top-k *new* triples for a relation (KG completion).

    Scores every (h, relation, t) pair, drops the already-known facts and
    reflexive pairs, and returns (head, relation, tail, score) best first.

    ``head_filter`` / ``tail_filter`` are optional predicates on entity
    names — the natural place to plug in ontology knowledge, e.g. only
    accept tails the RDFS reasoner typed with the relation's range (the
    two Section 2.3 producers composed: deduction constrains learning).
    """
    heads = [e for e in model.entities if head_filter is None or head_filter(e)]
    tails = [(i, e) for i, e in enumerate(model.entities)
             if tail_filter is None or tail_filter(e)]
    proposals: list[tuple[str, str, str, float]] = []
    for head in heads:
        scores = model.score_all_tails(head, relation)
        for i, tail in tails:
            if tail == head or model.knows_triple(head, relation, tail):
                continue
            proposals.append((head, relation, tail, float(scores[i])))
    proposals.sort(key=lambda item: -item[3])
    return proposals[:top_k]
