"""TransE (Bordes et al., NeurIPS 2013): translation embeddings for KGs.

The model embeds entities and relations in R^d and scores a triple
(h, r, t) by -||e_h + e_r - e_t||; training minimizes a margin ranking
loss between observed triples and corrupted ones (head or tail replaced by
a random entity), with entity vectors renormalized to the unit ball each
step — the original paper's recipe, implemented in numpy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import EstimationError
from repro.models.rdf import Triple
from repro.util.rng import make_rng


@dataclass(frozen=True)
class TrainConfig:
    """Training hyper-parameters (defaults suit the small synthetic KGs)."""

    dimension: int = 24
    margin: float = 1.0
    learning_rate: float = 0.05
    epochs: int = 200
    batch_size: int = 64
    norm: int = 1  # L1 or L2 dissimilarity, as in the original paper

    def __post_init__(self) -> None:
        if self.dimension < 1 or self.epochs < 0 or self.batch_size < 1:
            raise EstimationError("invalid TransE configuration")
        if self.norm not in (1, 2):
            raise EstimationError("norm must be 1 (L1) or 2 (L2)")


class TransE:
    """A trained (or trainable) TransE model over a fixed vocabulary."""

    def __init__(self, triples: Iterable[Triple | tuple[str, str, str]],
                 config: TrainConfig = TrainConfig(),
                 rng: int | random.Random | None = 0) -> None:
        self.triples = [Triple(*t) for t in triples]
        if not self.triples:
            raise EstimationError("cannot embed an empty knowledge graph")
        self.config = config
        self._rng = make_rng(rng)
        self.entities = sorted({t.subject for t in self.triples}
                               | {t.object for t in self.triples})
        self.relations = sorted({t.predicate for t in self.triples})
        self._entity_index = {e: i for i, e in enumerate(self.entities)}
        self._relation_index = {r: i for i, r in enumerate(self.relations)}
        seed = self._rng.randrange(2 ** 31)
        generator = np.random.default_rng(seed)
        bound = 6.0 / np.sqrt(config.dimension)
        self.entity_vectors = generator.uniform(
            -bound, bound, (len(self.entities), config.dimension))
        self.relation_vectors = generator.uniform(
            -bound, bound, (len(self.relations), config.dimension))
        norms = np.linalg.norm(self.relation_vectors, axis=1, keepdims=True)
        self.relation_vectors /= np.maximum(norms, 1e-12)
        self._train_ids = np.array(
            [[self._entity_index[t.subject], self._relation_index[t.predicate],
              self._entity_index[t.object]] for t in self.triples])
        self._known = {(t.subject, t.predicate, t.object) for t in self.triples}

    # -- scoring -------------------------------------------------------------

    def score(self, head: str, relation: str, tail: str) -> float:
        """-(dissimilarity); larger is more plausible."""
        h = self.entity_vectors[self._require_entity(head)]
        r = self.relation_vectors[self._require_relation(relation)]
        t = self.entity_vectors[self._require_entity(tail)]
        return -float(self._distance(h + r - t))

    def score_all_tails(self, head: str, relation: str) -> np.ndarray:
        """Scores of (head, relation, e) for every entity e, vectorized."""
        h = self.entity_vectors[self._require_entity(head)]
        r = self.relation_vectors[self._require_relation(relation)]
        deltas = (h + r)[None, :] - self.entity_vectors
        return -self._distances(deltas)

    def score_all_heads(self, relation: str, tail: str) -> np.ndarray:
        r = self.relation_vectors[self._require_relation(relation)]
        t = self.entity_vectors[self._require_entity(tail)]
        deltas = self.entity_vectors + (r - t)[None, :]
        return -self._distances(deltas)

    def _distance(self, delta: np.ndarray) -> float:
        if self.config.norm == 1:
            return float(np.abs(delta).sum())
        return float(np.sqrt((delta * delta).sum()))

    def _distances(self, deltas: np.ndarray) -> np.ndarray:
        if self.config.norm == 1:
            return np.abs(deltas).sum(axis=1)
        return np.sqrt((deltas * deltas).sum(axis=1))

    # -- training --------------------------------------------------------------

    def train(self, *, epochs: int | None = None,
              log: list | None = None) -> "TransE":
        """Margin-ranking SGD with uniform negative sampling.

        Appends (epoch, mean loss) pairs to ``log`` when provided.  Returns
        self for chaining.
        """
        config = self.config
        epochs = config.epochs if epochs is None else epochs
        n_train = len(self._train_ids)
        n_entities = len(self.entities)
        rng = np.random.default_rng(self._rng.randrange(2 ** 31))
        for epoch in range(epochs):
            order = rng.permutation(n_train)
            losses = []
            for start in range(0, n_train, config.batch_size):
                batch = self._train_ids[order[start:start + config.batch_size]]
                corrupted = batch.copy()
                replace_head = rng.random(len(batch)) < 0.5
                random_entities = rng.integers(0, n_entities, len(batch))
                corrupted[replace_head, 0] = random_entities[replace_head]
                corrupted[~replace_head, 2] = random_entities[~replace_head]
                losses.append(self._sgd_step(batch, corrupted))
            if log is not None:
                log.append((epoch, float(np.mean(losses))))
        return self

    def _sgd_step(self, positive: np.ndarray, negative: np.ndarray) -> float:
        config = self.config
        e, r = self.entity_vectors, self.relation_vectors
        pos_delta = e[positive[:, 0]] + r[positive[:, 1]] - e[positive[:, 2]]
        neg_delta = e[negative[:, 0]] + r[negative[:, 1]] - e[negative[:, 2]]
        pos_dist = self._distances(pos_delta)
        neg_dist = self._distances(neg_delta)
        violation = config.margin + pos_dist - neg_dist
        active = violation > 0
        if not active.any():
            return 0.0
        # Sub-gradients of the distance wrt the delta vector.
        if config.norm == 1:
            pos_grad = np.sign(pos_delta[active])
            neg_grad = np.sign(neg_delta[active])
        else:
            pos_grad = pos_delta[active] / np.maximum(pos_dist[active, None], 1e-12)
            neg_grad = neg_delta[active] / np.maximum(neg_dist[active, None], 1e-12)
        lr = config.learning_rate
        for row, grad_p, grad_n in zip(
                np.flatnonzero(active), pos_grad, neg_grad):
            h, rel, t = positive[row]
            h2, _, t2 = negative[row]
            e[h] -= lr * grad_p
            r[rel] -= lr * grad_p
            e[t] += lr * grad_p
            e[h2] += lr * grad_n
            r[rel] += lr * grad_n
            e[t2] -= lr * grad_n
        # Renormalize entities to the unit ball (the TransE constraint).
        norms = np.linalg.norm(e, axis=1, keepdims=True)
        np.divide(e, np.maximum(norms, 1.0), out=e)
        return float(violation[active].mean())

    # -- vocabulary ------------------------------------------------------------

    def knows_triple(self, head: str, relation: str, tail: str) -> bool:
        return (head, relation, tail) in self._known

    def _require_entity(self, entity: str) -> int:
        try:
            return self._entity_index[entity]
        except KeyError:
            raise EstimationError(f"unknown entity {entity!r}") from None

    def _require_relation(self, relation: str) -> int:
        try:
            return self._relation_index[relation]
        except KeyError:
            raise EstimationError(f"unknown relation {relation!r}") from None

    def entity_vector(self, entity: str) -> np.ndarray:
        return self.entity_vectors[self._require_entity(entity)].copy()

    def nearest_entities(self, entity: str, k: int = 5) -> list[str]:
        """The k entities with the closest embedding (cosine-free, by norm)."""
        deltas = self.entity_vectors - self.entity_vector(entity)[None, :]
        order = np.argsort(self._distances(deltas))
        names = [self.entities[i] for i in order if self.entities[i] != entity]
        return names[:k]


def train_test_split(triples: Sequence[Triple], test_fraction: float = 0.2,
                     rng: int | random.Random | None = 0,
                     ) -> tuple[list[Triple], list[Triple]]:
    """Split triples for link prediction, keeping every entity and relation
    in the training side (standard protocol: unseen vocabulary is skipped
    rather than scored)."""
    rng = make_rng(rng)
    shuffled = list(triples)
    rng.shuffle(shuffled)
    cut = max(1, int(len(shuffled) * test_fraction))
    test = shuffled[:cut]
    train = shuffled[cut:]
    train_entities = {t.subject for t in train} | {t.object for t in train}
    train_relations = {t.predicate for t in train}
    usable_test = [t for t in test
                   if t.subject in train_entities and t.object in train_entities
                   and t.predicate in train_relations]
    moved_back = [t for t in test if t not in usable_test]
    return train + moved_back, usable_test
