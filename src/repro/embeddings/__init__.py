"""Knowledge graph embeddings: completion by learning (Section 2.3).

The paper: "we see the rapid development of knowledge graph embeddings
[19, 21], and its use in the refinement and completion of knowledge graphs
[36, 43, 52, 56]".  This package implements the reference model of that
line of work — TransE (Bordes et al. [19]) — from scratch over numpy:

- :class:`TransE` — entity/relation vectors with h + r ≈ t, trained by
  margin ranking with negative sampling.
- :mod:`repro.embeddings.evaluation` — the standard link-prediction
  protocol: filtered ranks, mean reciprocal rank, Hits@k.
- :func:`complete` — knowledge-graph completion: propose new triples whose
  score clears a threshold, the "producing knowledge" loop of §2.3.
"""

from repro.embeddings.transe import TransE, TrainConfig
from repro.embeddings.evaluation import (
    LinkPredictionReport,
    complete,
    evaluate_link_prediction,
)

__all__ = [
    "TransE", "TrainConfig",
    "evaluate_link_prediction", "LinkPredictionReport", "complete",
]
