"""Property graphs: (N, E, rho, lambda, sigma).

Extends labeled graphs with a partial function sigma mapping (object,
property-name) pairs to values, where an object is a node or an edge.  Each
object has values for finitely many properties.  This is the model of Neo4j
/ Cypher-style graph databases and of Figure 2(b) in the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.cache.versioning import ABSENT
from repro.models.labeled import LabeledGraph
from repro.models.multigraph import Const, MultiGraph


class PropertyGraph(LabeledGraph):
    """A labeled graph whose nodes and edges carry property/value maps."""

    def __init__(self) -> None:
        super().__init__()
        self._node_props: dict[Const, dict[Const, Const]] = {}
        self._edge_props: dict[Const, dict[Const, Const]] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: Const, label: Const | None = None,
                 properties: Mapping[Const, Const] | None = None) -> Const:
        fresh = node not in self._node_props
        super().add_node(node, label)
        store = self._node_props.setdefault(node, {})
        if properties:
            # Re-adding an existing node with properties is an in-place
            # update; the payload then carries per-property old values so
            # the write can be inverted, where a fresh node's payload only
            # needs the values themselves (inversion deletes the node).
            if fresh:
                detail = (node, tuple(properties.items()), "fresh")
            else:
                detail = (node, tuple((prop, store.get(prop, ABSENT), value)
                                      for prop, value in properties.items()),
                          "update")
            store.update(properties)
            self.mutation_log.record("add_node.props",
                                     properties=tuple(properties),
                                     payload=detail)
        return node

    def add_edge(self, edge: Const, source: Const, target: Const,
                 label: Const | None = None,
                 properties: Mapping[Const, Const] | None = None) -> Const:
        super().add_edge(edge, source, target, label)
        self._edge_props[edge] = dict(properties) if properties else {}
        if properties:
            self.mutation_log.record("add_edge.props",
                                     properties=tuple(properties),
                                     payload=(edge, source, target,
                                              tuple(properties.items())))
        return edge

    def remove_edge(self, edge: Const) -> None:
        source, target = self.endpoints(edge)
        label = self.edge_label(edge)
        props = self._edge_props[edge] if edge in self._edge_props else {}
        super().remove_edge(edge)
        del self._edge_props[edge]
        if props:
            self.mutation_log.record("remove_edge.props",
                                     properties=tuple(props),
                                     payload=(edge, source, target, label,
                                              tuple(props.items())))

    def remove_node(self, node: Const) -> None:
        label = self.node_label(node)
        props = self._node_props.get(node, {})
        super().remove_node(node)
        del self._node_props[node]
        if props:
            self.mutation_log.record("remove_node.props",
                                     properties=tuple(props),
                                     payload=(node, label,
                                              tuple(props.items())))

    # -- sigma -------------------------------------------------------------

    def set_node_property(self, node: Const, prop: Const, value: Const) -> None:
        self._require_node(node)
        store = self._node_props[node]
        if prop in store and store[prop] == value:
            return
        old = store.get(prop, ABSENT)
        store[prop] = value
        self.mutation_log.record("set_node_property", properties=(prop,),
                                 payload=(node, prop, old, value))

    def set_edge_property(self, edge: Const, prop: Const, value: Const) -> None:
        self.endpoints(edge)
        store = self._edge_props[edge]
        if prop in store and store[prop] == value:
            return
        old = store.get(prop, ABSENT)
        store[prop] = value
        self.mutation_log.record("set_edge_property", properties=(prop,),
                                 payload=(edge, prop, old, value))

    def delete_node_property(self, node: Const, prop: Const) -> None:
        """Make sigma(node, prop) undefined again; a missing prop is a no-op."""
        self._require_node(node)
        store = self._node_props[node]
        if prop not in store:
            return
        old = store.pop(prop)
        self.mutation_log.record("del_node_property", properties=(prop,),
                                 payload=(node, prop, old))

    def delete_edge_property(self, edge: Const, prop: Const) -> None:
        """Make sigma(edge, prop) undefined again; a missing prop is a no-op."""
        self.endpoints(edge)
        store = self._edge_props[edge]
        if prop not in store:
            return
        old = store.pop(prop)
        self.mutation_log.record("del_edge_property", properties=(prop,),
                                 payload=(edge, prop, old))

    def node_property(self, node: Const, prop: Const) -> Const | None:
        """sigma(node, prop), or None where sigma is undefined."""
        self._require_node(node)
        return self._node_props[node].get(prop)

    def edge_property(self, edge: Const, prop: Const) -> Const | None:
        """sigma(edge, prop), or None where sigma is undefined."""
        self.endpoints(edge)
        return self._edge_props[edge].get(prop)

    def node_properties(self, node: Const) -> dict[Const, Const]:
        self._require_node(node)
        return dict(self._node_props[node])

    def edge_properties(self, edge: Const) -> dict[Const, Const]:
        self.endpoints(edge)
        return dict(self._edge_props[edge])

    def property_names(self) -> set[Const]:
        """Every property name used anywhere in the graph (the sigma domain)."""
        names: set[Const] = set()
        for props in self._node_props.values():
            names.update(props)
        for props in self._edge_props.values():
            names.update(props)
        return names

    # -- equality ----------------------------------------------------------

    def _eq_signature(self) -> tuple:
        return super()._eq_signature() + (self._node_props, self._edge_props)

    # -- derived graphs ----------------------------------------------------

    def _copy_structure_from(self, other: MultiGraph) -> None:
        if not isinstance(other, PropertyGraph):
            super()._copy_structure_from(other)
            return
        for node in other.nodes():
            self.add_node(node, other.node_label(node), other.node_properties(node))
        for edge in other.edges():
            source, target = other.endpoints(edge)
            self.add_edge(edge, source, target, other.edge_label(edge),
                          other.edge_properties(edge))

    # -- bulk loading ------------------------------------------------------

    @classmethod
    def build(cls,
              nodes: Iterable[tuple],
              edges: Iterable[tuple],
              ) -> "PropertyGraph":
        """Build from (node, label[, props]) and (edge, src, dst, label[, props])."""
        graph = cls()
        for row in nodes:
            graph.add_node(*row)
        for row in edges:
            graph.add_edge(*row)
        return graph
