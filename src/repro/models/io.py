"""JSON (de)serialization for the graph data models.

A small, stable interchange format so examples and benchmarks can persist
generated workloads.  Only property graphs and vector graphs need their own
shapes; labeled graphs ride on the property-graph format with empty
property maps.

The format serializes graph *content* only: the version counter and
mutation log (:mod:`repro.cache.versioning`) are deliberately excluded.
They describe one in-process object's history, not the graph, so a loaded
graph always starts at a fresh version with an empty log — ``loads(dumps(g))
== g`` compares structure and data, never histories.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any

from repro.errors import ConversionError, GraphDecodeError, GraphError
from repro.models.labeled import LabeledGraph
from repro.models.property import PropertyGraph
from repro.models.vector import VectorGraph, VectorSchema
from repro.util import canonical_sort_key


@contextmanager
def _decoding(field: str):
    """Convert raw decode-time failures into :class:`GraphDecodeError`.

    A malformed document raises ``KeyError`` (missing key), ``TypeError``
    (a list where a dict belongs), ``ValueError`` (bad scalar) or
    :class:`GraphError` (ids that contradict each other, e.g. a duplicate
    edge) somewhere deep in graph construction.  Callers — WAL/snapshot
    recovery above all — need to tell *corrupt input* apart from library
    bugs, so every such escape is re-raised as a typed error carrying the
    document coordinate it happened at.
    """
    try:
        yield
    except GraphDecodeError:
        raise
    except KeyError as error:
        raise GraphDecodeError(f"missing key {error.args[0]!r}",
                               field=field) from error
    except (TypeError, ValueError, AttributeError, GraphError) as error:
        raise GraphDecodeError(str(error), field=field) from error


def _items(data: dict[str, Any], key: str, field: str) -> list:
    with _decoding(field):
        items = data[key]
        if not isinstance(items, list):
            raise TypeError(f"{key!r} must be a list, "
                            f"got {type(items).__name__}")
    return items


def property_graph_to_dict(graph: PropertyGraph) -> dict[str, Any]:
    """Plain-dict form: {"nodes": [...], "edges": [...]}, sorted for stability."""
    nodes = [
        {"id": node, "label": graph.node_label(node),
         "properties": graph.node_properties(node)}
        for node in sorted(graph.nodes(), key=canonical_sort_key)
    ]
    edges = []
    for edge in sorted(graph.edges(), key=canonical_sort_key):
        source, target = graph.endpoints(edge)
        edges.append({"id": edge, "source": source, "target": target,
                      "label": graph.edge_label(edge),
                      "properties": graph.edge_properties(edge)})
    return {"model": "property", "nodes": nodes, "edges": edges}


def property_graph_from_dict(data: dict[str, Any]) -> PropertyGraph:
    if data.get("model") != "property":
        raise ConversionError(f"not a property-graph document: {data.get('model')!r}")
    graph = PropertyGraph()
    for index, node in enumerate(_items(data, "nodes", "nodes")):
        with _decoding(f"nodes[{index}]"):
            graph.add_node(node["id"], node.get("label", ""),
                           node.get("properties", {}))
    for index, edge in enumerate(_items(data, "edges", "edges")):
        with _decoding(f"edges[{index}]"):
            graph.add_edge(edge["id"], edge["source"], edge["target"],
                           edge.get("label", ""), edge.get("properties", {}))
    return graph


def labeled_graph_to_dict(graph: LabeledGraph) -> dict[str, Any]:
    from repro.models.convert import labeled_to_property

    document = property_graph_to_dict(labeled_to_property(graph))
    document["model"] = "labeled"
    return document


def labeled_graph_from_dict(data: dict[str, Any]) -> LabeledGraph:
    if data.get("model") != "labeled":
        raise ConversionError(f"not a labeled-graph document: {data.get('model')!r}")
    graph = LabeledGraph()
    for index, node in enumerate(_items(data, "nodes", "nodes")):
        with _decoding(f"nodes[{index}]"):
            graph.add_node(node["id"], node.get("label", ""))
    for index, edge in enumerate(_items(data, "edges", "edges")):
        with _decoding(f"edges[{index}]"):
            graph.add_edge(edge["id"], edge["source"], edge["target"],
                           edge.get("label", ""))
    return graph


def vector_graph_to_dict(graph: VectorGraph) -> dict[str, Any]:
    nodes = [{"id": node, "vector": list(graph.node_vector(node))}
             for node in sorted(graph.nodes(), key=canonical_sort_key)]
    edges = []
    for edge in sorted(graph.edges(), key=canonical_sort_key):
        source, target = graph.endpoints(edge)
        edges.append({"id": edge, "source": source, "target": target,
                      "vector": list(graph.edge_vector(edge))})
    schema = list(graph.schema.feature_names) if graph.schema else None
    return {"model": "vector", "dimension": graph.dimension, "schema": schema,
            "nodes": nodes, "edges": edges}


def vector_graph_from_dict(data: dict[str, Any]) -> VectorGraph:
    if data.get("model") != "vector":
        raise ConversionError(f"not a vector-graph document: {data.get('model')!r}")
    with _decoding("dimension"):
        schema = VectorSchema(tuple(data["schema"])) if data.get("schema") else None
        graph = VectorGraph(data["dimension"], schema)
    for index, node in enumerate(_items(data, "nodes", "nodes")):
        with _decoding(f"nodes[{index}]"):
            graph.add_node(node["id"], node["vector"])
    for index, edge in enumerate(_items(data, "edges", "edges")):
        with _decoding(f"edges[{index}]"):
            graph.add_edge(edge["id"], edge["source"], edge["target"],
                           edge["vector"])
    return graph


def dumps(graph: LabeledGraph | PropertyGraph | VectorGraph, indent: int = 0) -> str:
    """Serialize any supported model to a JSON string."""
    if isinstance(graph, VectorGraph):
        document = vector_graph_to_dict(graph)
    elif isinstance(graph, PropertyGraph):
        document = property_graph_to_dict(graph)
    elif isinstance(graph, LabeledGraph):
        document = labeled_graph_to_dict(graph)
    else:
        raise ConversionError(f"unsupported graph type: {type(graph).__name__}")
    return json.dumps(document, indent=indent or None, sort_keys=True)


def loads(text: str) -> LabeledGraph | PropertyGraph | VectorGraph:
    """Deserialize a JSON string produced by :func:`dumps`.

    Malformed input — invalid JSON, a non-object document, missing or
    ill-typed fields — raises :class:`GraphDecodeError` (a
    :class:`ConversionError`) carrying line/field context, never a raw
    ``KeyError``/``ValueError``.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise GraphDecodeError(f"invalid JSON: {error.msg}",
                               line=error.lineno,
                               column=error.colno) from error
    if not isinstance(data, dict):
        raise GraphDecodeError(
            f"graph document must be a JSON object, "
            f"got {type(data).__name__}", field="$")
    model = data.get("model")
    if model == "vector":
        return vector_graph_from_dict(data)
    if model == "property":
        return property_graph_from_dict(data)
    if model == "labeled":
        return labeled_graph_from_dict(data)
    raise GraphDecodeError(f"unknown model tag: {model!r}", field="model")
