"""Labeled graphs: (N, E, rho, lambda) with lambda : N u E -> Const.

Both nodes and edges carry exactly one label, as in Figure 2(a) of the
paper ("heterogeneous graphs" in the literature; the paper prefers the plain
term *labeled graph*).

Beyond the bare model, this class maintains the *label-indexed adjacency*
that real graph engines (MillenniumDB, Neo4j) key their storage on: for
every (node, edge-label) pair the incident edges are available in O(1),
so a label-selective navigation step ``(a)-[:contact]->(b)`` touches only
matching edges instead of scanning the whole incidence list.  The RPQ
product construction (:mod:`repro.core.rpq.product`) drives its fast path
through this index.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import GraphError
from repro.models.multigraph import Const, MultiGraph

DEFAULT_LABEL = ""

_EMPTY: dict = {}


class LabeledGraph(MultiGraph):
    """A multigraph whose nodes and edges each carry one label.

    Secondary indexes, maintained incrementally through every mutation:

    - ``(source, label) -> {edge}`` and ``(target, label) -> {edge}``
      adjacency (insertion-ordered, so iteration is deterministic);
    - ``label -> {node}`` for :meth:`nodes_with_label`;
    - ``label -> {edge}`` for :meth:`edges_with_label`.
    """

    def __init__(self) -> None:
        super().__init__()
        self._node_labels: dict[Const, Const] = {}
        self._edge_labels: dict[Const, Const] = {}
        self._out_by_label: dict[tuple[Const, Const], dict[Const, None]] = {}
        self._in_by_label: dict[tuple[Const, Const], dict[Const, None]] = {}
        self._nodes_by_label: dict[Const, dict[Const, None]] = {}
        self._edges_by_label: dict[Const, dict[Const, None]] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: Const, label: Const | None = None) -> Const:
        """Add a node with a label.

        Re-adding an existing node with a *different* label is an error; with
        the same label (or no label) it is a no-op, so graphs can be merged.
        """
        existing = self._node_labels.get(node)
        if existing is not None and label is not None and existing != label:
            raise GraphError(
                f"node {node!r} already has label {existing!r}, not {label!r}")
        super().add_node(node)
        if node not in self._node_labels:
            resolved = DEFAULT_LABEL if label is None else label
            self._node_labels[node] = resolved
            self._nodes_by_label.setdefault(resolved, {})[node] = None
            self.mutation_log.record("add_node.label",
                                     node_labels=(resolved,),
                                     payload=(node, resolved))
        return node

    def add_edge(self, edge: Const, source: Const, target: Const,
                 label: Const | None = None) -> Const:
        super().add_edge(edge, source, target)
        resolved = DEFAULT_LABEL if label is None else label
        self._edge_labels[edge] = resolved
        self._index_edge(edge, source, target, resolved)
        self.mutation_log.record("add_edge.label", edge_labels=(resolved,),
                                 payload=(edge, source, target, resolved))
        return edge

    def remove_edge(self, edge: Const) -> None:
        source, target = self.endpoints(edge)
        label = self._edge_labels[edge]
        super().remove_edge(edge)
        del self._edge_labels[edge]
        self._unindex_edge(edge, source, target, label)
        self.mutation_log.record("remove_edge.label", edge_labels=(label,),
                                 payload=(edge, source, target, label))

    def remove_node(self, node: Const) -> None:
        label = self.node_label(node)
        super().remove_node(node)
        del self._node_labels[node]
        self._discard_from_bucket(self._nodes_by_label, label, node)
        self.mutation_log.record("remove_node.label", node_labels=(label,),
                                 payload=(node, label))

    def _index_edge(self, edge: Const, source: Const, target: Const,
                    label: Const) -> None:
        self._out_by_label.setdefault((source, label), {})[edge] = None
        self._in_by_label.setdefault((target, label), {})[edge] = None
        self._edges_by_label.setdefault(label, {})[edge] = None

    def _unindex_edge(self, edge: Const, source: Const, target: Const,
                      label: Const) -> None:
        self._discard_from_bucket(self._out_by_label, (source, label), edge)
        self._discard_from_bucket(self._in_by_label, (target, label), edge)
        self._discard_from_bucket(self._edges_by_label, label, edge)

    @staticmethod
    def _discard_from_bucket(index: dict, key, member) -> None:
        bucket = index.get(key)
        if bucket is not None:
            bucket.pop(member, None)
            if not bucket:
                del index[key]

    # -- labels ------------------------------------------------------------

    def node_label(self, node: Const) -> Const:
        self._require_node(node)
        return self._node_labels[node]

    def edge_label(self, edge: Const) -> Const:
        self.endpoints(edge)  # raises UnknownEdgeError if missing
        return self._edge_labels[edge]

    def set_node_label(self, node: Const, label: Const) -> None:
        self._require_node(node)
        old = self._node_labels[node]
        if old == label:
            return
        self._node_labels[node] = label
        self._discard_from_bucket(self._nodes_by_label, old, node)
        self._nodes_by_label.setdefault(label, {})[node] = None
        self.mutation_log.record("set_node_label", node_labels=(old, label),
                                 payload=(node, old, label))

    def set_edge_label(self, edge: Const, label: Const) -> None:
        source, target = self.endpoints(edge)
        old = self._edge_labels[edge]
        if old == label:
            return
        self._edge_labels[edge] = label
        self._unindex_edge(edge, source, target, old)
        self._index_edge(edge, source, target, label)
        self.mutation_log.record("set_edge_label", edge_labels=(old, label),
                                 payload=(edge, old, label))

    def nodes_with_label(self, label: Const) -> Iterator[Const]:
        """All nodes n with lambda(n) = label (O(1) index hit)."""
        return iter(self._nodes_by_label.get(label, _EMPTY))

    def edges_with_label(self, label: Const) -> Iterator[Const]:
        return iter(self._edges_by_label.get(label, _EMPTY))

    def node_label_set(self) -> set[Const]:
        return set(self._nodes_by_label)

    def edge_label_set(self) -> set[Const]:
        return set(self._edges_by_label)

    # -- label-indexed adjacency -------------------------------------------

    def out_edges_with_label(self, node: Const, label: Const) -> list[Const]:
        """Outgoing edges of ``node`` labeled ``label`` (fresh list)."""
        self._require_node(node)
        return list(self._out_by_label.get((node, label), _EMPTY))

    def in_edges_with_label(self, node: Const, label: Const) -> list[Const]:
        """Incoming edges of ``node`` labeled ``label`` (fresh list)."""
        self._require_node(node)
        return list(self._in_by_label.get((node, label), _EMPTY))

    def iter_out_edges_with_label(self, node: Const,
                                  label: Const) -> Iterable[Const]:
        """Zero-copy view of outgoing ``label``-edges; don't mutate while iterating."""
        self._require_node(node)
        bucket = self._out_by_label.get((node, label))
        return bucket.keys() if bucket is not None else ()

    def iter_in_edges_with_label(self, node: Const,
                                 label: Const) -> Iterable[Const]:
        """Zero-copy view of incoming ``label``-edges; don't mutate while iterating."""
        self._require_node(node)
        bucket = self._in_by_label.get((node, label))
        return bucket.keys() if bucket is not None else ()

    def label_adjacency_index(self) -> tuple[dict, dict]:
        """The raw ``(node, label) -> edge-bucket`` dicts, (out, in).

        Read-only view for bulk consumers (the product construction) that
        probe the index once per node per transition and cannot afford a
        method call plus membership check on every probe.  Iterating a
        bucket yields its edges in insertion order.  Callers must not
        mutate the dicts, and must only probe nodes they obtained from
        this graph.
        """
        return self._out_by_label, self._in_by_label

    # -- equality ----------------------------------------------------------

    def _eq_signature(self) -> tuple:
        return super()._eq_signature() + (self._node_labels, self._edge_labels)

    # -- derived graphs ----------------------------------------------------

    def copy(self) -> "LabeledGraph":
        clone = type(self)()
        clone._copy_structure_from(self)
        return clone

    def _copy_structure_from(self, other: MultiGraph) -> None:
        if not isinstance(other, LabeledGraph):
            super()._copy_structure_from(other)
            return
        for node in other.nodes():
            self.add_node(node, other.node_label(node))
        for edge in other.edges():
            source, target = other.endpoints(edge)
            self.add_edge(edge, source, target, other.edge_label(edge))

    # -- bulk loading ------------------------------------------------------

    @classmethod
    def build(cls,
              nodes: Iterable[tuple[Const, Const]],
              edges: Iterable[tuple[Const, Const, Const, Const]],
              ) -> "LabeledGraph":
        """Build from (node, label) and (edge, source, target, label) rows."""
        graph = cls()
        for node, label in nodes:
            graph.add_node(node, label)
        for edge, source, target, label in edges:
            graph.add_edge(edge, source, target, label)
        return graph
