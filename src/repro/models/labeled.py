"""Labeled graphs: (N, E, rho, lambda) with lambda : N u E -> Const.

Both nodes and edges carry exactly one label, as in Figure 2(a) of the
paper ("heterogeneous graphs" in the literature; the paper prefers the plain
term *labeled graph*).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import GraphError
from repro.models.multigraph import Const, MultiGraph

DEFAULT_LABEL = ""


class LabeledGraph(MultiGraph):
    """A multigraph whose nodes and edges each carry one label."""

    def __init__(self) -> None:
        super().__init__()
        self._node_labels: dict[Const, Const] = {}
        self._edge_labels: dict[Const, Const] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: Const, label: Const | None = None) -> Const:
        """Add a node with a label.

        Re-adding an existing node with a *different* label is an error; with
        the same label (or no label) it is a no-op, so graphs can be merged.
        """
        existing = self._node_labels.get(node)
        if existing is not None and label is not None and existing != label:
            raise GraphError(
                f"node {node!r} already has label {existing!r}, not {label!r}")
        super().add_node(node)
        if node not in self._node_labels:
            self._node_labels[node] = DEFAULT_LABEL if label is None else label
        return node

    def add_edge(self, edge: Const, source: Const, target: Const,
                 label: Const | None = None) -> Const:
        super().add_edge(edge, source, target)
        self._edge_labels[edge] = DEFAULT_LABEL if label is None else label
        return edge

    def remove_edge(self, edge: Const) -> None:
        super().remove_edge(edge)
        del self._edge_labels[edge]

    def remove_node(self, node: Const) -> None:
        super().remove_node(node)
        del self._node_labels[node]

    # -- labels ------------------------------------------------------------

    def node_label(self, node: Const) -> Const:
        self._require_node(node)
        return self._node_labels[node]

    def edge_label(self, edge: Const) -> Const:
        self.endpoints(edge)  # raises UnknownEdgeError if missing
        return self._edge_labels[edge]

    def set_node_label(self, node: Const, label: Const) -> None:
        self._require_node(node)
        self._node_labels[node] = label

    def set_edge_label(self, edge: Const, label: Const) -> None:
        self.endpoints(edge)
        self._edge_labels[edge] = label

    def nodes_with_label(self, label: Const) -> Iterator[Const]:
        """All nodes n with lambda(n) = label (linear scan; stores index this)."""
        return (n for n, l in self._node_labels.items() if l == label)

    def edges_with_label(self, label: Const) -> Iterator[Const]:
        return (e for e, l in self._edge_labels.items() if l == label)

    def node_label_set(self) -> set[Const]:
        return set(self._node_labels.values())

    def edge_label_set(self) -> set[Const]:
        return set(self._edge_labels.values())

    # -- derived graphs ----------------------------------------------------

    def copy(self) -> "LabeledGraph":
        clone = type(self)()
        clone._copy_structure_from(self)
        return clone

    def _copy_structure_from(self, other: MultiGraph) -> None:
        if not isinstance(other, LabeledGraph):
            super()._copy_structure_from(other)
            return
        for node in other.nodes():
            self.add_node(node, other.node_label(node))
        for edge in other.edges():
            source, target = other.endpoints(edge)
            self.add_edge(edge, source, target, other.edge_label(edge))

    # -- bulk loading ------------------------------------------------------

    @classmethod
    def build(cls,
              nodes: Iterable[tuple[Const, Const]],
              edges: Iterable[tuple[Const, Const, Const, Const]],
              ) -> "LabeledGraph":
        """Build from (node, label) and (edge, source, target, label) rows."""
        graph = cls()
        for node, label in nodes:
            graph.add_node(node, label)
        for edge, source, target, label in edges:
            graph.add_edge(edge, source, target, label)
        return graph
