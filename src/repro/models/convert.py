"""Conversions between the graph data models of Section 3.

Figure 2 of the paper shows the *same* data as a labeled graph, a property
graph and a vector-labeled graph.  These functions make that relationship
executable, and the test suite checks the expected round-trips:

- labeled -> property -> labeled is the identity (properties start empty);
- property -> vector -> property is the identity given the derived schema;
- labeled -> rdf -> labeled preserves the reachable structure (RDF has no
  edge identifiers, so fresh ids are minted on the way back and parallel
  same-label edges collapse — exactly the information RDF cannot express).
"""

from __future__ import annotations

from repro.errors import ConversionError
from repro.models.labeled import LabeledGraph
from repro.models.multigraph import Const
from repro.models.property import PropertyGraph
from repro.models.rdf import RDF_TYPE, RDFGraph
from repro.models.vector import BOTTOM, VectorGraph, VectorSchema


def labeled_to_property(graph: LabeledGraph) -> PropertyGraph:
    """Embed a labeled graph as a property graph with empty sigma."""
    result = PropertyGraph()
    for node in graph.nodes():
        result.add_node(node, graph.node_label(node))
    for edge in graph.edges():
        source, target = graph.endpoints(edge)
        result.add_edge(edge, source, target, graph.edge_label(edge))
    return result


def property_to_labeled(graph: PropertyGraph) -> LabeledGraph:
    """Forget sigma, keeping the underlying labeled graph of Figure 2(a)."""
    result = LabeledGraph()
    for node in graph.nodes():
        result.add_node(node, graph.node_label(node))
    for edge in graph.edges():
        source, target = graph.endpoints(edge)
        result.add_edge(edge, source, target, graph.edge_label(edge))
    return result


def derive_schema(graph: PropertyGraph) -> VectorSchema:
    """Schema used by :func:`property_to_vector`: label first, then sorted properties."""
    names = sorted(str(p) for p in graph.property_names())
    return VectorSchema.for_label_and_properties(names)


def property_to_vector(graph: PropertyGraph,
                       schema: VectorSchema | None = None) -> VectorGraph:
    """Encode labels and properties as feature vectors, as in Figure 2(c).

    Feature 1 holds the label; feature i > 1 holds the value of the i-th
    schema property, or ``BOTTOM`` where sigma is undefined.
    """
    if schema is None:
        schema = derive_schema(graph)
    if not schema.feature_names or schema.feature_names[0] != "label":
        raise ConversionError("vector schema for a property graph must start with 'label'")
    result = VectorGraph(schema.dimension, schema)
    props = schema.feature_names[1:]

    def node_vec(node: Const) -> tuple[Const, ...]:
        values = graph.node_properties(node)
        return (graph.node_label(node),
                *(values.get(p, BOTTOM) for p in props))

    def edge_vec(edge: Const) -> tuple[Const, ...]:
        values = graph.edge_properties(edge)
        return (graph.edge_label(edge),
                *(values.get(p, BOTTOM) for p in props))

    for node in graph.nodes():
        result.add_node(node, node_vec(node))
    for edge in graph.edges():
        source, target = graph.endpoints(edge)
        result.add_edge(edge, source, target, edge_vec(edge))
    return result


def vector_to_property(graph: VectorGraph) -> PropertyGraph:
    """Inverse of :func:`property_to_vector` for schema-carrying vector graphs."""
    schema = graph.schema
    if schema is None:
        raise ConversionError("vector graph has no schema; cannot name properties")
    if not schema.feature_names or schema.feature_names[0] != "label":
        raise ConversionError("vector schema must start with 'label'")
    props = schema.feature_names[1:]
    result = PropertyGraph()
    for node in graph.nodes():
        vector = graph.node_vector(node)
        values = {p: v for p, v in zip(props, vector[1:]) if v != BOTTOM}
        result.add_node(node, vector[0], values)
    for edge in graph.edges():
        source, target = graph.endpoints(edge)
        vector = graph.edge_vector(edge)
        values = {p: v for p, v in zip(props, vector[1:]) if v != BOTTOM}
        result.add_edge(edge, source, target, vector[0], values)
    return result


def labeled_to_rdf(graph: LabeledGraph) -> RDFGraph:
    """Encode a labeled graph as RDF triples.

    Node labels become ``(node, rdf:type, label)`` triples; each edge becomes
    ``(source, label, target)``.  Edge identifiers are dropped — RDF replaces
    identified edges by triples, as the paper points out — so parallel edges
    with the same label collapse.
    """
    result = RDFGraph()
    for node in graph.nodes():
        result.add(str(node), RDF_TYPE, str(graph.node_label(node)))
    for edge in graph.edges():
        source, target = graph.endpoints(edge)
        result.add(str(source), str(graph.edge_label(edge)), str(target))
    return result


def rdf_to_labeled(graph: RDFGraph, edge_prefix: str = "t") -> LabeledGraph:
    """Decode RDF into a labeled graph, minting fresh edge identifiers.

    ``rdf:type`` triples whose object does not itself appear as a subject or
    an object of a data triple are read back as node labels; every other
    triple becomes one labeled edge.
    """
    result = LabeledGraph()
    data_triples = []
    type_triples = []
    for triple in graph.triples():
        if triple.predicate == RDF_TYPE:
            type_triples.append(triple)
        else:
            data_triples.append(triple)
    entity_nodes = {t.subject for t in data_triples} | {t.object for t in data_triples}
    entity_nodes.update(t.subject for t in type_triples)

    labels: dict[str, str] = {}
    for triple in type_triples:
        if triple.subject in labels and labels[triple.subject] != triple.object:
            raise ConversionError(
                f"resource {triple.subject!r} has multiple rdf:type labels; "
                "labeled graphs carry exactly one label per node")
        labels[triple.subject] = triple.object

    for node in sorted(entity_nodes):
        result.add_node(node, labels.get(node, ""))
    for counter, triple in enumerate(sorted(data_triples), start=1):
        result.add_edge(f"{edge_prefix}{counter}", triple.subject, triple.object,
                        triple.predicate)
    return result
