"""The running-example graphs of Figure 2.

The paper's Figure 2 shows one dataset — people, their contacts, the bus
they ride, where they live and the company that owns the bus — in three
models.  The construction below follows the textual description: the
property graph adds "the name and age of a person, the zip code of the
address for two people that live together, the date when someone rides a
bus, and the date a contact between two people occurs"; the vector graph
places the label in feature 1 and the contact date in feature 5, so the
paper's rewritten regex ``(f1 = person)/(f1 = contact & f5 = 3/4/21)/?(f1 =
infected)`` works verbatim.

On this graph the paper's worked examples hold:

- ``?person/contact/?infected`` (eq. 2) answers with the single path
  ``n1 e3 n2``;
- ``?person/(contact & date=3/4/21)/?infected`` (eq. 3) keeps that answer on
  the property graph;
- ``?person/rides/?bus/rides^-/?infected`` finds who shared bus n3 with the
  infected person.
"""

from __future__ import annotations

from repro.models.convert import property_to_vector
from repro.models.property import PropertyGraph
from repro.models.labeled import LabeledGraph
from repro.models.vector import VectorGraph, VectorSchema

#: Schema that matches the paper's feature numbering (f1=label ... f5=date).
FIGURE2_SCHEMA = VectorSchema(("label", "name", "age", "zip", "date"))


def figure2_property() -> PropertyGraph:
    """Figure 2(b): the property graph."""
    graph = PropertyGraph()
    graph.add_node("n1", "person", {"name": "Julia", "age": "42"})
    graph.add_node("n2", "infected", {"name": "Pedro", "age": "35"})
    graph.add_node("n3", "bus")
    graph.add_node("n4", "person", {"name": "Ana", "age": "27"})
    graph.add_node("n5", "address", {"zip": "8320000"})
    graph.add_node("n6", "company", {"name": "TransSur"})
    graph.add_node("n7", "person", {"name": "Juan", "age": "60"})

    graph.add_edge("e1", "n1", "n3", "rides", {"date": "3/3/21"})
    graph.add_edge("e2", "n2", "n3", "rides", {"date": "3/3/21"})
    graph.add_edge("e3", "n1", "n2", "contact", {"date": "3/4/21"})
    graph.add_edge("e4", "n1", "n5", "lives")
    graph.add_edge("e5", "n4", "n5", "lives")
    graph.add_edge("e6", "n6", "n3", "owns")
    graph.add_edge("e7", "n4", "n1", "contact", {"date": "3/5/21"})
    graph.add_edge("e8", "n7", "n3", "rides", {"date": "3/6/21"})
    return graph


def figure2_labeled() -> LabeledGraph:
    """Figure 2(a): the labeled graph (the property graph minus sigma)."""
    from repro.models.convert import property_to_labeled

    return property_to_labeled(figure2_property())


def figure2_vector() -> VectorGraph:
    """Figure 2(c): the vector-labeled graph of dimension 5."""
    return property_to_vector(figure2_property(), FIGURE2_SCHEMA)
