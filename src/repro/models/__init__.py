"""Graph data models from Section 3 of the paper.

The paper presents a unifying view of four models, all built on the same
notion of *multigraph* (nodes, edges, an incidence function rho):

- :class:`MultiGraph` — the bare (N, E, rho) structure.
- :class:`LabeledGraph` — adds lambda: (N u E) -> Const (Figure 2(a)).
- :class:`RDFGraph` — triples (s, p, o); a labeled graph without edge ids.
- :class:`PropertyGraph` — adds the partial sigma: (N u E) x Const -> Const
  (Figure 2(b)).
- :class:`VectorGraph` — lambda maps every node/edge to a d-dimensional
  vector of constants, unifying labels and properties (Figure 2(c)).

:mod:`repro.models.convert` provides the conversions that make Figure 2
executable; :mod:`repro.models.figures` builds the figure's graphs.
"""

from repro.models.multigraph import MultiGraph
from repro.models.labeled import LabeledGraph
from repro.models.rdf import RDFGraph, Triple
from repro.models.property import PropertyGraph
from repro.models.vector import BOTTOM, VectorGraph, VectorSchema
from repro.models.convert import (
    labeled_to_property,
    labeled_to_rdf,
    property_to_labeled,
    property_to_vector,
    rdf_to_labeled,
    vector_to_property,
)
from repro.models.figures import figure2_labeled, figure2_property, figure2_vector

__all__ = [
    "MultiGraph",
    "LabeledGraph",
    "RDFGraph",
    "Triple",
    "PropertyGraph",
    "VectorGraph",
    "VectorSchema",
    "BOTTOM",
    "labeled_to_property",
    "labeled_to_rdf",
    "property_to_labeled",
    "property_to_vector",
    "rdf_to_labeled",
    "vector_to_property",
    "figure2_labeled",
    "figure2_property",
    "figure2_vector",
]
