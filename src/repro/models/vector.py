"""Vector-labeled graphs: lambda maps every node and edge to a d-vector.

The paper introduces this model to unify labels and properties and to feed
message-passing algorithms (Weisfeiler-Lehman, graph neural networks).  A
missing value in a coordinate is the distinguished constant ``BOTTOM``
(rendered as the string "⊥" in Figure 2(c)).

A :class:`VectorSchema` records what each coordinate means, which is what
lets :func:`repro.models.convert.property_to_vector` and its inverse agree.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.errors import GraphError, SchemaError
from repro.models.multigraph import Const, MultiGraph

#: The "no value" constant of Figure 2(c).
BOTTOM = "⊥"


@dataclass(frozen=True)
class VectorSchema:
    """Names the coordinates of a vector-labeled graph.

    By the paper's convention for Figure 2(c), feature 1 carries the label
    and each further feature carries one property name.  Feature indices in
    regex tests ``(f_i = v)`` are 1-based, matching the paper.
    """

    feature_names: tuple[str, ...] = field(default_factory=tuple)

    @property
    def dimension(self) -> int:
        return len(self.feature_names)

    def index_of(self, name: str) -> int:
        """1-based index of a named feature."""
        try:
            return self.feature_names.index(name) + 1
        except ValueError:
            raise SchemaError(f"schema has no feature named {name!r}") from None

    @classmethod
    def for_label_and_properties(cls, properties: Sequence[str]) -> "VectorSchema":
        return cls(("label", *properties))


def _changed_indices(old: tuple, new: tuple) -> tuple[int, ...]:
    """1-based coordinates where two equal-length vectors differ."""
    return tuple(i for i, (a, b) in enumerate(zip(old, new), start=1)
                 if a != b)


class VectorGraph(MultiGraph):
    """A multigraph with a d-dimensional feature vector on every node and edge."""

    def __init__(self, dimension: int, schema: VectorSchema | None = None) -> None:
        if dimension < 1:
            raise SchemaError("vector-labeled graphs need dimension >= 1")
        if schema is not None and schema.dimension != dimension:
            raise SchemaError(
                f"schema has {schema.dimension} features, graph has {dimension}")
        super().__init__()
        self.dimension = dimension
        self.schema = schema
        self._node_vectors: dict[Const, tuple[Const, ...]] = {}
        self._edge_vectors: dict[Const, tuple[Const, ...]] = {}
        # Feature-indexed adjacency: (node, 1-based index, value) -> {edge}.
        # The vector-graph analogue of the label index on LabeledGraph; it
        # is what makes feature tests ``(f_i = v)`` index-accelerable in the
        # RPQ product.  Insertion-ordered for deterministic iteration.
        self._out_by_feature: dict[tuple[Const, int, Const], dict[Const, None]] = {}
        self._in_by_feature: dict[tuple[Const, int, Const], dict[Const, None]] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: Const,
                 features: Sequence[Const] | None = None) -> Const:
        vector = self._coerce(features)
        existing = self._node_vectors.get(node)
        if existing is not None and features is not None and existing != vector:
            raise GraphError(f"node {node!r} already has a different vector")
        super().add_node(node)
        if node not in self._node_vectors:
            self._node_vectors[node] = vector
            self.mutation_log.record("add_node.features",
                                     features=self._all_features(),
                                     payload=(node, vector))
        return node

    def add_edge(self, edge: Const, source: Const, target: Const,
                 features: Sequence[Const] | None = None) -> Const:
        super().add_edge(edge, source, target)
        vector = self._coerce(features)
        self._edge_vectors[edge] = vector
        self._index_edge_vector(edge, source, target, vector)
        self.mutation_log.record("add_edge.features",
                                 features=self._all_features(),
                                 payload=(edge, source, target, vector))
        return edge

    def remove_edge(self, edge: Const) -> None:
        source, target = self.endpoints(edge)
        vector = self._edge_vectors[edge]
        super().remove_edge(edge)
        del self._edge_vectors[edge]
        self._unindex_edge_vector(edge, source, target, vector)
        self.mutation_log.record("remove_edge.features",
                                 features=self._all_features(),
                                 payload=(edge, source, target, vector))

    def _index_edge_vector(self, edge: Const, source: Const, target: Const,
                           vector: tuple[Const, ...]) -> None:
        for index, value in enumerate(vector, start=1):
            self._out_by_feature.setdefault((source, index, value), {})[edge] = None
            self._in_by_feature.setdefault((target, index, value), {})[edge] = None

    def _unindex_edge_vector(self, edge: Const, source: Const, target: Const,
                             vector: tuple[Const, ...]) -> None:
        for index, value in enumerate(vector, start=1):
            self._discard_entry(self._out_by_feature, (source, index, value), edge)
            self._discard_entry(self._in_by_feature, (target, index, value), edge)

    @staticmethod
    def _discard_entry(index: dict, key, member) -> None:
        bucket = index.get(key)
        if bucket is not None:
            bucket.pop(member, None)
            if not bucket:
                del index[key]

    def remove_node(self, node: Const) -> None:
        self._require_node(node)
        vector = self._node_vectors[node]
        super().remove_node(node)
        del self._node_vectors[node]
        self.mutation_log.record("remove_node.features",
                                 features=self._all_features(),
                                 payload=(node, vector))

    def _all_features(self) -> range:
        """Every 1-based coordinate — an added/removed element carries a
        value (possibly ``BOTTOM``) in all of them."""
        return range(1, self.dimension + 1)

    # -- lambda ------------------------------------------------------------

    def node_vector(self, node: Const) -> tuple[Const, ...]:
        self._require_node(node)
        return self._node_vectors[node]

    def edge_vector(self, edge: Const) -> tuple[Const, ...]:
        self.endpoints(edge)
        return self._edge_vectors[edge]

    def node_feature(self, node: Const, index: int) -> Const:
        """The i-th feature of lambda(node); ``index`` is 1-based as in the paper."""
        return self.node_vector(node)[self._check_index(index) - 1]

    def edge_feature(self, edge: Const, index: int) -> Const:
        """The i-th feature of lambda(edge); ``index`` is 1-based as in the paper."""
        return self.edge_vector(edge)[self._check_index(index) - 1]

    def set_node_vector(self, node: Const, features: Sequence[Const]) -> None:
        self._require_node(node)
        old = self._node_vectors[node]
        vector = self._coerce(features)
        if old == vector:
            return
        self._node_vectors[node] = vector
        self.mutation_log.record("set_node_vector",
                                 features=_changed_indices(old, vector),
                                 payload=(node, old, vector))

    def set_edge_vector(self, edge: Const, features: Sequence[Const]) -> None:
        source, target = self.endpoints(edge)
        old = self._edge_vectors[edge]
        vector = self._coerce(features)
        if old == vector:
            return
        self._edge_vectors[edge] = vector
        self._unindex_edge_vector(edge, source, target, old)
        self._index_edge_vector(edge, source, target, vector)
        self.mutation_log.record("set_edge_vector",
                                 features=_changed_indices(old, vector),
                                 payload=(edge, old, vector))

    # -- feature-indexed adjacency -----------------------------------------

    def out_edges_with_feature(self, node: Const, index: int,
                               value: Const) -> list[Const]:
        """Outgoing edges whose feature ``index`` equals ``value`` (fresh list)."""
        self._require_node(node)
        self._check_index(index)
        return list(self._out_by_feature.get((node, index, value), ()))

    def in_edges_with_feature(self, node: Const, index: int,
                              value: Const) -> list[Const]:
        """Incoming edges whose feature ``index`` equals ``value`` (fresh list)."""
        self._require_node(node)
        self._check_index(index)
        return list(self._in_by_feature.get((node, index, value), ()))

    def iter_out_edges_with_feature(self, node: Const, index: int,
                                    value: Const) -> Iterable[Const]:
        """Zero-copy view of outgoing feature-matching edges."""
        self._require_node(node)
        self._check_index(index)
        bucket = self._out_by_feature.get((node, index, value))
        return bucket.keys() if bucket is not None else ()

    def iter_in_edges_with_feature(self, node: Const, index: int,
                                   value: Const) -> Iterable[Const]:
        """Zero-copy view of incoming feature-matching edges."""
        self._require_node(node)
        self._check_index(index)
        bucket = self._in_by_feature.get((node, index, value))
        return bucket.keys() if bucket is not None else ()

    def feature_adjacency_index(self) -> tuple[dict, dict]:
        """The raw ``(node, index, value) -> edge-bucket`` dicts, (out, in).

        Read-only bulk-probe view for the product construction, mirroring
        :meth:`LabeledGraph.label_adjacency_index`.  Feature indexes in the
        keys are 1-based; callers are responsible for range-checking the
        index (out-of-range probes simply find no bucket, whereas the
        per-edge test raises ``SchemaError``).
        """
        return self._out_by_feature, self._in_by_feature

    # -- equality ----------------------------------------------------------

    def _eq_signature(self) -> tuple:
        return super()._eq_signature() + (
            self.dimension, self.schema,
            self._node_vectors, self._edge_vectors)

    # -- derived graphs ----------------------------------------------------

    def copy(self) -> "VectorGraph":
        clone = type(self)(self.dimension, self.schema)
        clone._copy_structure_from(self)
        return clone

    def subgraph_without_node(self, node: Const) -> "VectorGraph":
        clone = self.copy()
        if clone.has_node(node):
            clone.remove_node(node)
        return clone

    def _copy_structure_from(self, other: MultiGraph) -> None:
        if not isinstance(other, VectorGraph):
            super()._copy_structure_from(other)
            return
        for node in other.nodes():
            self.add_node(node, other.node_vector(node))
        for edge in other.edges():
            source, target = other.endpoints(edge)
            self.add_edge(edge, source, target, other.edge_vector(edge))

    # -- helpers -----------------------------------------------------------

    def _coerce(self, features: Sequence[Const] | None) -> tuple[Const, ...]:
        if features is None:
            return (BOTTOM,) * self.dimension
        vector = tuple(features)
        if len(vector) != self.dimension:
            raise SchemaError(
                f"expected a vector of dimension {self.dimension}, got {len(vector)}")
        return vector

    def _check_index(self, index: int) -> int:
        if not 1 <= index <= self.dimension:
            raise SchemaError(
                f"feature index {index} out of range 1..{self.dimension}")
        return index

    # -- bulk loading ------------------------------------------------------

    @classmethod
    def build(cls, dimension: int,
              nodes: Iterable[tuple[Const, Sequence[Const]]],
              edges: Iterable[tuple[Const, Const, Const, Sequence[Const]]],
              schema: VectorSchema | None = None) -> "VectorGraph":
        graph = cls(dimension, schema)
        for node, features in nodes:
            graph.add_node(node, features)
        for edge, source, target, features in edges:
            graph.add_edge(edge, source, target, features)
        return graph
