"""The base multigraph model: a tuple (N, E, rho).

Following the paper, nodes and edges are identified by constants (strings in
practice, any hashable value in this implementation), multiple edges may
connect the same pair of nodes, and ``rho`` maps each edge id to its ordered
(source, target) pair.  All richer models in this package extend this class.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

from repro.cache.versioning import MutationLog
from repro.errors import DuplicateIdError, UnknownEdgeError, UnknownNodeError

Const = Hashable


class MultiGraph:
    """A directed multigraph (N, E, rho) with O(1) incidence lookups.

    Adjacency is indexed in both directions, so ``out_edges`` / ``in_edges``
    are cheap; this is the structural property the paper contrasts with the
    relational "two-attribute edge table" encoding, where every hop is a join.

    Per-node incidence is stored as insertion-ordered dicts keyed by edge id,
    so ``remove_edge`` is O(1) while iteration order stays deterministic
    (insertion order, exactly as the previous list-based representation).

    Every graph owns a :class:`~repro.cache.versioning.MutationLog`: a
    monotonically increasing :attr:`version` plus label-granular records of
    what each mutation touched, which is what lets
    :class:`~repro.cache.QueryCache` prove cached answers still current.
    Each layer of the model hierarchy records the aspect it owns (structure
    here, labels/properties/features in subclasses), so one logical mutation
    may append several records.  The log never participates in equality or
    serialization: two structurally identical graphs with different
    histories compare equal.
    """

    def __init__(self) -> None:
        self._nodes: set[Const] = set()
        self._edges: dict[Const, tuple[Const, Const]] = {}
        self._out: dict[Const, dict[Const, None]] = {}
        self._in: dict[Const, dict[Const, None]] = {}
        self.mutation_log = MutationLog()

    @property
    def version(self) -> int:
        """Monotonically increasing mutation counter (0 for a fresh graph)."""
        return self.mutation_log.version

    # -- construction ------------------------------------------------------

    def add_node(self, node: Const) -> Const:
        """Add a node; adding an existing node is a no-op (graphs integrate)."""
        if node not in self._nodes:
            self._nodes.add(node)
            self._out[node] = {}
            self._in[node] = {}
            self.mutation_log.record("add_node", structural_nodes=True,
                                     payload=(node,))
        return node

    def add_edge(self, edge: Const, source: Const, target: Const) -> Const:
        """Add edge ``edge`` with rho(edge) = (source, target).

        Endpoints are created implicitly, matching the flexible grow-as-you-go
        character of graph models the paper emphasizes.  Re-adding an existing
        edge id raises :class:`DuplicateIdError`.
        """
        if edge in self._edges:
            raise DuplicateIdError("edge", edge)
        self.add_node(source)
        self.add_node(target)
        self._edges[edge] = (source, target)
        self._out[source][edge] = None
        self._in[target][edge] = None
        self.mutation_log.record("add_edge", structural_edges=True,
                                 payload=(edge, source, target))
        return edge

    def remove_edge(self, edge: Const) -> None:
        """Remove an edge in O(1); endpoints stay in the graph."""
        source, target = self.endpoints(edge)
        del self._edges[edge]
        del self._out[source][edge]
        del self._in[target][edge]
        self.mutation_log.record("remove_edge", structural_edges=True,
                                 payload=(edge, source, target))

    def remove_node(self, node: Const) -> None:
        """Remove a node and every edge incident to it."""
        self._require_node(node)
        for edge in list(self._out[node]) + list(self._in[node]):
            if edge in self._edges:
                self.remove_edge(edge)
        self._nodes.discard(node)
        del self._out[node]
        del self._in[node]
        self.mutation_log.record("remove_node", structural_nodes=True,
                                 payload=(node,))

    # -- inspection --------------------------------------------------------

    def nodes(self) -> Iterator[Const]:
        return iter(self._nodes)

    def edges(self) -> Iterator[Const]:
        return iter(self._edges)

    def has_node(self, node: Const) -> bool:
        return node in self._nodes

    def has_edge(self, edge: Const) -> bool:
        return edge in self._edges

    def endpoints(self, edge: Const) -> tuple[Const, Const]:
        """Return rho(edge) = (source, target)."""
        try:
            return self._edges[edge]
        except KeyError:
            raise UnknownEdgeError(edge) from None

    def source(self, edge: Const) -> Const:
        return self.endpoints(edge)[0]

    def target(self, edge: Const) -> Const:
        return self.endpoints(edge)[1]

    def out_edges(self, node: Const) -> list[Const]:
        """Edge ids whose source is ``node`` (a fresh, caller-owned list)."""
        self._require_node(node)
        return list(self._out[node])

    def in_edges(self, node: Const) -> list[Const]:
        """Edge ids whose target is ``node`` (a fresh, caller-owned list)."""
        self._require_node(node)
        return list(self._in[node])

    def iter_out_edges(self, node: Const) -> Iterable[Const]:
        """Zero-copy view of the outgoing edge ids of ``node``.

        Hot loops should prefer this over :meth:`out_edges`, which allocates
        a defensive copy per call.  The view reflects the live graph: do not
        add or remove edges at ``node`` while iterating it.
        """
        self._require_node(node)
        return self._out[node].keys()

    def iter_in_edges(self, node: Const) -> Iterable[Const]:
        """Zero-copy view of the incoming edge ids of ``node``."""
        self._require_node(node)
        return self._in[node].keys()

    def incident_edges(self, node: Const) -> list[Const]:
        """Outgoing then incoming edges (a self-loop appears in both halves)."""
        return self.out_edges(node) + self.in_edges(node)

    def out_degree(self, node: Const) -> int:
        self._require_node(node)
        return len(self._out[node])

    def in_degree(self, node: Const) -> int:
        self._require_node(node)
        return len(self._in[node])

    def degree(self, node: Const) -> int:
        return self.out_degree(node) + self.in_degree(node)

    def successors(self, node: Const) -> Iterator[Const]:
        """Targets of outgoing edges (with multiplicity)."""
        self._require_node(node)
        return (self._edges[e][1] for e in self._out[node])

    def predecessors(self, node: Const) -> Iterator[Const]:
        """Sources of incoming edges (with multiplicity)."""
        self._require_node(node)
        return (self._edges[e][0] for e in self._in[node])

    def neighbors(self, node: Const) -> set[Const]:
        """All nodes adjacent to ``node`` in either direction, deduplicated."""
        self._require_node(node)
        result = {self._edges[e][1] for e in self._out[node]}
        result.update(self._edges[e][0] for e in self._in[node])
        return result

    def edges_between(self, source: Const, target: Const) -> list[Const]:
        """All parallel edges from ``source`` to ``target``."""
        self._require_node(target)
        self._require_node(source)
        return [e for e in self._out[source] if self._edges[e][1] == target]

    def node_count(self) -> int:
        return len(self._nodes)

    def edge_count(self) -> int:
        return len(self._edges)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Const) -> bool:
        return node in self._nodes

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} nodes={self.node_count()} "
                f"edges={self.edge_count()}>")

    # -- equality ----------------------------------------------------------

    def _eq_signature(self) -> tuple:
        """The structural content compared by ``==`` (subclasses extend).

        Versions, mutation logs and secondary indexes are deliberately
        absent: equality is about the graph the paper's definitions see,
        not about how it was built.
        """
        return (self._nodes, self._edges)

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if type(other) is not type(self):
            return NotImplemented
        return self._eq_signature() == other._eq_signature()

    # Structural equality with identity hashing: graphs are mutable, so a
    # content hash would silently corrupt any set/dict they already sit in.
    __hash__ = object.__hash__

    # -- derived graphs ----------------------------------------------------

    def copy(self) -> "MultiGraph":
        """Structural copy (subclasses override to carry labels and more)."""
        clone = type(self)()
        clone._copy_structure_from(self)
        return clone

    def subgraph_without_node(self, node: Const) -> "MultiGraph":
        """Copy of the graph with ``node`` (and its incident edges) removed.

        Used by the exact regex-constrained betweenness algorithm, which
        counts paths *avoiding* a node by deleting it.
        """
        clone = self.copy()
        if clone.has_node(node):
            clone.remove_node(node)
        return clone

    def _copy_structure_from(self, other: "MultiGraph") -> None:
        for node in other.nodes():
            self.add_node(node)
        for edge in other.edges():
            source, target = other.endpoints(edge)
            self.add_edge(edge, source, target)

    def _require_node(self, node: Const) -> None:
        if node not in self._nodes:
            raise UnknownNodeError(node)

    # -- bulk loading ------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[Const, Const, Const]]) -> "MultiGraph":
        """Build from (edge_id, source, target) triples."""
        graph = cls()
        for edge, source, target in edges:
            graph.add_edge(edge, source, target)
        return graph
