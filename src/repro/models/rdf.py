"""RDF graphs: sets of triples (s, p, o) over constants/IRIs.

As the paper notes, RDF differs from labeled graphs in two ways: edges are
triples without identifiers, and constants are URIs/IRIs with a universal
interpretation (the same constant in two graphs denotes the same resource,
which makes set union a sound integration operation).
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator
from typing import NamedTuple

from repro.cache.versioning import MutationLog
from repro.errors import ConversionError


class Triple(NamedTuple):
    """A single RDF statement (subject, predicate, object)."""

    subject: str
    predicate: str
    object: str


# The RDF vocabulary term the paper's labeled-graph node labels map onto.
RDF_TYPE = "rdf:type"


def _triple_record_fields(predicate: str, obj: str) -> dict:
    """Mutation-log fields for one triple change.

    Under the paper's RDF <-> labeled-graph correspondence a triple is an
    edge labeled by its predicate — except ``rdf:type`` triples, which carry
    node labels.  Subjects/objects are the resources (nodes), and a triple
    change can create or retire resources, hence the structural flags.
    """
    if predicate == RDF_TYPE:
        return {"node_labels": (obj,), "structural_nodes": True}
    return {"edge_labels": (predicate,),
            "structural_edges": True, "structural_nodes": True}


class RDFGraph:
    """A set of triples with subject/object adjacency helpers.

    The class is deliberately a thin wrapper over ``set[Triple]``: per the
    universal-interpretation principle, merging two RDF graphs is plain set
    union (:meth:`merge`).  Index-accelerated pattern matching lives in
    :class:`repro.storage.TripleStore`; this class is the *model*.
    """

    def __init__(self, triples: Iterable[Triple | tuple[str, str, str]] = ()) -> None:
        self._triples: set[Triple] = set()
        # Subject/object adjacency indexes so triples_from / triples_to are
        # O(result) instead of a scan over the whole graph — the same
        # label-keyed access pattern the MultiGraph family maintains.
        self._by_subject: dict[str, set[Triple]] = {}
        self._by_object: dict[str, set[Triple]] = {}
        self.mutation_log = MutationLog()
        for t in triples:
            self.add(*t)

    @property
    def version(self) -> int:
        """Monotonically increasing mutation counter (see the MultiGraph
        family); excluded from equality, hashing and serialization."""
        return self.mutation_log.version

    def add(self, subject: str, predicate: str, obj: str) -> Triple:
        triple = Triple(subject, predicate, obj)
        if triple not in self._triples:
            self._triples.add(triple)
            self._by_subject.setdefault(subject, set()).add(triple)
            self._by_object.setdefault(obj, set()).add(triple)
            self.mutation_log.record("add_triple",
                                     payload=(subject, predicate, obj),
                                     **_triple_record_fields(predicate, obj))
        return triple

    def discard(self, subject: str, predicate: str, obj: str) -> None:
        triple = Triple(subject, predicate, obj)
        if triple in self._triples:
            self._triples.discard(triple)
            self._discard_indexed(self._by_subject, subject, triple)
            self._discard_indexed(self._by_object, obj, triple)
            self.mutation_log.record("discard_triple",
                                     payload=(subject, predicate, obj),
                                     **_triple_record_fields(predicate, obj))

    @staticmethod
    def _discard_indexed(index: dict[str, set[Triple]], key: str,
                         triple: Triple) -> None:
        bucket = index.get(key)
        if bucket is not None:
            bucket.discard(triple)
            if not bucket:
                del index[key]

    def triples(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: object) -> bool:
        if isinstance(triple, tuple) and len(triple) == 3:
            return Triple(*triple) in self._triples
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RDFGraph) and self._triples == other._triples

    def __hash__(self) -> int:  # pragma: no cover - sets of graphs are unusual
        return hash(frozenset(self._triples))

    def __repr__(self) -> str:
        return f"<RDFGraph triples={len(self._triples)}>"

    # -- graph views -------------------------------------------------------

    def subjects(self) -> set[str]:
        return {t.subject for t in self._triples}

    def predicates(self) -> set[str]:
        return {t.predicate for t in self._triples}

    def objects(self) -> set[str]:
        return {t.object for t in self._triples}

    def resources(self) -> set[str]:
        """Every constant appearing in subject or object position (the nodes)."""
        return self.subjects() | self.objects()

    def triples_from(self, subject: str) -> Iterator[Triple]:
        return iter(self._by_subject.get(subject, ()))

    def triples_to(self, obj: str) -> Iterator[Triple]:
        return iter(self._by_object.get(obj, ()))

    def merge(self, other: "RDFGraph") -> "RDFGraph":
        """Set-union integration of two RDF graphs (universal interpretation)."""
        return RDFGraph(self._triples | other._triples)

    # -- N-Triples-style serialization --------------------------------------

    def to_ntriples(self) -> str:
        """Serialize to a simplified N-Triples form (one triple per line).

        Constants containing whitespace are quoted as literals; everything
        else is wrapped in angle brackets like an IRI.
        """
        lines = []
        for t in sorted(self._triples):
            lines.append(f"{_term(t.subject)} {_term(t.predicate)} {_term(t.object)} .")
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_ntriples(cls, text: str) -> "RDFGraph":
        """Parse the simplified N-Triples form produced by :meth:`to_ntriples`."""
        graph = cls()
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            match = _LINE_RE.match(line)
            if not match:
                raise ConversionError(f"bad N-Triples line {lineno}: {raw!r}")
            parts = [_unterm(match.group(i)) for i in (1, 2, 3)]
            graph.add(*parts)
        return graph


_TERM_PATTERN = r'(<[^>]*>|"(?:[^"\\]|\\.)*")'
_LINE_RE = re.compile(rf"^{_TERM_PATTERN}\s+{_TERM_PATTERN}\s+{_TERM_PATTERN}\s*\.$")


def _term(value: str) -> str:
    if re.search(r"\s", value) or value == "":
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return f"<{value}>"


def _unterm(token: str) -> str:
    if token.startswith("<"):
        return token[1:-1]
    body = token[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")
