"""Unit tests for vector-labeled graphs (lambda into Const^d)."""

import pytest

from repro.errors import GraphError, SchemaError
from repro.models import BOTTOM, VectorGraph, VectorSchema


def build_sample() -> VectorGraph:
    schema = VectorSchema(("label", "name"))
    graph = VectorGraph(2, schema)
    graph.add_node("a", ("person", "Julia"))
    graph.add_node("b", ("bus", BOTTOM))
    graph.add_edge("e", "a", "b", ("rides", BOTTOM))
    return graph


class TestVectors:
    def test_dimension_validation(self):
        with pytest.raises(SchemaError):
            VectorGraph(0)
        with pytest.raises(SchemaError):
            VectorGraph(3, VectorSchema(("label",)))

    def test_vectors_and_features(self):
        graph = build_sample()
        assert graph.node_vector("a") == ("person", "Julia")
        assert graph.node_feature("a", 1) == "person"  # 1-based, as in the paper
        assert graph.node_feature("b", 2) == BOTTOM
        assert graph.edge_feature("e", 1) == "rides"

    def test_feature_index_bounds(self):
        graph = build_sample()
        with pytest.raises(SchemaError):
            graph.node_feature("a", 0)
        with pytest.raises(SchemaError):
            graph.node_feature("a", 3)

    def test_default_vector_is_all_bottom(self):
        graph = VectorGraph(3)
        graph.add_node("x")
        assert graph.node_vector("x") == (BOTTOM, BOTTOM, BOTTOM)

    def test_wrong_width_rejected(self):
        graph = build_sample()
        with pytest.raises(SchemaError):
            graph.add_node("c", ("only-one",))

    def test_conflicting_readd_rejected(self):
        graph = build_sample()
        with pytest.raises(GraphError):
            graph.add_node("a", ("person", "Other"))

    def test_set_vectors(self):
        graph = build_sample()
        graph.set_node_vector("b", ("bus", "506"))
        graph.set_edge_vector("e", ("rides", "3/3/21"))
        assert graph.node_feature("b", 2) == "506"
        assert graph.edge_feature("e", 2) == "3/3/21"


class TestSchema:
    def test_schema_index_of(self):
        schema = VectorSchema(("label", "name", "age"))
        assert schema.index_of("age") == 3
        with pytest.raises(SchemaError):
            schema.index_of("zip")

    def test_for_label_and_properties(self):
        schema = VectorSchema.for_label_and_properties(["age", "name"])
        assert schema.feature_names == ("label", "age", "name")
        assert schema.dimension == 3


class TestLifecycle:
    def test_copy_preserves_vectors_and_schema(self):
        graph = build_sample()
        clone = graph.copy()
        assert clone.schema == graph.schema
        assert clone.node_vector("a") == ("person", "Julia")

    def test_remove_cleans_vectors(self):
        graph = build_sample()
        graph.remove_edge("e")
        graph.remove_node("a")
        assert graph.node_count() == 1

    def test_subgraph_without_node(self):
        graph = build_sample()
        sub = graph.subgraph_without_node("a")
        assert sub.dimension == 2
        assert not sub.has_node("a")
        assert sub.edge_count() == 0
