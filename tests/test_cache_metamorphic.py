"""Metamorphic cache consistency: cache-on == cache-off under mutation.

The invariant: at *every* step of an interleaved schedule of mutations and
queries, a query evaluated through a shared :class:`~repro.cache.QueryCache`
returns exactly what a fresh cache-less evaluation returns.  Any unsound
footprint, missed mutation record, or stale-entry bug shows up as a
divergence at the first query after the offending mutation.

Conventions mirror ``tests/test_differential.py``: the seed pool comes from
``REPRO_FUZZ_SEEDS`` (comma-separated integers, default ``0,1,2``), so CI's
fuzz job can re-aim the whole suite at fresh interleavings without touching
the file, and every assertion message carries (seed, interleaving, step) for
isolated replay.  With the default seeds the suite runs
``len(SEEDS) * (RPQ_INTERLEAVINGS + FRONTEND_INTERLEAVINGS +
SPARQL_INTERLEAVINGS)`` >= 500 interleavings.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.cache import QueryCache
from repro.core.rpq import count_paths_exact, endpoint_pairs, parse_regex
from repro.models.property import PropertyGraph
from repro.query.cypherish import run_cypher
from repro.query.pathql import run_pathql
from repro.query.sparql import run_sparql
from repro.storage import PropertyGraphStore, TripleStore

SEEDS = tuple(int(seed) for seed in
              os.environ.get("REPRO_FUZZ_SEEDS", "0,1,2").split(","))
RPQ_INTERLEAVINGS = 100
FRONTEND_INTERLEAVINGS = 40
SPARQL_INTERLEAVINGS = 30
STEPS_PER_INTERLEAVING = 8

NODE_LABELS = ("a", "b")
EDGE_LABELS = ("r", "s", "t")
PROP_NAMES = ("age", "city")


def total_interleavings() -> int:
    return len(SEEDS) * (RPQ_INTERLEAVINGS + FRONTEND_INTERLEAVINGS
                         + SPARQL_INTERLEAVINGS)


def test_default_configuration_reaches_five_hundred_interleavings():
    """The acceptance floor: >= 500 seeded interleavings by default."""
    assert 3 * (RPQ_INTERLEAVINGS + FRONTEND_INTERLEAVINGS
                + SPARQL_INTERLEAVINGS) >= 500


# ---------------------------------------------------------------------------
# Random material
# ---------------------------------------------------------------------------


def random_property_graph(rng: random.Random) -> PropertyGraph:
    graph = PropertyGraph()
    n_nodes = rng.randint(3, 6)
    for index in range(n_nodes):
        props = {prop: rng.randint(0, 2) for prop in PROP_NAMES
                 if rng.random() < 0.7}
        graph.add_node(f"n{index}", rng.choice(NODE_LABELS), props)
    nodes = sorted(graph.nodes(), key=str)
    for index in range(rng.randint(2, 10)):
        props = ({"w": rng.randint(0, 2)} if rng.random() < 0.5 else {})
        graph.add_edge(f"e{index}", rng.choice(nodes), rng.choice(nodes),
                       rng.choice(EDGE_LABELS), props)
    return graph


def random_regex_text(rng: random.Random, depth: int = 2) -> str:
    roll = rng.random()
    if depth <= 0 or roll < 0.35:
        return rng.choice(EDGE_LABELS) + ("^-" if rng.random() < 0.25 else "")
    if roll < 0.45:
        return "?" + rng.choice(NODE_LABELS)
    if roll < 0.70:
        return (f"{random_regex_text(rng, depth - 1)}"
                f"/{random_regex_text(rng, depth - 1)}")
    if roll < 0.88:
        return (f"({random_regex_text(rng, depth - 1)}"
                f" + {random_regex_text(rng, depth - 1)})")
    return f"({random_regex_text(rng, depth - 1)})*"


def random_mutation(rng: random.Random, graph: PropertyGraph, tag: str):
    """Apply one random mutation; return its name (for failure messages)."""
    nodes = sorted(graph.nodes(), key=str)
    edges = sorted(graph.edges(), key=str)
    moves = ["add_edge", "add_node", "set_node_property"]
    if edges:
        moves += ["remove_edge", "set_edge_property", "set_edge_label"]
    if nodes:
        moves += ["set_node_label"]
    move = rng.choice(moves)
    if move == "add_edge" and nodes:
        graph.add_edge(f"m{tag}", rng.choice(nodes), rng.choice(nodes),
                       rng.choice(EDGE_LABELS))
    elif move == "add_node":
        graph.add_node(f"m{tag}", rng.choice(NODE_LABELS),
                       {rng.choice(PROP_NAMES): rng.randint(0, 2)})
    elif move == "remove_edge":
        graph.remove_edge(rng.choice(edges))
    elif move == "set_node_property" and nodes:
        graph.set_node_property(rng.choice(nodes), rng.choice(PROP_NAMES),
                                rng.randint(0, 3))
    elif move == "set_edge_property":
        graph.set_edge_property(rng.choice(edges), "w", rng.randint(0, 3))
    elif move == "set_node_label":
        graph.set_node_label(rng.choice(nodes), rng.choice(NODE_LABELS))
    elif move == "set_edge_label":
        graph.set_edge_label(rng.choice(edges), rng.choice(EDGE_LABELS))
    return move


# ---------------------------------------------------------------------------
# RPQ core: endpoint_pairs / count_paths_exact
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_rpq_cache_metamorphic(seed):
    rng = random.Random(310_000 + seed)
    hits = 0
    for interleaving in range(RPQ_INTERLEAVINGS):
        graph = random_property_graph(rng)
        cache = QueryCache()
        # A small per-interleaving query pool makes repeats (and therefore
        # genuine cache hits that must survive interleaved mutations) likely.
        pool = [parse_regex(random_regex_text(rng)) for _ in range(3)]
        for step in range(STEPS_PER_INTERLEAVING):
            where = f"seed={seed} interleaving={interleaving} step={step}"
            if rng.random() < 0.45:
                move = random_mutation(rng, graph, f"{interleaving}.{step}")
                where += f" after={move}"
                continue
            regex = rng.choice(pool)
            cached = endpoint_pairs(graph, regex, cache=cache)
            fresh = endpoint_pairs(graph, regex)
            assert cached == fresh, f"{where} regex={regex.to_text()!r}"
            k = rng.randint(0, 2)
            cached_count = count_paths_exact(graph, regex, k, cache=cache)
            fresh_count = count_paths_exact(graph, regex, k)
            assert cached_count == fresh_count, \
                f"{where} regex={regex.to_text()!r} k={k}"
        hits += cache.stats()["hits"]
    # The schedules must actually exercise the hit path, not just miss
    # through: across a seed's interleavings many repeats stay valid.
    assert hits > RPQ_INTERLEAVINGS / 10, f"suspiciously few hits: {hits}"


# ---------------------------------------------------------------------------
# Frontends: PathQL over the live graph, Cypher over its store
# ---------------------------------------------------------------------------

CYPHER_TEMPLATES = (
    "MATCH (p:a) RETURN p.age",
    "MATCH (p:b) RETURN p.city",
    "MATCH (p)-[:r]->(q) RETURN p.age, q.age",
    "MATCH (p:a)-[:s]->(q) RETURN q.city",
    "MATCH (p {age: 1}) RETURN p.city",
)


def _pathql_text(rng: random.Random) -> str:
    regex = random_regex_text(rng)
    length = rng.randint(0, 3)
    mode = " COUNT" if rng.random() < 0.5 else ""
    return f"PATHS MATCHING {regex} LENGTH {length}{mode}"


@pytest.mark.parametrize("seed", SEEDS)
def test_frontend_cache_metamorphic(seed):
    rng = random.Random(520_000 + seed)
    hits = 0
    for interleaving in range(FRONTEND_INTERLEAVINGS):
        graph = random_property_graph(rng)
        store = PropertyGraphStore(graph)
        cache = QueryCache()
        pathql_pool = [_pathql_text(rng) for _ in range(2)]
        cypher_pool = [rng.choice(CYPHER_TEMPLATES) for _ in range(2)]
        for step in range(STEPS_PER_INTERLEAVING):
            where = f"seed={seed} interleaving={interleaving} step={step}"
            roll = rng.random()
            if roll < 0.4:
                move = random_mutation(rng, graph, f"{interleaving}.{step}")
                where += f" after={move}"
                continue
            if roll < 0.7:
                text = rng.choice(pathql_pool)
                cached = run_pathql(graph, text, cache=cache)
                fresh = run_pathql(graph, text)
                assert (cached.mode, cached.paths, cached.count,
                        cached.quality) == (fresh.mode, fresh.paths,
                                            fresh.count, fresh.quality), \
                    f"{where} pathql={text!r}"
            else:
                text = rng.choice(cypher_pool)
                cached = run_cypher(store, text, cache=cache)
                fresh = run_cypher(store, text)
                assert (cached.columns, cached.rows) == \
                    (fresh.columns, fresh.rows), f"{where} cypher={text!r}"
        hits += cache.stats()["hits"]
    assert hits > FRONTEND_INTERLEAVINGS / 10, \
        f"suspiciously few hits: {hits}"


# ---------------------------------------------------------------------------
# SPARQL: the TripleStore is its own mutable target
# ---------------------------------------------------------------------------

SPARQL_TEMPLATES = (
    "SELECT ?x ?y WHERE { ?x <r> ?y . }",
    "SELECT ?x WHERE { ?x <rdf:type> <a> . }",
    "SELECT ?x ?y WHERE { ?x <r> ?y . ?y <rdf:type> <b> . }",
    "SELECT ?x ?z WHERE { ?x <r>/<s> ?z . }",
    "SELECT ?x ?y WHERE { ?x (<r>)* ?y . }",
)

SUBJECTS = ("u0", "u1", "u2", "u3")


def _random_triple(rng: random.Random) -> tuple[str, str, str]:
    if rng.random() < 0.3:
        return (rng.choice(SUBJECTS), "rdf:type", rng.choice(NODE_LABELS))
    return (rng.choice(SUBJECTS), rng.choice(EDGE_LABELS),
            rng.choice(SUBJECTS))


@pytest.mark.parametrize("seed", SEEDS)
def test_sparql_cache_metamorphic(seed):
    rng = random.Random(730_000 + seed)
    hits = 0
    for interleaving in range(SPARQL_INTERLEAVINGS):
        store = TripleStore()
        for _ in range(rng.randint(3, 8)):
            store.add(*_random_triple(rng))
        cache = QueryCache()
        pool = [rng.choice(SPARQL_TEMPLATES) for _ in range(2)]
        for step in range(STEPS_PER_INTERLEAVING):
            where = f"seed={seed} interleaving={interleaving} step={step}"
            if rng.random() < 0.4:
                triple = _random_triple(rng)
                if rng.random() < 0.3:
                    store.remove(*triple)
                else:
                    store.add(*triple)
                continue
            text = rng.choice(pool)
            cached = run_sparql(store, text, cache=cache)
            fresh = run_sparql(store, text)
            assert (cached.variables, cached.rows) == \
                (fresh.variables, fresh.rows), f"{where} sparql={text!r}"
        hits += cache.stats()["hits"]
    assert hits > SPARQL_INTERLEAVINGS / 10, f"suspiciously few hits: {hits}"


# ---------------------------------------------------------------------------
# IVM co-run: a registered view alongside the cache (PR 10)
# ---------------------------------------------------------------------------

VIEW_INTERLEAVINGS = 40


@pytest.mark.parametrize("seed", SEEDS)
def test_view_and_cache_agree_metamorphic(seed):
    """Three evaluation paths, one answer: incremental view == cached ==
    uncached, after every step of a mutation/query interleaving.

    The cache revalidates by footprint restamping while the view absorbs
    the same mutations as deltas; if either machinery observed a mutation
    twice (double invalidation) or not at all, the three-way equality
    breaks.
    """
    from repro.ivm import IncrementalPairs

    rng = random.Random(840_000 + seed)
    hits = 0
    view_deltas = 0
    for interleaving in range(VIEW_INTERLEAVINGS):
        graph = random_property_graph(rng)
        cache = QueryCache()
        pool = [parse_regex(random_regex_text(rng)) for _ in range(2)]
        views = [IncrementalPairs(graph, regex) for regex in pool]
        for step in range(STEPS_PER_INTERLEAVING):
            where = f"seed={seed} interleaving={interleaving} step={step}"
            if rng.random() < 0.45:
                move = random_mutation(rng, graph, f"v{interleaving}.{step}")
                where += f" after={move}"
                continue
            which = rng.randrange(len(pool))
            regex, view = pool[which], views[which]
            from_view = view.pairs()
            cached = endpoint_pairs(graph, regex, cache=cache)
            uncached = endpoint_pairs(graph, regex)
            assert from_view == cached == uncached, \
                f"{where} regex={regex.to_text()!r} stats={view.stats}"
        hits += cache.stats()["hits"]
        view_deltas += sum(v.stats["delta_syncs"] for v in views)
    # Both machineries must have been exercised, not bypassed.
    assert hits > VIEW_INTERLEAVINGS / 10, f"suspiciously few hits: {hits}"
    assert view_deltas > VIEW_INTERLEAVINGS / 2, \
        f"suspiciously few delta syncs: {view_deltas}"
