"""Enumeration tests: completeness, no duplicates, bounded delay."""

import time

import pytest

from repro.core.rpq import (
    count_paths_exact,
    enumerate_paths,
    enumerate_paths_up_to,
    evaluate_bruteforce,
    parse_regex,
)
from repro.core.rpq.semantics import paths_of_length
from repro.datasets import random_labeled_graph


class TestCompleteness:
    @pytest.mark.parametrize("regex_text,k", [
        ("?person/contact/?infected", 1),
        ("?person/rides/?bus/rides^-/?infected", 2),
        ("(rides + contact)*", 3),
    ])
    def test_matches_bruteforce(self, fig2_labeled, regex_text, k):
        regex = parse_regex(regex_text)
        expected = paths_of_length(evaluate_bruteforce(fig2_labeled, regex, k), k)
        produced = list(enumerate_paths(fig2_labeled, regex, k))
        assert set(produced) == expected

    def test_no_duplicates_on_ambiguous_regex(self, small_random_graph):
        regex = parse_regex("(r + s)*/(r + s)*")
        produced = list(enumerate_paths(small_random_graph, regex, 3))
        assert len(produced) == len(set(produced))
        assert len(produced) == count_paths_exact(small_random_graph, regex, 3)

    def test_deterministic_order(self, small_random_graph):
        regex = parse_regex("(r + s)/(r + s)")
        first = list(enumerate_paths(small_random_graph, regex, 2))
        second = list(enumerate_paths(small_random_graph, regex, 2))
        assert first == second

    def test_endpoint_restrictions(self, fig2_labeled):
        regex = parse_regex("?person/rides/?bus/rides^-/?infected")
        produced = list(enumerate_paths(fig2_labeled, regex, 2,
                                        start_nodes=["n7"]))
        assert [p.start for p in produced] == ["n7"]

    def test_empty_result(self, fig2_labeled):
        regex = parse_regex("?bus/contact/?bus")
        assert list(enumerate_paths(fig2_labeled, regex, 1)) == []

    def test_up_to_orders_by_length(self, fig2_labeled):
        regex = parse_regex("(rides + contact)*")
        lengths = [p.length for p in
                   enumerate_paths_up_to(fig2_labeled, regex, 2)]
        assert lengths == sorted(lengths)
        assert lengths[0] == 0

    def test_negative_k_rejected(self, fig2_labeled):
        with pytest.raises(ValueError):
            list(enumerate_paths(fig2_labeled, parse_regex("contact"), -1))


class TestDelay:
    def test_delay_stays_small_relative_to_total(self):
        """The gap between consecutive answers must not grow with the number
        of answers — the defining property of enumeration algorithms."""
        graph = random_labeled_graph(14, 60, rng=5)
        regex = parse_regex("(r + s)*/r/(r + s)*")
        generator = enumerate_paths(graph, regex, 5)
        timestamps = []
        start = time.perf_counter()
        for _ in range(500):
            try:
                next(generator)
            except StopIteration:
                break
            timestamps.append(time.perf_counter() - start)
        assert len(timestamps) > 100
        total = timestamps[-1]
        max_delay = max(b - a for a, b in zip(timestamps, timestamps[1:]))
        # Max delay is a tiny fraction of total time: no exponential stalls.
        assert max_delay < max(0.05, total * 0.25)
