"""2-WL tests: strictly more powerful than 1-WL, consistent with it."""

from repro.core.gnn import (
    wl2_node_colors,
    wl2_pair_colors,
    wl2_test,
    wl_node_colors,
    wl_test,
)
from repro.models import LabeledGraph


def cycle(n: int, prefix: str = "c") -> LabeledGraph:
    graph = LabeledGraph()
    for i in range(n):
        graph.add_node(f"{prefix}{i}", "v")
    for i in range(n):
        graph.add_edge(f"{prefix}e{i}", f"{prefix}{i}", f"{prefix}{(i + 1) % n}", "r")
    return graph


def two_triangles() -> LabeledGraph:
    graph = LabeledGraph()
    for tri in (0, 1):
        for i in range(3):
            graph.add_node(f"t{tri}_{i}", "v")
        for i in range(3):
            graph.add_edge(f"t{tri}_e{i}", f"t{tri}_{i}",
                           f"t{tri}_{(i + 1) % 3}", "r")
    return graph


class TestPairColors:
    def test_diagonal_pairs_distinct_from_offdiagonal(self, fig2_labeled):
        colors = wl2_pair_colors(fig2_labeled)
        assert colors[("n1", "n1")] != colors[("n1", "n2")]

    def test_edge_vs_non_edge_pairs_separated(self, fig2_labeled):
        colors = wl2_pair_colors(fig2_labeled)
        assert colors[("n1", "n2")] != colors[("n1", "n7")]  # contact vs none

    def test_node_colors_refine_1wl(self):
        graph = two_triangles()
        graph.add_edge("bridge", "t0_0", "t1_0", "s")
        one = wl_node_colors(graph, directed=False)
        two = wl2_node_colors(graph)
        # Any pair separated by 1-WL is separated by 2-WL.
        for u in graph.nodes():
            for v in graph.nodes():
                if one[u] != one[v]:
                    assert two[u] != two[v]


class TestIsomorphismPower:
    def test_graph_vs_itself(self, fig2_labeled):
        assert wl2_test(fig2_labeled, fig2_labeled)

    def test_triangles_vs_hexagon_refuted_by_2wl(self):
        """The classic pair 1-WL cannot separate — 2-WL must."""
        triangles = two_triangles()
        hexagon = cycle(6, "h")
        assert wl_test(triangles, hexagon, directed=False)  # 1-WL blind
        assert not wl2_test(triangles, hexagon)  # 2-WL sees triangles

    def test_different_cycle_lengths_refuted(self):
        assert not wl2_test(cycle(4), cycle(5))

    def test_isomorphic_relabeled_cycles_pass(self):
        assert wl2_test(cycle(5, "a"), cycle(5, "b"))

    def test_labels_participate(self):
        left = cycle(4, "a")
        right = cycle(4, "b")
        right.set_node_label("b0", "special")
        assert not wl2_test(left, right)
        assert wl2_test(left, right, use_labels=False)
