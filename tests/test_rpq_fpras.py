"""FPRAS tests: the approximate counter stays near the exact count, and the
approximate generator produces valid, well-spread paths."""

import pytest

from repro.core.rpq import (
    ApproxPathCounter,
    count_paths_exact,
    enumerate_paths,
    parse_regex,
)
from repro.datasets import random_labeled_graph
from repro.errors import EstimationError
from repro.util.stats import relative_error


class TestEstimates:
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_relative_error_on_ambiguous_instance(self, k):
        graph = random_labeled_graph(10, 30, rng=42)
        regex = parse_regex("(r + s)*/r/(r + s)*")
        exact = count_paths_exact(graph, regex, k)
        assert exact > 0
        counter = ApproxPathCounter(graph, regex, k, epsilon=0.1, rng=7)
        assert relative_error(counter.estimate(), exact) < 0.1

    def test_zero_count_detected(self, fig2_labeled):
        counter = ApproxPathCounter(fig2_labeled, parse_regex("?bus/owns"), 1,
                                    rng=0)
        assert counter.estimate() == 0.0
        with pytest.raises(EstimationError):
            counter.sample()

    def test_single_path_instance(self, fig2_labeled):
        regex = parse_regex("?person/contact/?infected")
        counter = ApproxPathCounter(fig2_labeled, regex, 1, rng=0)
        assert relative_error(counter.estimate(), 1) < 0.01

    def test_endpoint_restrictions(self, fig2_labeled):
        regex = parse_regex("?person/rides/?bus/rides^-/?infected")
        counter = ApproxPathCounter(fig2_labeled, regex, 2, rng=1,
                                    start_nodes=["n1"], end_nodes=["n2"])
        assert relative_error(counter.estimate(), 1) < 0.01

    def test_invalid_parameters(self, fig2_labeled):
        regex = parse_regex("contact")
        with pytest.raises(ValueError):
            ApproxPathCounter(fig2_labeled, regex, -1)
        with pytest.raises(ValueError):
            ApproxPathCounter(fig2_labeled, regex, 1, epsilon=0.0)
        with pytest.raises(ValueError):
            ApproxPathCounter(fig2_labeled, regex, 1, epsilon=1.5)


class TestGeneration:
    def test_samples_are_valid_conforming_paths(self):
        graph = random_labeled_graph(8, 24, rng=5)
        regex = parse_regex("(r + s)*/s")
        k = 3
        support = set(enumerate_paths(graph, regex, k))
        counter = ApproxPathCounter(graph, regex, k, rng=11)
        for path in counter.sample_many(200):
            assert path in support

    def test_samples_cover_support_reasonably(self):
        graph = random_labeled_graph(7, 18, rng=9)
        regex = parse_regex("(r + s)/(r + s)")
        support = set(enumerate_paths(graph, regex, 2))
        assert len(support) > 5
        counter = ApproxPathCounter(graph, regex, 2, rng=13, pool_size=256)
        seen = set(counter.sample_many(80 * len(support)))
        # Near-uniform generation must reach the large majority of support.
        assert len(seen) >= 0.9 * len(support)

    def test_reproducible_given_seed(self):
        graph = random_labeled_graph(6, 14, rng=1)
        regex = parse_regex("(r + s)/r")
        first = ApproxPathCounter(graph, regex, 2, rng=21).estimate()
        second = ApproxPathCounter(graph, regex, 2, rng=21).estimate()
        assert first == second
