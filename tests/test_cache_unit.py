"""Unit tests for the cache subsystem: logs, footprints, and the LRU cache.

Covers the mechanics the metamorphic suite exercises only end-to-end:
version counting across the model hierarchy, conservative truncation,
weakref identity protection, LRU eviction, stale accounting, and the
metrics mirror.
"""

from __future__ import annotations

import gc

import pytest

from repro.cache import Footprint, MISS, MutationLog, QueryCache
from repro.cache.result_cache import nodes_key
from repro.cache.versioning import (
    DEFAULT_LOG_CAPACITY,
    LOG_HORIZON_ENV,
    default_log_capacity,
)
from repro.models.labeled import LabeledGraph
from repro.models.multigraph import MultiGraph
from repro.models.property import PropertyGraph
from repro.models.rdf import RDFGraph
from repro.models.vector import VectorGraph
from repro.obs import Metrics
from repro.storage import PropertyGraphStore, TripleStore


class TestMutationLog:
    def test_fresh_log_is_version_zero(self):
        log = MutationLog()
        assert log.version == 0
        assert log.horizon == 0
        assert len(log) == 0

    def test_record_bumps_version_and_returns_it(self):
        log = MutationLog()
        assert log.record("add_edge", structural_edges=True) == 1
        assert log.record("add_edge", edge_labels=("r",)) == 2
        assert log.version == 2

    def test_records_since_filters_by_version(self):
        log = MutationLog()
        log.record("a", edge_labels=("r",))
        log.record("b", edge_labels=("s",))
        records = log.records_since(1)
        assert [r.kind for r in records] == ["b"]
        assert log.records_since(2) == []

    def test_intersects_since_checks_footprints(self):
        log = MutationLog()
        log.record("add_edge", edge_labels=("r",), structural_edges=True)
        assert log.intersects_since(0, Footprint(edge_labels=frozenset("r")))
        assert not log.intersects_since(
            0, Footprint(edge_labels=frozenset("s")))
        # At or past the current version nothing can have intersected.
        assert not log.intersects_since(1, Footprint.everything())

    def test_truncation_is_conservative(self):
        log = MutationLog(capacity=3)
        for _ in range(5):
            log.record("tick", properties=("p",))
        assert log.version == 5
        assert log.horizon == 2
        assert log.records_since(1) is None
        # Even a footprint no record can touch invalidates past the horizon.
        assert log.intersects_since(1, Footprint(edge_labels=frozenset("z")))
        assert not log.intersects_since(
            2, Footprint(edge_labels=frozenset("z")))

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MutationLog(capacity=0)

    def test_default_capacity(self):
        assert MutationLog().capacity == DEFAULT_LOG_CAPACITY

    def test_capacity_from_environment(self, monkeypatch):
        monkeypatch.setenv(LOG_HORIZON_ENV, "7")
        assert default_log_capacity() == 7
        assert MutationLog().capacity == 7
        # An explicit constructor argument still wins.
        assert MutationLog(capacity=3).capacity == 3

    def test_environment_capacity_must_be_a_positive_integer(
            self, monkeypatch):
        for bad in ("zero", "0", "-5", "1.5"):
            monkeypatch.setenv(LOG_HORIZON_ENV, bad)
            with pytest.raises(ValueError):
                default_log_capacity()
        monkeypatch.setenv(LOG_HORIZON_ENV, "  ")
        assert default_log_capacity() == DEFAULT_LOG_CAPACITY

    def test_environment_truncation_stays_conservative(self, monkeypatch):
        monkeypatch.setenv(LOG_HORIZON_ENV, "2")
        log = MutationLog()
        for _ in range(5):
            log.record("tick", properties=("p",))
        assert log.horizon == 3
        assert log.intersects_since(2, Footprint(edge_labels=frozenset("z")))

    def test_fast_forward_rejoins_a_version_timeline(self):
        log = MutationLog()
        log.record("old", properties=("p",))
        log.fast_forward(10)
        assert log.version == 10
        assert log.horizon == 10
        # Everything before the horizon is unanswerable, hence stale.
        assert log.records_since(3) is None
        assert log.intersects_since(3, Footprint(edge_labels=frozenset("z")))
        # From the horizon forward, normal operation resumes.
        assert log.records_since(10) == []
        log.record("new", properties=("q",))
        assert log.version == 11
        assert [r.kind for r in log.records_since(10)] == ["new"]

    def test_fast_forward_backwards_is_an_error(self):
        log = MutationLog()
        log.fast_forward(5)
        with pytest.raises(ValueError):
            log.fast_forward(4)
        log.fast_forward(5)  # idempotent at the same version


class TestFootprintAlgebra:
    def test_union_is_fieldwise(self):
        left = Footprint(edge_labels=frozenset("r"), all_nodes=True)
        right = Footprint(edge_labels=frozenset("s"),
                          properties=frozenset("p"))
        union = left | right
        assert union.edge_labels == frozenset("rs")
        assert union.properties == frozenset("p")
        assert union.all_nodes and not union.all_edges

    def test_all_edges_ignores_pure_property_writes(self):
        log = MutationLog()
        log.record("set_node_property", properties=("p",))
        assert not log.intersects_since(0, Footprint(all_edges=True,
                                                     all_nodes=True))
        assert log.intersects_since(0, Footprint(all_properties=True))

    def test_everything_intersects_any_nonempty_record(self):
        fp = Footprint.everything()
        log = MutationLog()
        log.record("set_edge_vector", features=(3,))
        assert log.intersects_since(0, fp)

    def test_to_dict_is_sorted_and_json_friendly(self):
        fp = Footprint(edge_labels=frozenset(("s", "r")),
                       features=frozenset((2, 1)))
        data = fp.to_dict()
        assert data["edge_labels"] == ["r", "s"]
        assert data["features"] == [1, 2]
        assert data["all_edges"] is False


class TestModelVersioning:
    def test_multigraph_counts_structural_mutations(self):
        graph = MultiGraph()
        assert graph.version == 0
        graph.add_node("a")
        graph.add_node("b")
        v = graph.version
        graph.add_node("a")  # already present: no mutation
        assert graph.version == v
        graph.add_edge("e", "a", "b")
        assert graph.version > v

    def test_layers_each_record_their_part(self):
        graph = PropertyGraph()
        graph.add_node("a", "person", {"name": "Ann"})
        kinds = [r.kind for r in graph.mutation_log.records_since(0)]
        assert "add_node" in kinds
        assert "add_node.label" in kinds
        assert "add_node.props" in kinds

    def test_noop_property_write_is_elided(self):
        graph = PropertyGraph()
        graph.add_node("a", "person", {"name": "Ann"})
        v = graph.version
        graph.set_node_property("a", "name", "Ann")
        assert graph.version == v
        graph.set_node_property("a", "name", "Bea")
        assert graph.version == v + 1

    def test_noop_vector_write_is_elided(self):
        graph = VectorGraph(2)
        graph.add_node("a", (1.0, 2.0))
        v = graph.version
        graph.set_node_vector("a", (1.0, 2.0))
        assert graph.version == v
        graph.set_node_vector("a", (1.0, 3.0))
        assert graph.version == v + 1
        (record,) = graph.mutation_log.records_since(v)
        assert record.features == frozenset((2,))

    def test_rdf_type_triples_record_node_labels(self):
        graph = RDFGraph()
        graph.add("ann", "rdf:type", "person")
        (record,) = graph.mutation_log.records_since(0)
        assert record.node_labels == frozenset(("person",))
        assert not record.edge_labels
        graph.add("ann", "knows", "bea")
        (record,) = graph.mutation_log.records_since(1)
        assert record.edge_labels == frozenset(("knows",))

    def test_triple_store_has_its_own_log(self):
        store = TripleStore()
        assert store.version == 0
        store.add("a", "r", "b")
        assert store.version == 1
        store.add("a", "r", "b")  # duplicate: no mutation
        assert store.version == 1
        store.remove("a", "r", "b")
        assert store.version == 2

    def test_property_store_delegates_to_live_graph(self):
        graph = PropertyGraph()
        graph.add_node("a", "person", {"name": "Ann"})
        store = PropertyGraphStore(graph)
        assert store.version == graph.version
        assert store.mutation_log is graph.mutation_log
        before = set(store.nodes_with_property("name", "Bea"))
        graph.set_node_property("a", "name", "Bea")
        # The lazy property index self-heals on version change.
        assert set(store.nodes_with_property("name", "Bea")) == {"a"}
        assert before == set()


class TestStructuralEquality:
    def test_equal_content_different_history(self):
        left = LabeledGraph()
        right = LabeledGraph()
        left.add_node("a", "x")
        right.add_node("a", "y")
        right.set_node_label("a", "x")  # extra mutation, same end state
        assert left == right
        assert left.version != right.version

    def test_different_content_differs(self):
        left = PropertyGraph()
        right = PropertyGraph()
        left.add_node("a", "x", {"p": 1})
        right.add_node("a", "x", {"p": 2})
        assert left != right

    def test_subclass_never_equals_base(self):
        base = LabeledGraph()
        sub = PropertyGraph()
        assert base != sub and sub != base


class TestNodesKey:
    def test_none_passes_through(self):
        assert nodes_key(None) is None

    def test_order_and_container_insensitive(self):
        assert nodes_key({2, 1}) == nodes_key([1, 2]) == nodes_key((2, 1))

    def test_result_is_reusable_as_restriction(self):
        key = nodes_key(["b", "a"])
        assert key == ("a", "b")


class TestQueryCache:
    def _graph(self):
        graph = LabeledGraph()
        graph.add_node("a", "x")
        graph.add_node("b", "x")
        graph.add_edge("e", "a", "b", "r")
        return graph

    def test_miss_then_hit(self):
        graph = self._graph()
        cache = QueryCache()
        assert cache.lookup(graph, "k") is MISS
        cache.store(graph, "k", Footprint(edge_labels=frozenset("r")), 42)
        assert cache.lookup(graph, "k") == 42
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_disjoint_mutation_keeps_entry_valid(self):
        graph = self._graph()
        cache = QueryCache()
        cache.store(graph, "k", Footprint(edge_labels=frozenset("r")), 42)
        graph.add_edge("f", "a", "b", "s")  # outside the footprint
        assert cache.lookup(graph, "k") == 42
        # Re-stamped: a second lookup needs no log walk and still hits.
        assert cache.lookup(graph, "k") == 42
        assert cache.stats()["stale"] == 0

    def test_intersecting_mutation_evicts(self):
        graph = self._graph()
        cache = QueryCache()
        cache.store(graph, "k", Footprint(edge_labels=frozenset("r")), 42)
        graph.add_edge("f", "b", "a", "r")
        assert cache.lookup(graph, "k") is MISS
        assert cache.stats()["stale"] == 1
        assert len(cache) == 0

    def test_target_without_log_never_caches(self):
        cache = QueryCache()
        target = object()
        cache.store(target, "k", Footprint(), 42)
        assert cache.lookup(target, "k") is MISS
        assert len(cache) == 0

    def test_dead_graph_entry_is_not_served_to_id_reuse(self):
        cache = QueryCache()
        graph = self._graph()
        cache.store(graph, "k", Footprint(), 42)
        entry_key = next(iter(cache._entries))
        del graph
        gc.collect()
        # Forge a target with the same id (the stored weakref is dead, so
        # whatever object occupies that id must not hit).
        class Fake:
            mutation_log = MutationLog()
        fake = Fake()
        cache._entries[(id(fake), "k")] = cache._entries.pop(entry_key)
        assert cache.lookup(fake, "k") is MISS
        assert len(cache) == 0

    def test_lru_eviction(self):
        graph = self._graph()
        cache = QueryCache(max_entries=2)
        cache.store(graph, "k1", Footprint(), 1)
        cache.store(graph, "k2", Footprint(), 2)
        assert cache.lookup(graph, "k1") == 1  # refresh k1
        cache.store(graph, "k3", Footprint(), 3)  # evicts k2
        assert cache.lookup(graph, "k2") is MISS
        assert cache.lookup(graph, "k1") == 1
        assert cache.lookup(graph, "k3") == 3

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryCache(max_entries=0)

    def test_clear(self):
        graph = self._graph()
        cache = QueryCache()
        cache.store(graph, "k", Footprint(), 1)
        cache.clear()
        assert cache.lookup(graph, "k") is MISS

    def test_metrics_mirror(self):
        graph = self._graph()
        metrics = Metrics()
        cache = QueryCache(metrics=metrics)
        cache.lookup(graph, "k")
        cache.store(graph, "k", Footprint(edge_labels=frozenset("r")), 1)
        cache.lookup(graph, "k")
        graph.add_edge("f", "b", "a", "r")
        cache.lookup(graph, "k")
        assert metrics.counter("cache.hits").value == 1
        assert metrics.counter("cache.misses").value == 2
        assert metrics.counter("cache.stale").value == 1

    def test_truncated_history_counts_as_stale(self):
        graph = self._graph()
        cache = QueryCache()
        cache.store(graph, "k", Footprint(edge_labels=frozenset("z")), 1)
        # Overflow the log with mutations the footprint cannot see.
        for index in range(graph.mutation_log.capacity + 1):
            graph.add_node(f"n{index}")
        assert cache.lookup(graph, "k") is MISS
        assert cache.stats()["stale"] == 1


class _ReprCollider:
    """A hashable id whose repr collides with ``repr(1)`` — the case a
    bare ``key=repr`` sort cannot totally order."""

    def __repr__(self):
        return "1"

    def __hash__(self):
        return 99991

    def __eq__(self, other):
        return isinstance(other, _ReprCollider)


class TestNodesKeyCanonicalOrder:
    def test_repr_colliding_ids_key_identically(self):
        collider = _ReprCollider()
        assert nodes_key([1, collider]) == nodes_key([collider, 1])

    def test_mixed_type_ids_key_identically(self):
        assert nodes_key([1, "1", 2, "2"]) == nodes_key(["2", 2, "1", 1])

    def test_canonical_key_orders_by_type_then_repr(self):
        key = nodes_key(["b", 2, "a", 1])
        assert key == (1, 2, "a", "b")


class TestQueryCacheCanonicalRestrictionKeys:
    def _graph(self):
        graph = LabeledGraph()
        for node in (1, "1", 2):
            graph.add_node(node, "x")
        graph.add_edge("e", 1, "1", "r")
        return graph

    def test_one_entry_for_reordered_mixed_restrictions(self):
        """The same logical {1, "1"} restriction, iterated two ways, must
        file under one cache entry — not split into duplicate entries
        with spurious misses."""
        graph = self._graph()
        cache = QueryCache()
        first = ("pairs", "r", nodes_key([1, "1"]))
        second = ("pairs", "r", nodes_key(["1", 1]))
        cache.store(graph, first, Footprint(edge_labels=frozenset("r")), 42)
        assert cache.lookup(graph, second) == 42
        assert len(cache) == 1
        cache.store(graph, second, Footprint(edge_labels=frozenset("r")), 42)
        assert len(cache) == 1

    def test_repr_colliding_restriction_is_order_insensitive(self):
        graph = self._graph()
        collider = _ReprCollider()
        cache = QueryCache()
        cache.store(graph, ("k", nodes_key([1, collider])), Footprint(), 7)
        assert cache.lookup(graph, ("k", nodes_key([collider, 1]))) == 7
        assert len(cache) == 1
