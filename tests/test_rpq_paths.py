"""Unit tests for the Path type and the cat(p, p') operation."""

import pytest

from repro.core.rpq import Path, cat
from repro.errors import GraphError


class TestPathBasics:
    def test_single_node_path(self):
        p = Path.single("n1")
        assert p.start == p.end == "n1"
        assert p.length == 0

    def test_start_end_length(self):
        p = Path(("a", "b", "c"), ("e1", "e2"))
        assert p.start == "a"
        assert p.end == "c"
        assert p.length == 2

    def test_arity_validation(self):
        with pytest.raises(GraphError):
            Path(("a", "b"), ())
        with pytest.raises(GraphError):
            Path((), ())

    def test_from_steps(self):
        p = Path.from_steps("a", [("e1", "b"), ("e2", "c")])
        assert p == Path(("a", "b", "c"), ("e1", "e2"))

    def test_visits(self):
        p = Path(("a", "b", "a"), ("e1", "e2"))
        assert p.visits("a") and p.visits("b")
        assert not p.visits("c")

    def test_to_text(self):
        assert Path(("a", "b"), ("e1",)).to_text() == "a -e1- b"


class TestCat:
    def test_cat_joins_on_shared_node(self):
        left = Path(("a", "b"), ("e1",))
        right = Path(("b", "c"), ("e2",))
        assert cat(left, right) == Path(("a", "b", "c"), ("e1", "e2"))

    def test_cat_with_empty_paths(self):
        p = Path(("a", "b"), ("e1",))
        assert cat(Path.single("a"), p) == p
        assert cat(p, Path.single("b")) == p

    def test_cat_mismatch_rejected(self):
        with pytest.raises(GraphError):
            cat(Path.single("a"), Path.single("b"))


class TestConsistency:
    def test_consistent_forward_and_backward(self, fig2_labeled):
        forward = Path(("n1", "n3"), ("e1",))
        backward = Path(("n3", "n1"), ("e1",))
        assert forward.is_consistent_with(fig2_labeled)
        assert backward.is_consistent_with(fig2_labeled)

    def test_inconsistent_edge(self, fig2_labeled):
        wrong = Path(("n1", "n4"), ("e1",))
        assert not wrong.is_consistent_with(fig2_labeled)

    def test_unknown_edge(self, fig2_labeled):
        assert not Path(("n1", "n3"), ("zzz",)).is_consistent_with(fig2_labeled)

    def test_paths_are_hashable_values(self):
        assert Path(("a",)) == Path(("a",))
        assert len({Path(("a",)), Path(("a",))}) == 1
