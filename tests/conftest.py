"""Shared fixtures: the Figure 2 graphs and a small random-graph factory."""

from __future__ import annotations

import pytest

from repro.datasets import generate_contact_graph, random_labeled_graph
from repro.models import figure2_labeled, figure2_property, figure2_vector


@pytest.fixture
def fig2_labeled():
    return figure2_labeled()


@pytest.fixture
def fig2_property():
    return figure2_property()


@pytest.fixture
def fig2_vector():
    return figure2_vector()


@pytest.fixture
def contact_graph():
    return generate_contact_graph(25, 3, 8, 2, rng=7)


@pytest.fixture
def small_random_graph():
    """A 10-node labeled multigraph with a/b node labels and r/s edges."""
    return random_labeled_graph(10, 22, rng=3)
