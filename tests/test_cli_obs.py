"""CLI observability flags: --explain / --explain-json / --trace[-out] /
--metrics-out on all three query frontends."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.models import figure2_labeled, figure2_property
from repro.models.io import dumps

PATHQL = "PATHS MATCHING ?person/contact LENGTH 1"
SPARQL = "SELECT ?x WHERE { ?x <rdf:type> <person> . }"
CYPHER = "MATCH (p:person) RETURN p.name"


@pytest.fixture
def fig2_file(tmp_path):
    path = tmp_path / "fig2.json"
    path.write_text(dumps(figure2_property(), indent=2))
    return str(path)


@pytest.fixture
def labeled_file(tmp_path):
    path = tmp_path / "labeled.json"
    path.write_text(dumps(figure2_labeled(), indent=2))
    return str(path)


FRONTENDS = [("pathql", PATHQL), ("sparql", SPARQL), ("cypher", CYPHER)]


class TestExplain:
    @pytest.mark.parametrize("command,query", FRONTENDS)
    def test_explain_prints_plan_and_skips_execution(self, command, query,
                                                     fig2_file, capsys):
        assert main([command, fig2_file, query, "--explain"]) == 0
        out = capsys.readouterr().out
        assert out.startswith(f"EXPLAIN [{command}]")
        assert "strategy: " in out

    @pytest.mark.parametrize("command,query", FRONTENDS)
    def test_explain_json_is_machine_readable(self, command, query,
                                              fig2_file, capsys):
        assert main([command, fig2_file, query, "--explain-json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.obs.explain"
        assert payload["version"] == 2
        assert payload["frontend"] == command
        assert payload["query"] == query
        assert payload["details"]["cache"]["key_family"] == command

    def test_governed_pathql_explain_shows_ladder(self, fig2_file, capsys):
        assert main(["pathql", fig2_file, f"{PATHQL} COUNT",
                     "--max-steps", "5", "--explain-json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        rungs = [r["rung"] for r in payload["details"]["degradation_ladder"]]
        assert rungs == ["exact", "approx", "lower-bound"]


class TestTrace:
    @pytest.mark.parametrize("command,query", FRONTENDS)
    def test_trace_prints_span_tree_to_stderr(self, command, query,
                                              fig2_file, capsys):
        assert main([command, fig2_file, query, "--trace"]) == 0
        captured = capsys.readouterr()
        assert "parse" in captured.err and "evaluate" in captured.err
        assert "EXPLAIN" not in captured.out  # the query actually ran

    @pytest.mark.parametrize("command,query", FRONTENDS)
    def test_trace_out_writes_schema_stamped_json(self, command, query,
                                                  fig2_file, tmp_path):
        trace_file = tmp_path / "trace.json"
        assert main([command, fig2_file, query,
                     "--trace-out", str(trace_file)]) == 0
        payload = json.loads(trace_file.read_text())
        assert payload["schema"] == "repro.obs.trace"
        assert payload["version"] == 1
        names = [span["name"] for span in payload["spans"]]
        assert names[0] == "parse" and "evaluate" in names
        for span in payload["spans"]:
            assert span["status"] == "ok"
            assert span["duration_s"] >= 0

    def test_trace_out_dash_goes_to_stdout(self, fig2_file, capsys):
        assert main(["pathql", fig2_file, PATHQL, "--trace-out", "-"]) == 0
        out = capsys.readouterr().out
        start = out.index("{")  # query results precede the JSON blob
        assert json.loads(out[start:])["schema"] == "repro.obs.trace"

    def test_trace_includes_degradation_rungs_under_budget(self, fig2_file,
                                                           tmp_path):
        trace_file = tmp_path / "trace.json"
        assert main(["pathql", fig2_file,
                     "PATHS MATCHING (contact + lives)* LENGTH 3 COUNT",
                     "--max-steps", "3", "--trace-out", str(trace_file)]) == 0
        payload = json.loads(trace_file.read_text())
        evaluate = next(s for s in payload["spans"] if s["name"] == "evaluate")
        rungs = [s["name"] for s in evaluate["children"]
                 if s["name"].startswith("degrade:")]
        assert rungs and rungs[0] == "degrade:exact"


class TestMetrics:
    @pytest.mark.parametrize("command,query", FRONTENDS)
    def test_metrics_out_writes_aggregates(self, command, query, fig2_file,
                                           tmp_path):
        metrics_file = tmp_path / "metrics.json"
        assert main([command, fig2_file, query,
                     "--metrics-out", str(metrics_file)]) == 0
        payload = json.loads(metrics_file.read_text())
        assert payload["schema"] == "repro.obs.metrics"
        assert payload["version"] == 1
        instruments = payload["instruments"]
        assert instruments["queries.observed"]["value"] == 1
        assert instruments["span.evaluate.count"]["value"] == 1
        assert instruments["span.evaluate.seconds"]["count"] == 1

    def test_trace_and_metrics_compose(self, fig2_file, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        metrics_file = tmp_path / "metrics.json"
        assert main(["pathql", fig2_file, PATHQL, "--trace",
                     "--trace-out", str(trace_file),
                     "--metrics-out", str(metrics_file)]) == 0
        assert json.loads(trace_file.read_text())["spans"]
        assert json.loads(metrics_file.read_text())["instruments"]
        assert "evaluate" in capsys.readouterr().err

    def test_metrics_emitted_even_when_budget_exceeded(self, fig2_file,
                                                       tmp_path, capsys):
        metrics_file = tmp_path / "metrics.json"
        code = main(["sparql", fig2_file, SPARQL,
                     "--max-steps", "1", "--metrics-out", str(metrics_file)])
        assert code == 3  # EXIT_BUDGET_EXCEEDED
        payload = json.loads(metrics_file.read_text())
        assert payload["instruments"]["queries.observed"]["value"] == 1
        assert "budget exceeded" in capsys.readouterr().err


class TestSparqlOnLabeled:
    def test_labeled_graph_also_traces(self, labeled_file, tmp_path):
        trace_file = tmp_path / "trace.json"
        assert main(["sparql", labeled_file, SPARQL,
                     "--trace-out", str(trace_file)]) == 0
        assert json.loads(trace_file.read_text())["spans"]
