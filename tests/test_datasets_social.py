"""Stochastic block model tests, plus community recovery on planted data."""

import pytest

from repro.analytics import label_propagation
from repro.datasets import partition_accuracy, stochastic_block_model


class TestSbm:
    def test_shapes_and_labels(self):
        graph, blocks = stochastic_block_model([5, 7], 0.8, 0.05, rng=0)
        assert graph.node_count() == 12
        assert [len(b) for b in blocks] == [5, 7]
        assert all(graph.node_label(n) == "person" for n in graph.nodes())

    def test_density_contrast(self):
        graph, blocks = stochastic_block_model([20, 20], 0.5, 0.02, rng=1)
        within = across = 0
        block_of = {}
        for i, members in enumerate(blocks):
            for node in members:
                block_of[node] = i
        for edge in graph.edges():
            u, v = graph.endpoints(edge)
            if block_of[u] == block_of[v]:
                within += 1
            else:
                across += 1
        # Expected within ~ 2*190*0.5 per block, across ~ 800*0.02.
        assert within > 3 * across

    def test_validation(self):
        with pytest.raises(ValueError):
            stochastic_block_model([], 0.5, 0.1)
        with pytest.raises(ValueError):
            stochastic_block_model([3], 0.1, 0.5)  # p_out > p_in

    def test_reproducible(self):
        left, _ = stochastic_block_model([6, 6], 0.6, 0.05, rng=4)
        right, _ = stochastic_block_model([6, 6], 0.6, 0.05, rng=4)
        assert set(left.edges()) == set(right.edges())


class TestRecovery:
    def test_label_propagation_recovers_planted_blocks(self):
        graph, blocks = stochastic_block_model([15, 15], 0.7, 0.02, rng=7)
        found = label_propagation(graph, rng=3)
        assert partition_accuracy(found, blocks) > 0.9

    def test_partition_accuracy_bounds(self):
        planted = [{"a", "b"}, {"c", "d"}]
        assert partition_accuracy(planted, planted) == 1.0
        assert partition_accuracy([{"a", "c"}, {"b", "d"}], planted) == 0.5
        assert partition_accuracy([], []) == 1.0
