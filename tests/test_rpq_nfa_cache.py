"""Observability and boundedness of the regex-compilation LRU cache."""

from __future__ import annotations

from repro.core.rpq import (
    clear_compile_cache,
    compile_cache_info,
    compile_regex,
    endpoint_pairs,
    parse_regex,
)
from repro.models import figure2_labeled


def setup_function(_):
    clear_compile_cache()


def teardown_module(_):
    clear_compile_cache()


def test_repeat_compilation_hits_the_cache():
    regex = parse_regex("contact/(rides + lives)*")
    first = compile_regex(regex)
    info = compile_cache_info()
    assert info["misses"] == 1 and info["hits"] == 0 and info["currsize"] == 1
    second = compile_regex(regex)
    assert second is first  # shared automaton, no recompilation
    info = compile_cache_info()
    assert info["hits"] == 1 and info["misses"] == 1

    # An equal-but-distinct AST is the same cache key (frozen dataclasses).
    third = compile_regex(parse_regex("contact/(rides + lives)*"))
    assert third is first
    assert compile_cache_info()["hits"] == 2


def test_cache_bypass_builds_a_private_automaton():
    regex = parse_regex("contact")
    cached = compile_regex(regex)
    private = compile_regex(regex, cache=False)
    assert private is not cached
    # Bypassing touches neither counters nor contents.
    assert compile_cache_info()["currsize"] == 1


def test_cache_is_bounded_and_evicts_least_recently_used():
    clear_compile_cache(maxsize=4)
    regexes = [parse_regex(text) for text in ("r", "s", "r/s", "s/r", "r*")]
    for regex in regexes:
        compile_regex(regex)
    info = compile_cache_info()
    assert info["maxsize"] == 4
    assert info["currsize"] == 4
    assert info["evictions"] == 1  # "r" fell out
    hits_before = info["hits"]
    compile_regex(regexes[0])  # recompiles: a miss, and evicts "s"
    info = compile_cache_info()
    assert info["hits"] == hits_before
    assert info["misses"] == 6
    assert info["evictions"] == 2

    # LRU, not FIFO: touching an old entry protects it from eviction.
    clear_compile_cache(maxsize=2)
    a, b, c = (parse_regex(t) for t in ("a1", "b1", "c1"))
    first = compile_regex(a)
    compile_regex(b)
    assert compile_regex(a) is first  # refresh a; b is now least recent
    compile_regex(c)  # evicts b
    assert compile_regex(a) is first  # still cached
    assert compile_cache_info()["evictions"] == 1

    clear_compile_cache(maxsize=256)
    info = compile_cache_info()
    assert info == {"hits": 0, "misses": 0, "evictions": 0,
                    "currsize": 0, "maxsize": 256}


def test_evaluation_reuses_the_cached_automaton():
    graph = figure2_labeled()
    regex = parse_regex("?person/rides/?bus")
    baseline = endpoint_pairs(graph, regex)
    misses = compile_cache_info()["misses"]
    for _ in range(3):
        assert endpoint_pairs(graph, regex) == baseline
    info = compile_cache_info()
    assert info["misses"] == misses  # no recompilation across queries
    assert info["hits"] >= 3
