"""Mini-Cypher engine tests over the Figure 2 property graph."""

import pytest

from repro.errors import QueryEvaluationError, QuerySyntaxError
from repro.query import run_cypher
from repro.storage import PropertyGraphStore


@pytest.fixture
def store(fig2_property) -> PropertyGraphStore:
    return PropertyGraphStore(fig2_property)


class TestMatch:
    def test_label_scan(self, store):
        result = run_cypher(store, "MATCH (p:person) RETURN p")
        assert result.rows == [("n1",), ("n4",), ("n7",)]

    def test_property_map(self, store):
        result = run_cypher(store, 'MATCH (p:person {name: "Julia"}) RETURN p')
        assert result.rows == [("n1",)]

    def test_directed_hop(self, store):
        result = run_cypher(store,
                            "MATCH (p:person)-[:rides]->(b:bus) RETURN p, b")
        assert set(result.rows) == {("n1", "n3"), ("n7", "n3")}

    def test_incoming_hop(self, store):
        result = run_cypher(store, "MATCH (b:bus)<-[:owns]-(c) RETURN c")
        assert result.rows == [("n6",)]

    def test_undirected_hop(self, store):
        result = run_cypher(store,
                            'MATCH (a {name: "Julia"})-[:contact]-(x) RETURN x')
        assert set(result.rows) == {("n2",), ("n4",)}

    def test_chained_pattern(self, store):
        result = run_cypher(store, """
            MATCH (a:person)-[:rides]->(b:bus)<-[:rides]-(c:infected)
            RETURN a, c""")
        assert set(result.rows) == {("n1", "n2"), ("n7", "n2")}

    def test_comma_separated_patterns_join(self, store):
        result = run_cypher(store, """
            MATCH (a:person)-[:lives]->(h), (b:person)-[:lives]->(h)
            WHERE a <> b RETURN a, b""")
        assert set(result.rows) == {("n1", "n4"), ("n4", "n1")}

    def test_shared_variable_must_agree(self, store):
        result = run_cypher(store,
                            "MATCH (a)-[:contact]->(a) RETURN a")
        assert result.rows == []


class TestVariableLength:
    def test_bounded_range(self, store):
        result = run_cypher(store, """
            MATCH (a {name: "Ana"})-[:contact*1..2]->(x) RETURN DISTINCT x""")
        assert set(result.rows) == {("n1",), ("n2",)}

    def test_exact_count(self, store):
        result = run_cypher(store, """
            MATCH (a {name: "Ana"})-[:contact*2]->(x) RETURN x""")
        assert result.rows == [("n2",)]

    def test_rel_variable_binds_edge_list(self, store):
        result = run_cypher(store, """
            MATCH (a {name: "Ana"})-[e:contact*2]->(x) RETURN e""")
        assert result.rows == [(("e7", "e3"),)]


class TestWhereAndReturn:
    def test_property_access_and_alias(self, store):
        result = run_cypher(store, """
            MATCH (p:person) WHERE p.age > 30 RETURN p.name AS name
            ORDER BY name""")
        assert result.columns == ("name",)
        assert result.rows == [("Juan",), ("Julia",)]

    def test_numeric_comparison(self, store):
        result = run_cypher(store,
                            "MATCH (p:person) WHERE p.age < 30 RETURN p.name")
        assert result.rows == [("Ana",)]

    def test_boolean_connectives(self, store):
        result = run_cypher(store, """
            MATCH (p) WHERE p.name = "Julia" OR p.name = "Pedro" AND p.age > 30
            RETURN p ORDER BY p""")
        assert set(result.rows) == {("n1",), ("n2",)}

    def test_not(self, store):
        result = run_cypher(store, """
            MATCH (p:person) WHERE NOT p.name = "Julia" RETURN p.name""")
        assert set(result.rows) == {("Ana",), ("Juan",)}

    def test_edge_property_in_where(self, store):
        result = run_cypher(store, """
            MATCH (a)-[c:contact]->(b) WHERE c.date = "3/4/21" RETURN a, b""")
        assert result.rows == [("n1", "n2")]

    def test_missing_property_is_null(self, store):
        result = run_cypher(store, "MATCH (b:bus) RETURN b.name")
        assert result.rows == [(None,)]

    def test_order_skip_limit_distinct(self, store):
        result = run_cypher(store, """
            MATCH (p:person) RETURN DISTINCT p ORDER BY p DESC SKIP 1 LIMIT 1""")
        assert result.rows == [("n4",)]


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "MATCH (a) RETURN",
        "MATCH a RETURN a",
        "MATCH (a)-[>(b) RETURN a",
        "MATCH (a) WHERE RETURN a",
        "RETURN a",
        "MATCH (a) RETURN a extra",
    ])
    def test_syntax_rejected(self, store, bad):
        with pytest.raises(QuerySyntaxError):
            run_cypher(store, bad)

    def test_unbound_variable_in_return(self, store):
        with pytest.raises(QueryEvaluationError):
            run_cypher(store, "MATCH (a) RETURN b")

    def test_order_by_unreturned_key(self, store):
        with pytest.raises(QueryEvaluationError):
            run_cypher(store, "MATCH (a) RETURN a ORDER BY a.name")
