"""Regex -> FO / FO2 translation tests.

The key property: for star-free regexes, the FO translation, the FO2
translation and the automaton-based node extraction all compute the same
answer set.
"""

import pytest

from repro.core.logic import (
    answers_unary,
    count_distinct_variables,
    evaluate_materialized,
    regex_to_fo,
    regex_to_fo2,
)
from repro.core.rpq import nodes_matching, parse_regex
from repro.datasets import generate_contact_graph, random_labeled_graph
from repro.errors import LogicError

_STAR_FREE = [
    "?person/rides/?bus/rides^-/?infected",
    "?person/contact/?infected",
    "?person/(lives + contact)/?address + ?person/contact/?person",
    "rides/rides^-",
    "?person/contact/contact/?person",
]


class TestTranslationAgreement:
    @pytest.mark.parametrize("regex_text", _STAR_FREE)
    def test_fo_equals_fo2_equals_automaton(self, fig2_labeled, regex_text):
        regex = parse_regex(regex_text)
        expected = nodes_matching(fig2_labeled, regex)
        assert answers_unary(fig2_labeled, regex_to_fo(regex), "x") == expected
        assert answers_unary(fig2_labeled, regex_to_fo2(regex), "x") == expected

    def test_on_random_graphs(self):
        regex = parse_regex("?a/(r + s)/r^-/?b")
        for seed in (1, 2, 3, 4):
            graph = random_labeled_graph(8, 20, rng=seed)
            expected = nodes_matching(graph, regex)
            assert answers_unary(graph, regex_to_fo2(regex), "x") == expected

    def test_on_contact_graph(self):
        graph = generate_contact_graph(15, 2, 6, 1, rng=2)
        regex = parse_regex("?person/rides/?bus/rides^-/?infected")
        assert (answers_unary(graph, regex_to_fo2(regex), "x")
                == nodes_matching(graph, regex))


class TestVariableUsage:
    def test_fo2_uses_two_variables(self):
        regex = parse_regex("?person/rides/?bus/rides^-/?infected")
        assert count_distinct_variables(regex_to_fo2(regex)) == 2

    def test_fo_uses_fresh_variables(self):
        regex = parse_regex("rides/rides/rides")
        formula = regex_to_fo(regex)
        assert count_distinct_variables(formula) == 4  # x plus v1..v3

    def test_fo2_width_bound_holds(self, fig2_labeled):
        regex = parse_regex("?person/rides/?bus/rides^-/?infected")
        _, _, stats = evaluate_materialized(fig2_labeled, regex_to_fo2(regex))
        assert stats.max_width <= 2


class TestLimits:
    def test_star_rejected(self):
        with pytest.raises(LogicError):
            regex_to_fo2(parse_regex("contact*"))
        with pytest.raises(LogicError):
            regex_to_fo(parse_regex("(a/b)*"))

    def test_boolean_edge_test_rejected(self):
        with pytest.raises(LogicError):
            regex_to_fo2(parse_regex("(a & b)"))

    def test_node_test_connectives_supported(self, fig2_labeled):
        regex = parse_regex("?(person | infected)/rides/?bus")
        expected = nodes_matching(fig2_labeled, regex)
        assert answers_unary(fig2_labeled, regex_to_fo2(regex), "x") == expected
