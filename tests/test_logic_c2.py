"""C2 (two-variable counting logic) and its WL connection."""

import random

import pytest

from repro.core.gnn import wl_node_colors
from repro.core.logic import (
    And,
    CountingExists,
    EdgeRel,
    Exists,
    Label,
    Not,
    Or,
    answers_unary,
    evaluate,
    evaluate_materialized,
    is_c2,
    modal_to_c2,
)
from repro.core.logic.modal import (
    DiamondAtLeast,
    LabelProp,
    ModalAnd,
    ModalNot,
    evaluate_modal,
)
from repro.datasets import random_labeled_graph
from repro.errors import LogicError
from repro.models import LabeledGraph


class TestCountingQuantifier:
    def test_basic_counting(self):
        graph = LabeledGraph()
        graph.add_node("hub", "h")
        for i in range(3):
            graph.add_node(f"t{i}", "t")
            graph.add_edge(f"e{i}", "hub", f"t{i}", "r")
        formula = CountingExists("y", 2, EdgeRel("r", "x", "y"))
        assert answers_unary(graph, formula, "x") == {"hub"}
        formula4 = CountingExists("y", 4, EdgeRel("r", "x", "y"))
        assert answers_unary(graph, formula4, "x") == set()

    def test_count_one_equals_exists(self, fig2_labeled):
        counting = CountingExists("y", 1, EdgeRel("rides", "x", "y"))
        plain = Exists("y", EdgeRel("rides", "x", "y"))
        assert (answers_unary(fig2_labeled, counting, "x")
                == answers_unary(fig2_labeled, plain, "x"))

    def test_counting_counts_distinct_nodes(self):
        graph = LabeledGraph()
        graph.add_edge("e1", "a", "b", "r")
        graph.add_edge("e2", "a", "b", "r")  # parallel: same witness node
        formula = CountingExists("y", 2, EdgeRel("r", "x", "y"))
        assert answers_unary(graph, formula, "x") == set()

    def test_materialized_agrees_with_tuple_at_a_time(self):
        graph = random_labeled_graph(8, 20, rng=4)
        formula = CountingExists("y", 2, And(EdgeRel("r", "x", "y"),
                                             Label("a", "y")))
        rows, columns, _ = evaluate_materialized(graph, formula)
        assert columns == ("x",)
        assert {row[0] for row in rows} == answers_unary(graph, formula, "x")

    def test_vacuous_counting_variable(self, fig2_labeled):
        # exists^{>=k} y (bus(x)) holds iff bus(x) and |N| >= k.
        small = CountingExists("y", 2, Label("bus", "x"))
        assert evaluate(fig2_labeled, small, {"x": "n3"})
        too_big = CountingExists("y", 100, Label("bus", "x"))
        assert not evaluate(fig2_labeled, too_big, {"x": "n3"})
        rows, _, _ = evaluate_materialized(fig2_labeled, too_big)
        assert rows == set()

    def test_grade_validation(self):
        with pytest.raises(LogicError):
            CountingExists("y", 0, Label("a", "y"))


class TestFragmentMembership:
    def test_is_c2(self):
        good = CountingExists("y", 2, And(EdgeRel("r", "x", "y"),
                                          Label("a", "y")))
        assert is_c2(good)
        three_vars = Exists("y", Exists("z", And(EdgeRel("r", "x", "y"),
                                                 EdgeRel("r", "y", "z"))))
        assert not is_c2(three_vars)


class TestModalToC2:
    def test_translation_agrees_with_modal_semantics(self):
        for seed in (1, 2, 3):
            graph = random_labeled_graph(7, 14, rng=seed, allow_parallel=False)
            labels = sorted(graph.edge_label_set())
            formula = ModalAnd(LabelProp("a"),
                               DiamondAtLeast(2, ModalNot(LabelProp("b"))))
            translated = modal_to_c2(formula, labels)
            assert is_c2(translated)
            assert (answers_unary(graph, translated, "x")
                    == evaluate_modal(graph, formula))

    def test_nested_diamonds_reuse_variables(self):
        graph = random_labeled_graph(7, 14, rng=9, allow_parallel=False)
        labels = sorted(graph.edge_label_set())
        formula = DiamondAtLeast(1, DiamondAtLeast(1, LabelProp("a")))
        translated = modal_to_c2(formula, labels)
        from repro.core.logic.fo import all_variables

        assert all_variables(translated) == {"x", "y"}
        assert (answers_unary(graph, translated, "x")
                == evaluate_modal(graph, formula))

    def test_needs_edge_labels(self):
        with pytest.raises(LogicError):
            modal_to_c2(LabelProp("a"), [])


class TestWlConnection:
    def _random_c2(self, rng: random.Random, var: str, other: str, depth: int):
        """Random C2 formula with one free variable ``var``."""
        if depth == 0 or rng.random() < 0.3:
            return Label(rng.choice(["a", "b"]), var)
        roll = rng.random()
        if roll < 0.25:
            return Not(self._random_c2(rng, var, other, depth - 1))
        if roll < 0.5:
            return And(self._random_c2(rng, var, other, depth - 1),
                       self._random_c2(rng, var, other, depth - 1))
        if roll < 0.7:
            return Or(self._random_c2(rng, var, other, depth - 1),
                      self._random_c2(rng, var, other, depth - 1))
        edge = EdgeRel(rng.choice(["r", "s"]), var, other)
        inner = self._random_c2(rng, other, var, depth - 1)
        return CountingExists(other, rng.randint(1, 2), And(edge, inner))

    def test_wl_equal_nodes_satisfy_same_c2_formulas(self):
        """The Cai-Furer-Immerman direction, checked empirically: stable
        WL colors refine C2 types (guarded fragment, out-direction)."""
        rng = random.Random(0)
        graph = random_labeled_graph(8, 18, rng=12, allow_parallel=False)
        colors = wl_node_colors(graph, use_edge_labels=True, directed=True)
        same_color_pairs = [(u, v)
                            for u in graph.nodes() for v in graph.nodes()
                            if u != v and colors[u] == colors[v]]
        for _ in range(40):
            formula = self._random_c2(rng, "x", "y", depth=2)
            answers = answers_unary(graph, formula, "x")
            for u, v in same_color_pairs:
                assert (u in answers) == (v in answers), (formula, u, v)
