"""EXPLAIN reports: golden-file JSON schema tests for all three frontends.

The goldens under ``tests/golden/`` freeze the ``repro.obs.explain`` v2
schema (v2 added the per-frontend ``cache`` section).  EXPLAIN never executes the query, so its output is fully
deterministic and compared byte-for-byte (as parsed JSON).  If a change is
*meant* to alter the plan format, regenerate the goldens and bump
``EXPLAIN_SCHEMA_VERSION``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.models import figure2_labeled, figure2_property
from repro.models.convert import labeled_to_rdf
from repro.obs import (
    explain_cypher,
    explain_pathql,
    explain_sparql,
    regex_index_plan,
)
from repro.core.rpq import parse_regex
from repro.storage import PropertyGraphStore, TripleStore

GOLDEN = Path(__file__).parent / "golden"


def _golden(name: str) -> dict:
    return json.loads((GOLDEN / name).read_text())


def _reports():
    graph = figure2_labeled()
    store = TripleStore.from_graph(labeled_to_rdf(graph))
    pg_store = PropertyGraphStore(figure2_property())
    return {
        "explain_pathql.json": explain_pathql(
            graph, "PATHS MATCHING ?person/contact* LENGTH 2 COUNT",
            governed=True),
        "explain_pathql_chain.json": explain_pathql(
            graph, "PATHS MATCHING contact/lives LENGTH 2"),
        "explain_sparql.json": explain_sparql(
            store,
            "SELECT ?x ?y WHERE { ?x <contact> ?y . ?x <rdf:type> <person> . }"),
        "explain_cypher.json": explain_cypher(
            pg_store, "MATCH (p:person)-[:contact]->(q:person) RETURN p.name"),
    }


@pytest.mark.parametrize("name", [
    "explain_pathql.json", "explain_pathql_chain.json",
    "explain_sparql.json", "explain_cypher.json",
])
def test_explain_matches_golden(name):
    assert _reports()[name].to_dict() == _golden(name)


@pytest.mark.parametrize("name", [
    "explain_pathql.json", "explain_pathql_chain.json",
    "explain_sparql.json", "explain_cypher.json",
])
def test_explain_json_round_trips(name):
    report = _reports()[name]
    payload = json.loads(report.to_json())
    assert payload["schema"] == "repro.obs.explain"
    assert payload["version"] == 2
    assert payload == report.to_dict()


def test_explain_text_leads_with_strategy():
    for report in _reports().values():
        lines = report.to_text().splitlines()
        assert lines[0].startswith(f"EXPLAIN [{report.frontend}]")
        assert lines[1].startswith("strategy: ")


def test_chain_vs_product_strategies_diverge():
    graph = figure2_labeled()
    chain = explain_pathql(graph, "PATHS MATCHING contact/lives LENGTH 2")
    star = explain_pathql(graph, "PATHS MATCHING contact* LENGTH 2")
    assert chain.details["regex_shape"] == "chain(2 steps)"
    assert "chain-frontier-join" in chain.details["reachability_strategy"]
    assert star.details["regex_shape"] == "general (product automaton)"
    assert "product" in star.details["reachability_strategy"]


def test_governed_explain_includes_degradation_ladder():
    graph = figure2_labeled()
    governed = explain_pathql(graph, "PATHS MATCHING contact* LENGTH 2 COUNT",
                              governed=True)
    rungs = [r["rung"] for r in governed.details["degradation_ladder"]]
    assert rungs == ["exact", "approx", "lower-bound"]
    shares = [r["budget_share"] for r in governed.details["degradation_ladder"]]
    assert shares == [0.5, 0.4, 0.1]
    ungoverned = explain_pathql(graph, "PATHS MATCHING contact* LENGTH 2 COUNT")
    assert "degradation_ladder" not in ungoverned.details


def test_index_plan_backends():
    graph = figure2_labeled()
    plan = regex_index_plan(graph, parse_regex("contact/?person"))
    assert plan[0]["backend"] == "label-index"
    assert plan[0]["test"] == "contact"
    missing = regex_index_plan(graph, parse_regex("no_such_label"))
    assert missing[0]["backend"] == "label-index"
    assert missing[0]["candidates"] == ["no_such_label"]


def test_explain_cache_section_present_for_all_frontends():
    for report in _reports().values():
        section = report.details["cache"]
        assert section["key_family"] == report.frontend
        assert isinstance(section["footprint"], dict)
        # Every report target in _reports() carries a mutation log.
        assert isinstance(section["target_version"], int)


def test_explain_cache_footprint_reflects_query_labels():
    graph = figure2_labeled()
    report = explain_pathql(graph, "PATHS MATCHING contact/lives LENGTH 2")
    footprint = report.details["cache"]["footprint"]
    assert footprint["edge_labels"] == ["contact", "lives"]
    assert not footprint["all_edges"]


def test_sparql_explain_reports_greedy_join_order():
    store = TripleStore.from_graph(labeled_to_rdf(figure2_labeled()))
    report = explain_sparql(
        store,
        "SELECT ?x ?y WHERE { ?x <contact> ?y . ?x <rdf:type> <person> . }")
    (branch,) = report.details["branches"]
    estimates = [step["estimated_matches"] for step in branch["join_order"]]
    # Greedy selectivity: most selective pattern first.
    assert estimates == sorted(estimates)


def test_cypher_explain_reports_candidate_sources():
    report = explain_cypher(
        PropertyGraphStore(figure2_property()),
        "MATCH (p:person)-[:contact*1..3]->(q) RETURN p.name")
    (pattern,) = report.details["patterns"]
    assert pattern["nodes"][0]["candidate_source"] == "label-index(:person)"
    (rel,) = pattern["rels"]
    assert rel["expansion"] == "bfs(1..3)"
