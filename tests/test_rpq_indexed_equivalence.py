"""Indexed evaluation must be indistinguishable from the full-scan fallback.

Every query mode — ``endpoint_pairs``, ``nodes_matching``, ``count`` and
``enumerate_paths_up_to`` — is run twice, once with the label-indexed
product construction (the default) and once with ``use_label_index=False``
(the reference full scan), over the seed regex corpus on the Figure 2
graphs and over a pool of random graphs.  Results must be identical, path
lists **in the same order** (the enumerator's output order is value-level
deterministic, independent of product-internal state numbering).
"""

from __future__ import annotations

import pytest

from repro.core.rpq import (
    count_paths_exact,
    endpoint_pairs,
    enumerate_paths_up_to,
    nodes_matching,
    parse_regex,
)
from repro.datasets import random_labeled_graph, random_vector_graph
from repro.models import figure2_labeled, figure2_property, figure2_vector

# The seed corpus: the paper's worked queries plus shapes covering every
# operator, inverses, negation, wildcards and the FalseTest short-circuit.
SEED_CORPUS = [
    "?person/contact/?infected",
    '?person/(contact & date="3/4/21")/?infected',
    "?person/rides/?bus/rides^-/?infected",
    "(contact + lives)*",
    "contact",
    "rides^-",
    "(contact + rides)/lives",
    "(!contact)*",
    "true*",
    "false",
    "?person/true/?bus",
    "(contact & rides)",
    "(contact | rides)",
]

# Corpus for random graphs labeled with r/s edges and a/b nodes.
RANDOM_CORPUS = [
    "r",
    "s",
    "r/s",
    "r/r/s",
    "(r + s)*",
    "?a/r/?b",
    "r^-",
    "(r + s)/s^-",
    "(!r)",
    "(r & !s)",
    "(r | s)/r",
    "?a/(r/s^-)*",
    "true/r",
    "false/r",
]

VECTOR_CORPUS = [
    "f1=0",
    "(f1=0)^-",
    "(f1=0 & f2=1)",
    "(f1=0 | f1=1)",
    "(f1=0)/(f2=1)",
    "((f1=0) + (f1=1))*",
    "?(f1=0)/(f2=1)",
    "(f1=0 & !(f2=1))",
]


def assert_equivalent(graph, regex_text: str, max_k: int = 3) -> None:
    regex = parse_regex(regex_text)
    indexed_pairs = endpoint_pairs(graph, regex, use_label_index=True)
    scanned_pairs = endpoint_pairs(graph, regex, use_label_index=False)
    assert indexed_pairs == scanned_pairs, regex_text

    assert (nodes_matching(graph, regex, use_label_index=True)
            == nodes_matching(graph, regex, use_label_index=False)), regex_text

    for k in range(max_k + 1):
        assert (count_paths_exact(graph, regex, k, use_label_index=True)
                == count_paths_exact(graph, regex, k, use_label_index=False)), \
            (regex_text, k)

    indexed_paths = list(enumerate_paths_up_to(graph, regex, max_k,
                                               use_label_index=True))
    scanned_paths = list(enumerate_paths_up_to(graph, regex, max_k,
                                               use_label_index=False))
    assert indexed_paths == scanned_paths, regex_text


@pytest.mark.parametrize("regex_text", SEED_CORPUS)
def test_seed_corpus_on_figure2_labeled(regex_text):
    graph = figure2_labeled()
    if "date=" in regex_text:
        pytest.skip("property test needs a property graph")
    assert_equivalent(graph, regex_text)


@pytest.mark.parametrize("regex_text", SEED_CORPUS)
def test_seed_corpus_on_figure2_property(regex_text):
    assert_equivalent(figure2_property(), regex_text)


@pytest.mark.parametrize("regex_text", VECTOR_CORPUS)
def test_vector_corpus_on_figure2_vector(regex_text):
    graph = figure2_vector()
    if graph.dimension < 2:
        pytest.skip("figure 2 vector graph is unexpectedly narrow")
    assert_equivalent(graph, regex_text)


@pytest.mark.parametrize("seed", range(20))
def test_random_graphs_agree(seed):
    """>= 20 random graphs of varying density, the full random corpus."""
    n = 5 + (seed % 5)
    graph = random_labeled_graph(n, 2 * n + seed % 7, rng=seed)
    for regex_text in RANDOM_CORPUS:
        assert_equivalent(graph, regex_text, max_k=3)


@pytest.mark.parametrize("seed", range(5))
def test_random_vector_graphs_agree(seed):
    graph = random_vector_graph(6, 14, 3, rng=seed)
    for regex_text in VECTOR_CORPUS:
        assert_equivalent(graph, regex_text, max_k=3)


def test_start_and_end_restrictions_agree():
    graph = random_labeled_graph(8, 20, rng=42)
    regex = parse_regex("r/(s + r)")
    nodes = sorted(graph.nodes(), key=str)
    starts, ends = nodes[:3], nodes[3:6]
    assert (endpoint_pairs(graph, regex, start_nodes=starts, end_nodes=ends,
                           use_label_index=True)
            == endpoint_pairs(graph, regex, start_nodes=starts, end_nodes=ends,
                              use_label_index=False))
    assert (count_paths_exact(graph, regex, 2, start_nodes=starts,
                              end_nodes=ends, use_label_index=True)
            == count_paths_exact(graph, regex, 2, start_nodes=starts,
                                 end_nodes=ends, use_label_index=False))
    assert (list(enumerate_paths_up_to(graph, regex, 3, start_nodes=starts,
                                       end_nodes=ends, use_label_index=True))
            == list(enumerate_paths_up_to(graph, regex, 3, start_nodes=starts,
                                          end_nodes=ends, use_label_index=False)))


@pytest.mark.parametrize("regex_text", [
    "r", "s", "r^-", "(r + s)", "(r + s^-)", "(!r)", "(r & !s)", "true", "false",
    "r/s", "r/r/s", "(r + s)/s^-", "r^-/s", "(r & !s)/(r + s)", "true/r",
    "false/r", "r/false",
])
def test_chain_fast_path_matches_the_product_path(regex_text):
    """Pure edge-step chains take a frontier-join fast path when
    unrestricted; passing ``start_nodes=all nodes`` forces the generic
    product machinery, which must agree (with and without the index)."""
    for seed in range(6):
        graph = random_labeled_graph(6 + seed, 18 + seed, rng=30 + seed)
        regex = parse_regex(regex_text)
        everyone = list(graph.nodes())
        for indexed in (True, False):
            fast = endpoint_pairs(graph, regex, use_label_index=indexed)
            generic = endpoint_pairs(graph, regex, start_nodes=everyone,
                                     use_label_index=indexed)
            assert fast == generic, (regex_text, seed, indexed)
            assert (nodes_matching(graph, regex, use_label_index=indexed)
                    == {a for a, _ in generic}), (regex_text, seed, indexed)


def test_out_of_range_feature_test_still_raises():
    """The feature fast path must not mask the per-edge SchemaError."""
    from repro.errors import SchemaError

    graph = random_vector_graph(4, 8, 2, rng=1)
    regex = parse_regex("f9=0")
    with pytest.raises(SchemaError):
        endpoint_pairs(graph, regex, use_label_index=True)
    with pytest.raises(SchemaError):
        endpoint_pairs(graph, regex, use_label_index=False)


def test_label_test_on_vector_graph_still_raises_capability_error():
    from repro.errors import ModelCapabilityError

    graph = random_vector_graph(4, 8, 2, rng=2)
    regex = parse_regex("somelabel")
    with pytest.raises(ModelCapabilityError):
        endpoint_pairs(graph, regex, use_label_index=True)
