"""PathQL tests: the Section 4.1 modes behind one declarative surface."""

import pytest

from repro.core.rpq import count_paths_exact, enumerate_paths, parse_regex
from repro.errors import QueryEvaluationError, QuerySyntaxError
from repro.query import parse_pathql, run_pathql


class TestParsing:
    def test_full_clause_set(self):
        query = parse_pathql(
            "PATHS MATCHING ?person/rides/?bus FROM n1 TO n3 LENGTH 1 "
            "SAMPLE 5 SEED 7")
        assert query.source == "n1"
        assert query.target == "n3"
        assert query.length == 1
        assert query.mode == "sample"
        assert query.samples == 5
        assert query.seed == 7

    def test_regex_stops_at_keywords(self):
        query = parse_pathql("PATHS MATCHING contact* FROM n4 SHORTEST TO n2")
        assert query.regex == parse_regex("contact*")
        assert query.shortest

    def test_quoted_values_survive_tokenization(self):
        query = parse_pathql(
            'PATHS MATCHING (contact & date="3/4/21") LENGTH 1 COUNT')
        assert query.mode == "count"

    @pytest.mark.parametrize("bad", [
        "MATCHING a LENGTH 1 COUNT",
        "PATHS MATCHING",
        "PATHS MATCHING a COUNT",               # no LENGTH
        "PATHS MATCHING a LENGTH 2 MAXLENGTH 3",
        "PATHS MATCHING a SHORTEST LENGTH 2",
        "PATHS MATCHING a LENGTH x COUNT",
        "PATHS MATCHING a LENGTH 2 SAMPLE 0",
        "PATHS MATCHING a LENGTH 2 BOGUS",
        "PATHS MATCHING a",                      # no mode bound at all
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_pathql(bad)


class TestExecution:
    def test_enumerate_mode(self, fig2_labeled):
        result = run_pathql(fig2_labeled,
                            "PATHS MATCHING ?person/contact/?infected LENGTH 1")
        assert result.mode == "enumerate"
        assert [p.to_text() for p in result.paths] == ["n1 -e3- n2"]

    def test_limit(self, small_random_graph):
        result = run_pathql(small_random_graph,
                            "PATHS MATCHING (r + s)/(r + s) LENGTH 2 LIMIT 3")
        assert len(result.paths) == 3

    def test_maxlength_enumerates_all_lengths(self, fig2_labeled):
        result = run_pathql(fig2_labeled,
                            "PATHS MATCHING (rides + rides^-)* MAXLENGTH 2")
        lengths = {p.length for p in result.paths}
        assert lengths == {0, 1, 2}

    def test_count_mode(self, small_random_graph):
        result = run_pathql(small_random_graph,
                            "PATHS MATCHING (r + s)* LENGTH 3 COUNT")
        regex = parse_regex("(r + s)*")
        assert result.count == count_paths_exact(small_random_graph, regex, 3)
        assert result.paths == []

    def test_count_approx_mode(self, small_random_graph):
        result = run_pathql(small_random_graph,
                            "PATHS MATCHING (r + s)* LENGTH 3 "
                            "COUNT APPROX 0.15 SEED 3")
        exact = count_paths_exact(small_random_graph, parse_regex("(r + s)*"), 3)
        assert result.mode == "count-approx"
        assert abs(result.count - exact) <= 0.15 * exact

    def test_sample_mode(self, small_random_graph):
        result = run_pathql(small_random_graph,
                            "PATHS MATCHING (r + s)/(r + s) LENGTH 2 "
                            "SAMPLE 10 SEED 1")
        support = set(enumerate_paths(small_random_graph,
                                      parse_regex("(r + s)/(r + s)"), 2))
        assert len(result.paths) == 10
        assert all(p in support for p in result.paths)
        assert result.count == len(support)

    def test_shortest_mode(self, fig2_labeled):
        result = run_pathql(fig2_labeled,
                            "PATHS MATCHING (contact + contact^-)* "
                            "FROM n4 TO n2 SHORTEST LIMIT 10")
        assert all(p.length == 2 for p in result.paths)
        assert all(p.start == "n4" and p.end == "n2" for p in result.paths)

    def test_shortest_unreachable(self, fig2_labeled):
        result = run_pathql(fig2_labeled,
                            "PATHS MATCHING contact FROM n7 TO n2 SHORTEST COUNT")
        assert result.count == 0

    def test_shortest_needs_endpoints(self, fig2_labeled):
        with pytest.raises(QueryEvaluationError):
            run_pathql(fig2_labeled, "PATHS MATCHING contact SHORTEST COUNT")

    def test_endpoint_restrictions(self, fig2_labeled):
        result = run_pathql(fig2_labeled,
                            "PATHS MATCHING ?person/rides/?bus/rides^-/?infected "
                            "FROM n7 LENGTH 2")
        assert [p.start for p in result.paths] == ["n7"]

    def test_property_test_on_property_graph(self, fig2_property):
        result = run_pathql(fig2_property,
                            'PATHS MATCHING ?person/(contact & date="3/4/21") '
                            "LENGTH 1 COUNT")
        assert result.count == 1

    def test_sample_reproducible(self, small_random_graph):
        text = ("PATHS MATCHING (r + s)/(r + s) LENGTH 2 SAMPLE 5 SEED 9")
        first = run_pathql(small_random_graph, text)
        second = run_pathql(small_random_graph, text)
        assert first.paths == second.paths
