"""WorkerPool semantics: sharding, budgets, faults, traces, batch sessions.

The differential harness (test_differential.py) pins *equivalence* at
scale; this file pins the pool's contracts one by one — partitioning,
budget subdivision and global binding, two-way cancellation, per-worker
fault targeting, deterministic trace merging, and the BatchSession's
per-query error isolation.
"""

from __future__ import annotations

import json

import pytest

from repro.analytics import hits, pagerank
from repro.core.rpq import count_paths_exact, endpoint_pairs, parse_regex
from repro.datasets import clustered_labeled_graph, random_labeled_graph
from repro.errors import BudgetExceeded, Cancelled, WorkerFailed
from repro.exec import (
    BatchQuery,
    BatchSession,
    Budget,
    Context,
    FaultInjector,
    WorkerPool,
    batch_exit_status,
    fork_available,
)
from repro.exec.budget import MIN_FRACTION_SECONDS
from repro.exec.parallel import (
    partition_chunks,
    partition_ranges,
    register_task,
    sharded_count_paths,
    sharded_endpoint_pairs,
)
from repro.models import figure2_labeled, figure2_property
from repro.obs import Tracer


@register_task("test.echo")
def _task_echo(state, payload, ctx, tracer):
    return {"payload": payload, "worker": state["index"]}


@register_task("test.boom")
def _task_boom(state, payload, ctx, tracer):
    raise ValueError(payload["message"])


@register_task("test.unpicklable")
def _task_unpicklable(state, payload, ctx, tracer):
    return lambda: None


@register_task("test.spin")
def _task_spin(state, payload, ctx, tracer):
    for _ in range(payload["steps"]):
        ctx.checkpoint("test.spin")
    return payload["steps"]


@pytest.fixture
def graph():
    return random_labeled_graph(12, 30, rng=5)


@pytest.fixture
def inline_pool(graph):
    with WorkerPool(graph, 1) as pool:
        yield pool


@pytest.fixture
def forked_pool(graph):
    if not fork_available():
        pytest.skip("platform has no fork start method")
    with WorkerPool(graph, 2) as pool:
        yield pool


class TestPartitioning:
    def test_chunks_are_contiguous_and_cover(self):
        items = list(range(10))
        shards = partition_chunks(items, 3)
        assert [list(s) for s in shards] == [[0, 1, 2, 3], [4, 5, 6, 7],
                                             [8, 9]]
        assert sum(len(s) for s in shards) == len(items)

    def test_more_shards_than_items_drops_empties(self):
        assert partition_chunks([1, 2], 5) == [(1,), (2,)]
        assert partition_chunks([], 3) == []

    def test_single_shard_is_identity(self):
        assert partition_chunks([3, 1, 2], 1) == [(3, 1, 2)]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            partition_chunks([1], 0)
        with pytest.raises(ValueError):
            partition_ranges(4, 0)

    def test_ranges_tile_the_interval(self):
        ranges = partition_ranges(10, 4)
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo


class TestSubdivide:
    def test_no_context_means_no_budget(self):
        assert WorkerPool.subdivide(None, 4) is None

    def test_steps_and_bytes_split_deadline_passes_whole(self):
        ctx = Context(Budget(deadline=60.0, max_steps=100, max_frontier=7,
                             max_bytes=1000, max_results=9))
        deadline, steps, frontier, max_bytes, results = WorkerPool.subdivide(
            ctx, 4)
        assert steps == 25
        assert max_bytes == 250
        assert frontier == 7  # size caps bind each worker independently
        assert results == 9
        assert deadline == pytest.approx(60.0, abs=1.0)

    def test_floors_keep_every_shard_runnable(self):
        ctx = Context(Budget(max_steps=3, max_bytes=2))
        _, steps, _, max_bytes, _ = WorkerPool.subdivide(ctx, 8)
        assert steps == 1
        assert max_bytes == 1

    def test_exhausted_deadline_floors_at_min_fraction(self):
        ctx = Context(Budget(deadline=1e-12))
        deadline, *_ = WorkerPool.subdivide(ctx, 2)
        assert deadline >= MIN_FRACTION_SECONDS

    def test_unlimited_stays_unlimited(self):
        assert WorkerPool.subdivide(Context(), 4) == (None,) * 5


class TestPoolLifecycle:
    def test_workers_below_one_rejected(self, graph):
        with pytest.raises(ValueError):
            WorkerPool(graph, 0)

    def test_single_worker_is_inline(self, inline_pool):
        assert inline_pool.is_inline
        assert inline_pool.n_shards == 1

    def test_forked_pool_is_not_inline(self, forked_pool):
        assert not forked_pool.is_inline
        assert forked_pool.n_shards == 2

    def test_close_is_idempotent_and_degrades_to_inline(self, graph):
        pool = WorkerPool(graph, 2)
        pool.close()
        pool.close()
        assert pool.is_inline
        # A closed pool still answers, through the inline path.
        assert pool.run_tasks([("test.echo", {"n": 1})]) == [
            {"payload": {"n": 1}, "worker": 0}]

    def test_empty_task_list(self, inline_pool):
        assert inline_pool.run_tasks([]) == []

    def test_results_come_back_in_task_order(self, forked_pool):
        tasks = [("test.echo", {"n": n}) for n in range(7)]
        results = forked_pool.run_tasks(tasks)
        assert [r["payload"]["n"] for r in results] == list(range(7))
        # Deterministic round-robin placement: task i on worker i % 2.
        assert [r["worker"] for r in results] == [0, 1, 0, 1, 0, 1, 0]


class TestShardedEquivalence:
    REGEXES = ["(r + s)*", "r/s", "?a/r/(r + s)*", "s^-/r", "(r/s)*+r"]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("regex_text", REGEXES)
    def test_endpoint_pairs_match_serial(self, graph, workers, regex_text):
        regex = parse_regex(regex_text)
        serial = endpoint_pairs(graph, regex)
        with WorkerPool(graph, workers) as pool:
            assert sharded_endpoint_pairs(pool, graph, regex) == serial

    @pytest.mark.parametrize("workers", [1, 3])
    @pytest.mark.parametrize("regex_text", REGEXES)
    def test_count_paths_match_serial(self, graph, workers, regex_text):
        regex = parse_regex(regex_text)
        serial = count_paths_exact(graph, regex, 3)
        with WorkerPool(graph, workers) as pool:
            assert sharded_count_paths(pool, graph, regex, 3) == serial

    def test_restricted_and_duplicated_start_nodes(self, graph):
        regex = parse_regex("r/(r + s)")
        starts = ["v1", "v3", "v5", "v3", "v1"]  # duplicates must not double
        serial = endpoint_pairs(graph, regex, start_nodes=set(starts))
        with WorkerPool(graph, 2) as pool:
            assert sharded_endpoint_pairs(pool, graph, regex,
                                          start_nodes=starts) == serial
            assert (sharded_count_paths(pool, graph, regex, 2,
                                        start_nodes=starts)
                    == count_paths_exact(graph, regex, 2,
                                         start_nodes=set(starts)))

    def test_end_node_restriction(self, graph):
        regex = parse_regex("(r + s)/(r + s)")
        ends = ["v0", "v2"]
        serial = endpoint_pairs(graph, regex, end_nodes=ends)
        with WorkerPool(graph, 2) as pool:
            assert sharded_endpoint_pairs(pool, graph, regex,
                                          end_nodes=ends) == serial

    def test_pool_keyword_on_serial_entry_points(self, graph):
        """endpoint_pairs/count_paths_exact grow a pool= that delegates."""
        regex = parse_regex("(r + s)*/r")
        with WorkerPool(graph, 2) as pool:
            assert (endpoint_pairs(graph, regex, pool=pool)
                    == endpoint_pairs(graph, regex))
            assert (count_paths_exact(graph, regex, 2, pool=pool)
                    == count_paths_exact(graph, regex, 2))

    def test_pool_bound_to_other_graph_rejected(self, graph):
        other = figure2_labeled()
        with WorkerPool(other, 2) as pool:
            with pytest.raises(ValueError, match="different graph"):
                sharded_endpoint_pairs(pool, graph, parse_regex("r"))


class TestBudgetsAcrossWorkers:
    def test_worker_steps_charge_the_parent_counter(self, forked_pool):
        ctx = Context(Budget(max_steps=1000))
        results = forked_pool.run_tasks(
            [("test.spin", {"steps": 40}), ("test.spin", {"steps": 27})],
            ctx=ctx)
        assert results == [40, 27]
        # 1 parent submit checkpoint + the workers' 67, all on one counter.
        assert ctx.stats.total_checkpoints == 68
        assert ctx._shared.steps == 68
        assert ctx.stats.checkpoints["test.spin"] == 67
        assert ctx.stats.checkpoints["parallel.submit"] == 1

    def test_global_step_budget_binds_through_the_pool(self, graph):
        regex = parse_regex("(r + s)*")
        with WorkerPool(graph, 2) as pool:
            ctx = Context(Budget(max_steps=5))
            with pytest.raises(BudgetExceeded) as excinfo:
                sharded_count_paths(pool, graph, regex, 4, ctx=ctx)
            assert excinfo.value.resource == "steps"
            # The pool survives the failure and still answers.
            assert (sharded_count_paths(pool, graph, regex, 4, ctx=Context())
                    == count_paths_exact(graph, regex, 4))

    def test_inline_and_forked_agree_on_exhaustion(self, graph):
        regex = parse_regex("(r + s)*")
        outcomes = []
        for workers in (1, 2):
            with WorkerPool(graph, workers) as pool:
                try:
                    sharded_count_paths(pool, graph, regex, 4,
                                        ctx=Context(Budget(max_steps=5)))
                    outcomes.append("ok")
                except BudgetExceeded as exceeded:
                    outcomes.append(exceeded.resource)
        assert outcomes == ["steps", "steps"]

    def test_degradations_merge_back(self, forked_pool, graph):
        """Worker-side stats (checkpoint sites) reach the parent stats."""
        regex = parse_regex("(r + s)*")
        ctx = Context(Budget(max_steps=100_000))
        sharded_endpoint_pairs(forked_pool, graph, regex, ctx=ctx)
        sites = set(ctx.stats.checkpoints)
        assert "parallel.submit" in sites
        assert any(site != "parallel.submit" for site in sites)


class TestCancellation:
    def test_pre_cancelled_context_stops_at_submit(self, forked_pool):
        ctx = Context()
        ctx.cancel()
        with pytest.raises(Cancelled) as excinfo:
            forked_pool.run_tasks([("test.echo", {})], ctx=ctx)
        assert excinfo.value.site == "parallel.submit"

    def test_injected_cancel_reaches_the_parent(self, graph):
        faults = FaultInjector(fail_at=3, kind="cancel")
        with WorkerPool(graph, 2, fault_plans={0: faults, 1: faults}) as pool:
            with pytest.raises(Cancelled):
                sharded_count_paths(pool, graph, parse_regex("(r + s)*"), 4,
                                    ctx=Context())

    def test_event_clears_between_runs(self, graph):
        """A cancelled run must not poison the next one (event reset)."""
        faults = FaultInjector(fail_at=3, kind="cancel")
        with WorkerPool(graph, 2, fault_plans={0: faults}) as pool:
            with pytest.raises((Cancelled, BudgetExceeded)):
                sharded_count_paths(pool, graph, parse_regex("(r + s)*"), 4,
                                    ctx=Context())
            # The injector is one-shot (fired=True persists in the worker),
            # so a clean event means this run completes.
            assert (sharded_endpoint_pairs(pool, graph, parse_regex("r"))
                    == endpoint_pairs(graph, parse_regex("r")))


class TestFaultTargeting:
    def test_fault_plan_targets_one_worker(self, graph):
        """An injected deadline on worker 1 surfaces as injected=True."""
        plans = {1: FaultInjector(fail_at=1, kind="deadline")}
        with WorkerPool(graph, 2, fault_plans=plans) as pool:
            with pytest.raises(BudgetExceeded) as excinfo:
                sharded_count_paths(pool, graph, parse_regex("(r + s)*"), 3,
                                    ctx=Context())
            assert excinfo.value.injected

    def test_budget_error_outranks_sibling_cancellations(self, graph):
        """Whichever shard order the errors land in, the cause wins."""
        plans = {0: FaultInjector(fail_at=2, kind="steps")}
        with WorkerPool(graph, 2, fault_plans=plans) as pool:
            with pytest.raises(BudgetExceeded) as excinfo:
                sharded_count_paths(pool, graph, parse_regex("(r + s)*"), 3,
                                    ctx=Context())
            assert excinfo.value.resource == "steps"

    def test_unplanned_worker_exception_raises_worker_failed(self,
                                                             forked_pool):
        with pytest.raises(WorkerFailed) as excinfo:
            forked_pool.run_tasks([("test.boom", {"message": "kapow"})])
        assert "kapow" in str(excinfo.value)

    def test_unpicklable_result_is_reported_not_fatal(self, forked_pool):
        with pytest.raises(WorkerFailed):
            forked_pool.run_tasks([("test.unpicklable", {})])
        # The worker survived the pickling failure.
        assert forked_pool.run_tasks([("test.echo", {"n": 1})]) == [
            {"payload": {"n": 1}, "worker": 0}]


def _strip_timing(span: dict) -> dict:
    return {
        "name": span["name"],
        "status": span["status"],
        "error": span["error"],
        "attrs": span["attrs"],
        "children": [_strip_timing(child) for child in span["children"]],
    }


class TestTraceMerging:
    def _trace(self, pool, graph) -> dict:
        tracer = Tracer()
        sharded_endpoint_pairs(pool, graph, parse_regex("(r + s)*/r"),
                               ctx=Context(), tracer=tracer)
        return tracer.to_dict()

    def test_merged_shape(self, forked_pool, graph):
        trace = self._trace(forked_pool, graph)
        assert [span["name"] for span in trace["spans"]] == ["parallel"]
        parallel = trace["spans"][0]
        assert parallel["attrs"] == {"workers": 2, "tasks": 2,
                                     "inline": False}
        workers = [child["name"] for child in parallel["children"]]
        assert workers == ["worker:0", "worker:1"]
        for worker, span in enumerate(parallel["children"]):
            for child in span["children"]:
                assert child["attrs"]["task"] == worker  # task i on worker i

    def test_two_runs_identical_modulo_timing(self, graph):
        if not fork_available():
            pytest.skip("platform has no fork start method")
        with WorkerPool(graph, 2) as pool:
            first = self._trace(pool, graph)
            second = self._trace(pool, graph)
        stripped = [json.dumps([_strip_timing(s) for s in t["spans"]],
                               sort_keys=True)
                    for t in (first, second)]
        assert stripped[0] == stripped[1]

    def test_inline_trace_has_same_span_names(self, inline_pool, graph):
        trace = self._trace(inline_pool, graph)
        assert [span["name"] for span in trace["spans"]] == ["parallel"]
        parallel = trace["spans"][0]
        assert parallel["attrs"]["inline"] is True
        assert [c["name"] for c in parallel["children"]] == ["worker:0"]


class TestAnalyticsSharding:
    @pytest.fixture
    def analytics_graph(self):
        return clustered_labeled_graph(6, 8, 20, rng=3)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pagerank_matches_serial(self, analytics_graph, workers):
        serial = pagerank(analytics_graph)
        with WorkerPool(analytics_graph, workers) as pool:
            pooled = pagerank(analytics_graph, pool=pool)
        assert pooled.keys() == serial.keys()
        for node, score in serial.items():
            assert pooled[node] == pytest.approx(score, abs=1e-9)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_hits_matches_serial(self, analytics_graph, workers):
        serial_hub, serial_auth = hits(analytics_graph)
        with WorkerPool(analytics_graph, workers) as pool:
            hub, auth = hits(analytics_graph, pool=pool)
        for node in serial_hub:
            assert hub[node] == pytest.approx(serial_hub[node], abs=1e-9)
            assert auth[node] == pytest.approx(serial_auth[node], abs=1e-9)

    def test_pagerank_rejects_foreign_pool(self, analytics_graph):
        with WorkerPool(figure2_labeled(), 2) as pool:
            with pytest.raises(ValueError):
                pagerank(analytics_graph, pool=pool)


class TestBatchSession:
    QUERIES = [
        BatchQuery("pathql",
                   "PATHS MATCHING ?person/contact/?infected LENGTH 1 COUNT"),
        BatchQuery("sparql",
                   "SELECT ?x WHERE { ?x <rdf:type> <person> . }"),
        BatchQuery("cypher", "MATCH (p:person) RETURN p.name"),
    ]

    @pytest.mark.parametrize("workers", [1, 3])
    def test_mixed_batch_in_submission_order(self, workers):
        with BatchSession(figure2_property(), workers) as session:
            results = session.run_batch(self.QUERIES)
        assert [r.index for r in results] == [0, 1, 2]
        assert [r.language for r in results] == ["pathql", "sparql", "cypher"]
        assert all(r.status == "ok" for r in results)
        assert results[0].value["count"] == 1  # the Figure 2 worked example
        assert ["n1"] in results[1].value["rows"]
        assert batch_exit_status(results) == "ok"

    def test_parallel_batch_matches_serial_batch(self):
        with BatchSession(figure2_property(), 1) as serial_session:
            serial = serial_session.run_batch(self.QUERIES)
        with BatchSession(figure2_property(), 3) as session:
            parallel = session.run_batch(self.QUERIES)
        assert [r.to_dict() for r in parallel] == [r.to_dict()
                                                  for r in serial]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_per_query_error_isolation(self, workers):
        queries = [
            ("pathql", "PATHS MATCHING ?person/contact LENGTH 1 COUNT"),
            ("pathql", "PATHS MATCHING ((( LENGTH 1"),  # parse error
            ("cypher", "MATCH (p:person) RETURN p.name"),
        ]
        with BatchSession(figure2_property(), workers) as session:
            results = session.run_batch(queries)
        assert [r.status for r in results] == ["ok", "error", "ok"]
        assert "SyntaxError" in results[1].error
        assert batch_exit_status(results) == "error"

    def test_degraded_query_reports_degraded(self):
        queries = [("pathql",
                    "PATHS MATCHING (contact + rides)* LENGTH 4 COUNT")]
        with BatchSession(figure2_property(), 1) as session:
            results = session.run_batch(queries,
                                        ctx=Context(Budget(max_steps=6)))
        assert results[0].status in ("degraded", "budget")
        assert results[0].ok or results[0].status == "budget"
        assert batch_exit_status(results) == "degraded"

    def test_accepts_dicts_tuples_and_objects(self):
        with BatchSession(figure2_property(), 1) as session:
            results = session.run_batch([
                {"language": "cypher",
                 "query": "MATCH (p:person) RETURN p.name"},
                ("sparql", "SELECT ?x WHERE { ?x <rdf:type> <bus> . }"),
                BatchQuery("pathql", "PATHS MATCHING rides LENGTH 1 COUNT"),
            ])
        assert [r.status for r in results] == ["ok"] * 3

    def test_unknown_language_rejected(self):
        with pytest.raises(ValueError, match="unknown query language"):
            BatchQuery("gremlin", "g.V()")

    def test_store_conversion_failure_is_isolated(self):
        """Cypher needs a property graph; on a labeled graph it errors,
        while the PathQL half of the batch still answers."""
        with BatchSession(figure2_labeled(), 1) as session:
            results = session.run_batch([
                ("pathql", "PATHS MATCHING contact LENGTH 1 COUNT"),
                ("cypher", "MATCH (p:person) RETURN p"),
            ])
        assert results[0].status == "ok"
        assert results[1].status == "error"
        assert "ConversionError" in results[1].error
