"""Tests pinning the Figure 2 graphs to the paper's textual description."""

from repro.models import BOTTOM, figure2_labeled, figure2_property, figure2_vector
from repro.models.figures import FIGURE2_SCHEMA


class TestFigure2Property:
    def test_entities_present(self, fig2_property):
        labels = {fig2_property.node_label(n) for n in fig2_property.nodes()}
        assert {"person", "infected", "bus", "address", "company"} <= labels

    def test_person_properties(self, fig2_property):
        assert fig2_property.node_property("n1", "name") == "Julia"
        assert fig2_property.node_property("n1", "age") == "42"

    def test_contact_date_matches_eq3(self, fig2_property):
        # The date eq. (3) tests for: 3/4/21 on the contact edge.
        assert fig2_property.edge_property("e3", "date") == "3/4/21"

    def test_shared_address_zip(self, fig2_property):
        assert fig2_property.node_property("n5", "zip") == "8320000"
        livers = {fig2_property.source(e)
                  for e in fig2_property.edges_with_label("lives")}
        assert {"n1", "n4"} <= livers

    def test_company_owns_bus(self, fig2_property):
        assert fig2_property.edge_label("e6") == "owns"
        assert fig2_property.endpoints("e6") == ("n6", "n3")


class TestFigure2Labeled:
    def test_same_structure_as_property(self):
        lg, pg = figure2_labeled(), figure2_property()
        assert set(lg.nodes()) == set(pg.nodes())
        assert set(lg.edges()) == set(pg.edges())

    def test_no_properties_on_labeled(self, fig2_labeled):
        assert not hasattr(fig2_labeled, "node_property")


class TestFigure2Vector:
    def test_schema_matches_paper_feature_numbers(self):
        # f1 = label and f5 = date, as in the paper's rewritten regex.
        assert FIGURE2_SCHEMA.feature_names[0] == "label"
        assert FIGURE2_SCHEMA.index_of("date") == 5

    def test_feature_values(self, fig2_vector):
        assert fig2_vector.node_feature("n1", 1) == "person"
        assert fig2_vector.edge_feature("e3", 5) == "3/4/21"
        assert fig2_vector.node_feature("n3", 2) == BOTTOM  # bus has no name

    def test_dimension(self, fig2_vector):
        assert fig2_vector.dimension == 5

    def test_builders_are_fresh(self):
        one, two = figure2_vector(), figure2_vector()
        two.set_node_vector("n1", ("person", "X", "1", BOTTOM, BOTTOM))
        assert one.node_feature("n1", 2) == "Julia"
